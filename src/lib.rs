//! Root integration package; see the [`hwst128`] facade crate.
pub use hwst128 as facade;
