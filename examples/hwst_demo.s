# hwst_demo.s — the HWST128 extension, by hand.
#
# Run:   cargo run -p hwst128 --bin hwst128-cli -- asm examples/hwst_demo.s --run --trace 16
# Debug: cargo run -p hwst128 --bin hwst128-cli -- debug examples/hwst_demo.s

    li    a0, 64            # size of the allocation
    li    a7, 1000          # MALLOC syscall
    ecall                   # a0 = ptr, a1 = key, a2 = lock (key stored at lock)

    addi  t0, a0, 64        # bound = ptr + 64
    bndrs a0, a0, t0        # bind compressed spatial metadata into SRF[a0]
    bndrt a0, a1, a2        # bind compressed temporal metadata

    li    t1, 123
    csd   t1, 56(a0)        # bounded store — last valid slot, SCU passes
    tchk  a0                # temporal check — key matches, TCU passes

    # Spill the pointer with its metadata, wipe the register state, and
    # reload both (through-memory propagation, paper Fig. 1-c/d).
    li    s2, 0x200000      # a container in the data region
    sd    a0, 0(s2)
    sbdl  a0, 0(s2)         # store SRF[a0] lower half to the shadow of s2
    sbdu  a0, 0(s2)         # ... and the upper half
    srfclr a0               # destroy the in-register metadata
    ld    s3, 0(s2)         # reload the pointer ...
    lbdls s3, 0(s2)         # ... and its metadata into SRF[s3]
    lbdus s3, 0(s2)

    cld   a0, 56(a0)        # read back through the original register: 123
    tchk  s3                # the reloaded pointer is still temporally valid

    # Uncomment either line to watch a trap fire:
    # csd   t1, 64(a0)      # spatial violation: one byte past the bound
    # (or free the buffer first, then tchk s3 for a temporal violation)

    li    a7, 93            # EXIT
    ecall                   # exit code = 123
