//! Metadata-compression explorer (Fig. 2 / E5): shows how 256 bits of
//! base/bound/key/lock pack into the 128-bit shadow word, how the field
//! widths derive from system parameters (Eq. 3–6), and where the lossy
//! 8-byte granule shows up.
//!
//! ```sh
//! cargo run --example metadata_compression
//! ```

use hwst128::metadata::{CompressionConfig, Metadata, ShadowCodec};

fn main() {
    // The paper's Fig. 2 layout.
    let cfg = CompressionConfig::SPEC_DEFAULT;
    println!(
        "SPEC layout ......... {cfg}   (24-bit CSR = {:#08x})",
        cfg.to_csr()
    );

    // Eq. 3-6 derivation from system parameters.
    let derived = CompressionConfig::derive(
        256 << 30,     // 256 GiB of memory  -> 35-bit aligned base
        (1 << 32) - 8, // largest object     -> 29-bit range
        1 << 20,       // a million pointers -> 20-bit lock
    )
    .expect("the paper's parameters are representable");
    println!("derived (Eq. 3-6) ... {derived}");
    assert_eq!(cfg, derived);

    let embedded = CompressionConfig::EMBEDDED;
    println!("embedded layout ..... {embedded}");
    println!();

    // Compress a realistic pointer's metadata.
    let codec = ShadowCodec::new(cfg, 0x0900_0000);
    let md = Metadata {
        base: 0x0100_2000,
        bound: 0x0100_2400, // a 1 KiB heap object
        key: 0x0000_00be_ef01,
        lock: 0x0900_0000 + 8 * 4242,
    };
    let c = codec.compress(md).expect("representable");
    println!("uncompressed (256 bits): {md}");
    println!("compressed   (128 bits): {c}");
    println!("decompressed           : {}", codec.decompress(c));
    assert_eq!(codec.decompress(c), md);
    println!();

    // The documented loss: sizes round up to the 8-byte granule.
    let odd = Metadata::spatial(0x2000, 0x2000 + 13);
    let back = codec.decompress(codec.compress(odd).expect("compresses"));
    println!(
        "a 13-byte object comes back as [{:#x}, {:#x}) — {} bytes",
        back.base,
        back.bound,
        back.range()
    );
    println!("(the <8-byte slack is why HWST128 trails SBCETS on CWE122)");
    println!();

    // And the guard rails: what cannot be expressed is rejected, loudly.
    let huge = Metadata::spatial(0, 1 << 40);
    println!(
        "compressing a 1 TiB object: {}",
        codec.compress(huge).unwrap_err()
    );
    let misaligned = Metadata::spatial(0x1001, 0x2000);
    println!(
        "compressing a misaligned base: {}",
        codec.compress(misaligned).unwrap_err()
    );
}
