//! Static-analysis tour: `hwst-lint` diagnostics and redundant-check
//! elimination through the public API.
//!
//! Builds a deliberately buggy function, prints what the linter reports
//! without executing anything, then compiles a Juliet case with RCE and
//! the metadata-completeness verifier enabled and shows that dynamic
//! detection is unaffected while static checks shrink.
//!
//! ```sh
//! cargo run --example static_analysis
//! ```

use hwst128::compiler::ir::Width;
use hwst128::compiler::lint::lint;
use hwst128::compiler::{compile_with_options, CompileOptions, ModuleBuilder, Scheme};
use hwst128::juliet::{build_program, suite};
use hwst128::sim::Machine;

fn main() {
    // A function with two planted bugs: an 8-byte store one past the
    // end of a 64-byte heap buffer, and a use after free.
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let v = f.konst(7);
    f.store(v, p, 64, Width::U64); // off the end
    f.free(p);
    let _ = f.load(p, 0, Width::U64); // after free
    let zero = f.konst(0);
    f.ret(Some(zero));
    f.finish();
    let module = mb.finish();

    println!("hwst-lint on the planted-bug module:");
    for d in lint(&module) {
        println!("  {d}");
    }

    // RCE + verifier on a real Juliet case: same trap, fewer checks.
    let case = suite()
        .into_iter()
        .find(|c| !c.laundered && !c.sub_granule)
        .expect("reachable cases exist");
    println!();
    println!("{} case {} under HWST128_tchk:", case.cwe, case.index);
    let prog = build_program(&case);
    for rce in [false, true] {
        let mut opts = CompileOptions::new(Scheme::Hwst128Tchk).with_verify();
        opts.rce = rce;
        let compiled = compile_with_options(&prog, opts).expect("compiles and verifies");
        let outcome = match Machine::new(compiled.program, hwst128::config_for(Scheme::Hwst128Tchk))
            .run(5_000_000)
        {
            Err(trap) => format!("TRAP ({trap:?})"),
            Ok(exit) => format!("exit {}", exit.code),
        };
        println!(
            "  rce={rce:<5}  static checks {:>2} (removed {:>2})  -> {outcome}",
            compiled.check_count,
            compiled.rce.total(),
        );
    }
}
