//! Benchmark tour: pick a workload (default `bzip2`, the paper's
//! keybuffer showcase), run it under every scheme and print the full
//! cycle breakdown the pipeline model collects — including keybuffer
//! hit rates and the shadow-memory traffic that metadata compression
//! halves.
//!
//! ```sh
//! cargo run --example benchmark_tour [workload]
//! ```

use hwst128::compiler::Scheme;
use hwst128::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bzip2".into());
    let Some(wl) = Workload::by_name(&name) else {
        eprintln!("unknown workload {name}; available:");
        for w in hwst128::workloads::all() {
            eprintln!("  {:<12} [{}] {}", w.name, w.suite, w.profile);
        }
        std::process::exit(1);
    };
    println!("workload: {} [{}] — {}", wl.name, wl.suite, wl.profile);
    println!();

    let module = wl.module(Scale::Test);
    let mut baseline = 0u64;
    for scheme in Scheme::ALL {
        let exit = hwst128::run_scheme(&module, scheme, wl.fuel(Scale::Test))
            .expect("benchmark runs clean");
        let s = exit.stats;
        if scheme == Scheme::None {
            baseline = s.total_cycles();
        }
        println!("=== {} ===", scheme.label());
        println!("{s}");
        println!(
            "overhead      {:>12.1}%",
            (s.total_cycles() as f64 / baseline as f64 - 1.0) * 100.0
        );
        if s.keybuffer_hits + s.keybuffer_misses > 0 {
            println!(
                "kb hit rate   {:>11.1}%",
                s.keybuffer_hits as f64 / (s.keybuffer_hits + s.keybuffer_misses) as f64 * 100.0
            );
        }
        println!();
    }

    // The speedup sentence the paper leads with (Eq. 8).
    let sb = hwst128::run_scheme(&module, Scheme::Sbcets, wl.fuel(Scale::Test))
        .unwrap()
        .stats
        .total_cycles();
    let hw = hwst128::run_scheme(&module, Scheme::Hwst128Tchk, wl.fuel(Scale::Test))
        .unwrap()
        .stats
        .total_cycles();
    println!(
        "HWST128 is {:.2}x faster than the software-only SBCETS on {}",
        sb as f64 / hw as f64,
        wl.name
    );
}
