//! Quickstart: build a tiny pointer program, compile it with full
//! HWST128 protection, run it on the simulated core, and watch the
//! hardware catch an out-of-bounds write.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hwst128::prelude::*;

fn main() {
    // 1. Write a program against the pointer-aware IR (what the LLVM
    //    front-end produces in the paper's toolchain).
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");

    // p = malloc(64); fill p[0..8]; sum it back.
    let p = f.malloc_bytes(64);
    for i in 0..8i64 {
        let v = f.konst(i * i);
        f.store(v, p, i * 8, Width::U64);
    }
    let acc = f.local();
    let zero = f.konst(0);
    f.local_set(acc, zero);
    for i in 0..8i64 {
        let v = f.load(p, i * 8, Width::U64);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, v);
        f.local_set(acc, s);
    }
    let sum = f.local_get(acc);
    f.print_u64(sum);
    f.free(p);
    f.ret(Some(sum));
    f.finish();
    let module = mb.finish();

    // 2. Compile for each scheme and compare cycle costs (Fig. 4's
    //    methodology in miniature).
    println!("{:<14} {:>10} {:>10}", "scheme", "cycles", "overhead");
    let mut baseline = 0u64;
    for scheme in Scheme::ALL {
        let exit =
            hwst128::run_scheme(&module, scheme, 10_000_000).expect("program is well-behaved");
        let cycles = exit.stats.total_cycles();
        if scheme == Scheme::None {
            baseline = cycles;
        }
        println!(
            "{:<14} {:>10} {:>9.1}%",
            scheme.label(),
            cycles,
            (cycles as f64 / baseline as f64 - 1.0) * 100.0
        );
        assert_eq!(exit.output_string(), "140\n", "all schemes agree");
    }

    // 3. Now the same program with a bug: write one element too far.
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let v = f.konst(0x41);
    f.store(v, p, 64, Width::U64); // out of bounds!
    f.free(p);
    f.ret(None);
    f.finish();
    let buggy = mb.finish();

    println!();
    match hwst128::run_scheme(&buggy, Scheme::Hwst128Tchk, 10_000_000) {
        Err(e) => println!("HWST128 caught the bug: {e}"),
        Ok(_) => unreachable!("the bounded store must trap"),
    }
    match hwst128::run_scheme(&buggy, Scheme::None, 10_000_000) {
        Ok(_) => println!("...which the unprotected core silently corrupts"),
        Err(e) => unreachable!("baseline must not trap: {e}"),
    }
}
