//! End-to-end gates for the `hwst-telemetry` observability subsystem
//! (ISSUE 5 acceptance): the profiled run must not perturb execution,
//! attribution must cover ≥95% of cycles under named functions, the
//! parallel P1 sweep must be byte-identical to the serial one on any
//! worker count, and the trace exports must round-trip.

use hwst128::workloads::{Scale, Workload};
use hwst_bench::profile::{
    check_profile_parity, profile_mean_fractions, profile_row, try_profile_trace, ProfileRow,
};
use hwst_bench::runs::{profile_results, PROFILE_SMOKE_WORKLOADS};
use hwst_bench::summary::profile_summary;
use hwst_harness::{collect_ok, Json, NullSink, PoolConfig};
use std::time::Duration;

fn assert_rows_identical(serial: &[ProfileRow], parallel: &[ProfileRow]) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s, p, "row {} must match the serial sweep exactly", s.name);
    }
}

/// The P1 smoke sweep through 1-, 2- and 8-worker pools: identical rows
/// and an identical JSON `rows` subtree, regardless of worker count.
#[test]
fn profile_sweep_identical_on_any_worker_count() {
    let serial: Vec<ProfileRow> = PROFILE_SMOKE_WORKLOADS
        .iter()
        .map(|n| profile_row(&Workload::by_name(n).unwrap(), Scale::Test))
        .collect();
    let mut rows_subtrees = Vec::new();
    for workers in [1usize, 2, 8] {
        let results = profile_results(
            &PROFILE_SMOKE_WORKLOADS,
            Scale::Test,
            &PoolConfig::parallel(workers),
            &mut NullSink,
        );
        let doc = profile_summary(
            Scale::Test,
            workers,
            &results,
            Duration::from_millis(1),
            &[],
        );
        let parsed = Json::parse(&doc.to_string()).expect("summary parses");
        rows_subtrees.push(parsed.get("rows").expect("rows subtree").to_string());
        let (rows, failed) = collect_ok(results);
        assert!(failed.is_empty(), "{failed:?}");
        assert_rows_identical(&serial, &rows);
    }
    assert_eq!(rows_subtrees[0], rows_subtrees[1]);
    assert_eq!(rows_subtrees[1], rows_subtrees[2]);
}

/// Attaching the profiler is pure observation: a profiled run produces
/// the exact `ExitStatus` of a plain run, and its profile accounts for
/// every cycle — on a representative cross-suite subset.
#[test]
fn profiling_has_no_observer_effect() {
    for name in ["string", "math", "FFT", "treeadd", "health", "bzip2"] {
        let wl = Workload::by_name(name).unwrap();
        check_profile_parity(&wl, Scale::Test).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// ≥95% of every workload's cycles attribute to named functions (the
/// startup shim is the only unattributed code), on the cross-suite
/// subset; the full 23-workload sweep runs below.
#[test]
fn attribution_covers_named_functions() {
    for name in ["string", "math", "FFT", "treeadd", "health", "bzip2"] {
        let wl = Workload::by_name(name).unwrap();
        let r = profile_row(&wl, Scale::Test);
        assert!(
            r.attributed_fraction >= 0.95,
            "{name}: only {:.2}% attributed",
            r.attributed_fraction * 100.0
        );
        assert!(r.total.check > 0, "{name}: instrumentation must show up");
    }
}

/// Full-sweep acceptance: all 23 workloads profile cleanly with ≥95%
/// attribution. Formerly an `--ignored` heavy gate; the fast engine's
/// profiled path makes the full sweep cheap enough to run in tier-1.
#[test]
fn attribution_covers_named_functions_full_sweep() {
    for wl in hwst128::workloads::all() {
        let r = profile_row(&wl, Scale::Test);
        assert!(
            r.attributed_fraction >= 0.95,
            "{}: only {:.2}% attributed",
            wl.name,
            r.attributed_fraction * 100.0
        );
    }
}

/// The Chrome trace export parses as JSON, carries one thread per
/// track, and the collapsed-stack text matches the `frame;cat count`
/// shape.
#[test]
fn trace_exports_round_trip() {
    let wl = Workload::by_name("treeadd").unwrap();
    let t = try_profile_trace(&wl, Scale::Test).unwrap();
    let parsed = Json::parse(&t.chrome.to_string()).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let metadata = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .count();
    assert_eq!(metadata, 5, "one thread_name per track");
    assert!(
        events.len() > metadata,
        "treeadd must emit allocator/stall spans"
    );
    for line in t.collapsed.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`frames count` shape");
        assert!(stack.contains(';'), "{line}");
        count.parse::<u64>().unwrap_or_else(|_| panic!("{line}"));
    }
}

/// When CI has just emitted `BENCH_profile.json` (the P1 smoke step),
/// the artifact must parse, be schema-stable and meet the attribution
/// floor on every row. Skips silently when absent (local runs).
#[test]
fn emitted_bench_profile_artifact_is_valid() {
    let path = std::path::Path::new("BENCH_profile.json");
    if !path.exists() {
        return;
    }
    let text = std::fs::read_to_string(path).expect("readable artifact");
    let doc = Json::parse(&text).expect("BENCH_profile.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("hwst-bench/profile")
    );
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("Test"));
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
    assert!(!rows.is_empty(), "at least the smoke subset");
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).expect("row name");
        let attr = row
            .get("attributed_pct")
            .and_then(Json::as_f64)
            .expect("attributed_pct");
        assert!(attr >= 95.0, "{name}: only {attr:.2}% attributed");
        let total = row
            .get("total_cycles")
            .and_then(Json::as_f64)
            .expect("total_cycles");
        let parts: f64 = ["base", "check", "shadow", "keybuffer", "runtime"]
            .iter()
            .map(|k| {
                row.get("cycles")
                    .and_then(|c| c.get(k))
                    .and_then(Json::as_f64)
                    .unwrap_or_else(|| panic!("{name}: cycles.{k} missing"))
            })
            .sum();
        assert_eq!(parts, total, "{name}: categories must sum to the total");
    }
    // Cross-check one row against a fresh serial computation.
    if let Some(row) = rows
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("math"))
    {
        let fresh = profile_row(&Workload::by_name("math").unwrap(), Scale::Test);
        assert_eq!(
            row.get("total_cycles").and_then(Json::as_f64),
            Some(fresh.total.total() as f64),
            "artifact must carry the exact serial cycle count"
        );
    }
}

/// The mean-fraction summary line is a true mean of per-row fractions
/// and sums to 1 across categories.
#[test]
fn mean_fractions_partition_unity() {
    let rows: Vec<ProfileRow> = ["math", "treeadd"]
        .iter()
        .map(|n| profile_row(&Workload::by_name(n).unwrap(), Scale::Test))
        .collect();
    let f = profile_mean_fractions(&rows);
    let sum: f64 = f.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "{f:?}");
    assert!(f[0] > 0.5, "base work dominates: {f:?}");
}
