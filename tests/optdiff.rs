//! The `-O0`-vs-`-O1` differential-correctness gate (ISSUE 9
//! acceptance): the optimizing back-end may change *how many* cycles a
//! program takes, but never *what it computes* or *what it detects*.
//! For every workload × scheme the two tiers must produce the same
//! verdict — the same exit code and program output, or the same trap
//! kind — and every Juliet case must keep its detection verdict.
//!
//! Cycle statistics are intentionally excluded from the comparison:
//! shrinking the dynamic instruction count is the whole point of `-O1`.
//!
//! The cross-suite smoke subset runs in tier-1; the full 23-workload ×
//! 5-scheme sweep and the deeper Juliet sample ride the CI heavy gate.

use hwst128::compiler::{CompileOptions, OptLevel, Scheme};
use hwst128::config_for;
use hwst128::exec::{BlockCache, Engine};
use hwst128::juliet::{execute_detects_opts, sample_reachable};
use hwst128::sim::{Machine, Trap};
use hwst128::workloads::{Scale, Workload};

/// Every instrumentation scheme the compiler accepts.
const SCHEMES: [Scheme; 5] = [
    Scheme::None,
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
];

/// The tier-1 cross-suite subset (one representative per suite family).
const SMOKE: [&str; 6] = ["string", "math", "FFT", "treeadd", "health", "bzip2"];

/// What the gate compares: the observable verdict of a run, with the
/// tier-dependent parts (cycle stats, faulting PC) stripped.
#[derive(Debug, PartialEq, Eq)]
enum Verdict {
    Exit { code: u64, output: Vec<u8> },
    Trap { kind: &'static str },
}

fn trap_kind(t: &Trap) -> &'static str {
    match t {
        Trap::SpatialViolation { .. } => "spatial",
        Trap::TemporalViolation { .. } => "temporal",
        _ => "other",
    }
}

/// Compiles `wl` under `scheme` at `opt` and runs it to a [`Verdict`].
fn run_tier(wl: &Workload, scheme: Scheme, opt: OptLevel) -> Verdict {
    let ctx = format!("{}/{}/{}", wl.name, scheme.label(), opt.label());
    let module = wl.module(Scale::Test);
    let opts = CompileOptions::new(scheme).with_opt(opt);
    let compiled = match hwst128::compiler::compile_with_options(&module, opts) {
        Ok(c) => c,
        Err(e) => panic!("{ctx}: compile failed: {e}"),
    };
    let mut m = Machine::new(compiled.program, config_for(scheme));
    match Engine::Fast.run(&mut m, wl.fuel(Scale::Test), &mut BlockCache::new()) {
        Ok(exit) => Verdict::Exit {
            code: exit.code,
            output: exit.output,
        },
        Err(t) => Verdict::Trap {
            kind: trap_kind(&t),
        },
    }
}

/// Asserts the two tiers agree for one workload × scheme pair.
fn assert_tiers_agree(wl: &Workload, scheme: Scheme) {
    let o0 = run_tier(wl, scheme, OptLevel::O0);
    let o1 = run_tier(wl, scheme, OptLevel::O1);
    assert_eq!(
        o0,
        o1,
        "{}/{}: -O0 and -O1 verdicts diverged",
        wl.name,
        scheme.label()
    );
}

/// Asserts a Juliet case detects identically at both tiers for every
/// scheme.
fn assert_juliet_agrees(case: &hwst128::juliet::Case) {
    for scheme in SCHEMES {
        let o0 = execute_detects_opts(case, CompileOptions::new(scheme));
        let o1 = execute_detects_opts(case, CompileOptions::new(scheme).with_opt(OptLevel::O1));
        assert_eq!(
            o0,
            o1,
            "juliet {:?}/{}: detection verdict changed at -O1",
            case.cwe,
            scheme.label()
        );
    }
}

/// Tier-1: the cross-suite smoke subset × every scheme agrees across
/// tiers, and a one-per-CWE Juliet sample keeps its verdicts.
#[test]
fn o1_matches_o0_on_smoke_subset() {
    for name in SMOKE {
        let wl = Workload::by_name(name).unwrap();
        for scheme in SCHEMES {
            assert_tiers_agree(&wl, scheme);
        }
    }
    for case in sample_reachable(1) {
        assert_juliet_agrees(&case);
    }
}

/// Full acceptance: all 23 workloads × all 5 schemes plus a deeper
/// Juliet sample. Rides the CI heavy gate.
#[test]
#[ignore = "full sweep; run via the CI heavy gates"]
fn o1_matches_o0_on_full_suite() {
    for wl in hwst128::workloads::all() {
        for scheme in SCHEMES {
            assert_tiers_agree(&wl, scheme);
        }
    }
    for case in sample_reachable(5) {
        assert_juliet_agrees(&case);
    }
}
