//! End-to-end gates for the `hwst-harness` experiment subsystem
//! (ISSUE 3 acceptance): the parallel fig4 sweep must be
//! indistinguishable from the serial one, failures must stay
//! structured, and the emitted `BENCH_*.json` must parse and carry the
//! exact serial geomean.

use hwst128::workloads::{Scale, Workload};
use hwst_bench::runs::fig4_results;
use hwst_bench::summary::fig4_summary;
use hwst_bench::{fig4_geomean, fig4_row, try_fig4_row, Fig4Row};
use hwst_harness::{collect_ok, Job, JobOutcome, Json, NullSink, PoolConfig};
use std::time::Duration;

fn assert_rows_identical(serial: &[Fig4Row], parallel: &[Fig4Row]) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        assert_eq!(s.name, p.name, "row order must match the serial sweep");
        assert_eq!(s.suite, p.suite);
        assert_eq!(s.baseline_cycles, p.baseline_cycles);
        // Bit-exact: the same f64 computations on the same cycle
        // counts, regardless of worker count.
        assert_eq!(s.overhead_pct, p.overhead_pct, "{}", s.name);
    }
}

/// A representative cross-suite subset through a 4-worker pool:
/// identical rows, ordering, and geomean vs serial. (The harness's own
/// tests cover 1 vs {2, 4, 16} workers on synthetic jobs; the full
/// 23-workload sweep runs below.)
#[test]
fn fig4_subset_parallel_identical_to_serial() {
    let names = ["string", "math", "treeadd", "health", "bzip2", "lbm"];
    let serial: Vec<Fig4Row> = names
        .iter()
        .map(|n| fig4_row(&Workload::by_name(n).unwrap(), Scale::Test))
        .collect();
    let jobs: Vec<Job<Fig4Row>> = names
        .iter()
        .map(|n| {
            let wl = Workload::by_name(n).unwrap();
            Job::new(format!("fig4/{n}"), move || try_fig4_row(&wl, Scale::Test))
        })
        .collect();
    let results = hwst_harness::run(jobs, &PoolConfig::parallel(4), &mut NullSink);
    let (rows, failed) = collect_ok(results);
    assert!(failed.is_empty(), "{failed:?}");
    assert_rows_identical(&serial, &rows);
    assert_eq!(fig4_geomean(&serial), fig4_geomean(&rows));
}

/// The full 23-workload Fig. 4 sweep (ISSUE 3 acceptance): `--jobs 4`
/// produces results identical to the serial run. Formerly an
/// `--ignored` heavy gate; the decoded-block fast engine (the default
/// in `fig4_rows`/`fig4_results`) makes the full sweep cheap enough to
/// run in tier-1.
#[test]
fn fig4_full_sweep_parallel_identical_to_serial() {
    let serial = hwst_bench::fig4_rows(Scale::Test);
    let results = fig4_results(Scale::Test, &PoolConfig::parallel(4), &mut NullSink);
    let (rows, failed) = collect_ok(results);
    assert!(failed.is_empty(), "{failed:?}");
    assert_rows_identical(&serial, &rows);
    assert_eq!(fig4_geomean(&serial), fig4_geomean(&rows));
}

/// A sweep containing a panicking and a failing job still yields every
/// good row, with the bad jobs as structured failures in stable
/// positions — no process abort.
#[test]
fn sweep_survives_panicking_and_failing_jobs() {
    let good = Workload::by_name("math").unwrap();
    let jobs: Vec<Job<Fig4Row>> = vec![
        Job::new("fig4/math", move || try_fig4_row(&good, Scale::Test)),
        Job::new("fig4/poisoned", || panic!("injected panic")),
        Job::new("fig4/broken", || Err("injected failure".to_string())),
        Job::new("fig4/math-again", move || try_fig4_row(&good, Scale::Test)),
    ];
    let results = hwst_harness::run(jobs, &PoolConfig::parallel(4), &mut NullSink);
    assert_eq!(results.len(), 4);
    assert!(matches!(results[0].outcome, JobOutcome::Ok(_)));
    assert_eq!(
        results[1].outcome,
        JobOutcome::Panicked("injected panic".into())
    );
    assert_eq!(
        results[2].outcome,
        JobOutcome::Failed("injected failure".into())
    );
    let (rows, failed) = collect_ok(results);
    assert_eq!(rows.len(), 2);
    assert_eq!(failed.len(), 2);
    assert_eq!(rows[0].overhead_pct, rows[1].overhead_pct);
}

/// The JSON summary parses and carries the exact geomean of the rows
/// it was built from.
#[test]
fn fig4_json_summary_round_trips() {
    let names = ["math", "bzip2"];
    let jobs: Vec<Job<Fig4Row>> = names
        .iter()
        .map(|n| {
            let wl = Workload::by_name(n).unwrap();
            Job::new(format!("fig4/{n}"), move || try_fig4_row(&wl, Scale::Test))
        })
        .collect();
    let results = hwst_harness::run(jobs, &PoolConfig::parallel(2), &mut NullSink);
    let doc = fig4_summary(Scale::Test, 2, &results, Duration::from_millis(1), &[]);
    let parsed = Json::parse(&doc.to_string()).expect("summary parses");
    let (rows, _) = collect_ok(results);
    let g = fig4_geomean(&rows);
    for (key, want) in [("sbcets", g[0]), ("hwst128", g[1]), ("hwst128_tchk", g[2])] {
        let got = parsed
            .get("geomean")
            .and_then(|o| o.get(key))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("geomean.{key} missing"));
        assert_eq!(got, want, "geomean.{key} must round-trip exactly");
    }
}

/// When CI has just emitted `BENCH_fig4.json` (the harness smoke step),
/// the artifact must parse and agree with a freshly computed serial
/// geomean. Skips silently when the artifact is absent (local runs).
#[test]
fn emitted_bench_fig4_artifact_matches_serial_geomean() {
    let path = std::path::Path::new("BENCH_fig4.json");
    if !path.exists() {
        return;
    }
    let text = std::fs::read_to_string(path).expect("readable artifact");
    let doc = Json::parse(&text).expect("BENCH_fig4.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("hwst-bench/fig4")
    );
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("Test"));
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 23, "full Fig. 4 table");
    let serial = hwst_bench::fig4_rows(Scale::Test);
    let g = fig4_geomean(&serial);
    let got = doc
        .get("geomean")
        .and_then(|o| o.get("sbcets"))
        .and_then(Json::as_f64)
        .expect("geomean.sbcets");
    assert_eq!(got, g[0], "artifact geomean must equal the serial geomean");
}
