//! Z1/Z2 gates (comparative detector zoo): every zoo scheme must be
//! observationally benign on the full workload suite, and the
//! `BENCH_zoo.json` artifact (committed full sweep, or the CI smoke
//! re-emission) must be schema-valid, self-consistent and carry a
//! monotone coverage × overhead frontier.

use hwst128::compiler::Scheme;
use hwst128::workloads::{all, Scale};
use hwst_harness::Json;
use hwst_zoo::Design;

/// Each zoo scheme preserves the exit code *and* the program output of
/// every workload — instrumentation must be invisible to benign runs.
#[test]
fn zoo_schemes_preserve_exit_status_on_all_workloads() {
    for wl in all() {
        let module = wl.module(Scale::Test);
        let fuel = wl.fuel(Scale::Test);
        let base = hwst128::run_scheme(&module, Scheme::None, fuel)
            .unwrap_or_else(|e| panic!("{} (baseline): {e}", wl.name));
        for scheme in Scheme::ZOO {
            let got = hwst128::run_scheme(&module, scheme, fuel)
                .unwrap_or_else(|e| panic!("{} ({scheme}): {e}", wl.name));
            assert_eq!(
                got.code, base.code,
                "{}: {scheme} changed the exit code",
                wl.name
            );
            assert_eq!(
                got.output, base.output,
                "{}: {scheme} changed the program output",
                wl.name
            );
        }
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
    obj.get(key)
        .unwrap_or_else(|| panic!("missing field `{key}` in {obj}"))
}

fn num(obj: &Json, key: &str) -> f64 {
    field(obj, key)
        .as_f64()
        .unwrap_or_else(|| panic!("field `{key}` is not numeric"))
}

/// Validates `BENCH_zoo.json`: schema, per-design columns (overhead,
/// model, coverage, fault injection), band containment on the full
/// sweep, gate verdict, and frontier consistency/monotonicity. Skips
/// silently when the artifact is absent (it is normally committed).
#[test]
fn bench_zoo_artifact_is_valid_and_frontier_is_monotone() {
    let path = std::path::Path::new("BENCH_zoo.json");
    if !path.exists() {
        return;
    }
    let text = std::fs::read_to_string(path).expect("readable artifact");
    let doc = Json::parse(&text).expect("BENCH_zoo.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("hwst-bench/zoo")
    );
    assert_eq!(doc.get("version").and_then(Json::as_i64), Some(1));
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("Test"));
    assert_eq!(doc.get("gate").and_then(Json::as_str), Some("pass"));
    assert_eq!(
        field(&doc, "violations").as_arr().map(<[Json]>::len),
        Some(0)
    );
    assert_eq!(field(&doc, "failed").as_arr().map(<[Json]>::len), Some(0));

    let designs = field(&doc, "designs").as_arr().expect("designs array");
    assert_eq!(designs.len(), Design::ALL.len(), "all eight designs");
    let full_sweep = field(field(&doc, "config"), "workload_count").as_i64() == Some(23);
    for (d, design) in designs.iter().zip(Design::ALL) {
        assert_eq!(d.get("name").and_then(Json::as_str), Some(design.label()));
        let oh = num(d, "overhead_geomean_pct");
        if let Some((lo, hi)) = design.band() {
            assert!(oh > 0.0, "{design}: instrumented overhead must be positive");
            if full_sweep {
                assert!(
                    (lo..=hi).contains(&oh),
                    "{design}: overhead {oh:.1}% outside band [{lo}, {hi}]"
                );
            }
        } else {
            assert_eq!(oh, 0.0, "baseline overhead is identically zero");
        }
        if design.zoo_cost().is_some() {
            let model = num(d, "model_overhead_geomean_pct");
            let ratio = (1.0 + model / 100.0) / (1.0 + oh / 100.0);
            assert!(
                (0.8..=1.25).contains(&ratio),
                "{design}: model {model:.1}% vs measured {oh:.1}%"
            );
        }
        let cov = field(d, "coverage");
        assert_eq!(cov.get("total_cases").and_then(Json::as_i64), Some(8366));
        assert_eq!(
            cov.get("sample_agree"),
            Some(&Json::Bool(true)),
            "{design}: executed sample must agree with the model"
        );
        let inject = field(d, "inject");
        let applied: f64 = ["detected", "masked", "silent", "machine_fault"]
            .iter()
            .map(|k| num(inject, k))
            .sum();
        assert!(
            applied > 0.0 || num(inject, "not_applied") > 0.0,
            "{design}: empty fault campaign"
        );
    }

    let rows = field(&doc, "rows").as_arr().expect("rows array");
    assert!(rows.len() >= 4, "at least the smoke workload set");
    if full_sweep {
        assert_eq!(rows.len(), 23, "full sweep carries every workload");
    }
    for r in rows {
        let oh = field(r, "overhead_pct");
        for design in Design::INSTRUMENTED {
            assert!(
                num(oh, design.label()).is_finite(),
                "row {:?} lacks {design}",
                r.get("name")
            );
        }
        let mp = field(r, "model_pct");
        for design in Design::ZOO {
            assert!(num(mp, design.label()).is_finite());
        }
    }

    // Frontier consistency: recompute Pareto domination from the rows
    // and require the flags and the frontier listing to match, with
    // coverage strictly increasing along increasing overhead.
    let points: Vec<(f64, f64, bool, &str)> = designs
        .iter()
        .map(|d| {
            (
                num(d, "overhead_geomean_pct"),
                num(field(d, "coverage"), "coverage_pct"),
                d.get("on_frontier") == Some(&Json::Bool(true)),
                d.get("name").and_then(Json::as_str).unwrap_or_default(),
            )
        })
        .collect();
    let mut frontier: Vec<(f64, f64, &str)> = Vec::new();
    for (i, &(oh, cov, flagged, name)) in points.iter().enumerate() {
        let dominated = points.iter().enumerate().any(|(j, &(qoh, qcov, _, _))| {
            j != i && qoh <= oh && qcov >= cov && (qoh < oh || qcov > cov)
        });
        assert_eq!(!dominated, flagged, "{name}: on_frontier flag is wrong");
        if flagged {
            frontier.push((oh, cov, name));
        }
    }
    frontier.sort_by(|a, b| a.0.total_cmp(&b.0));
    for pair in frontier.windows(2) {
        assert!(
            pair[0].1 < pair[1].1,
            "frontier not monotone: {} ({:.2}%) then {} ({:.2}%)",
            pair[0].2,
            pair[0].1,
            pair[1].2,
            pair[1].1
        );
    }
    let listed: Vec<&str> = field(&doc, "frontier")
        .as_arr()
        .expect("frontier array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let expect: Vec<&str> = frontier.iter().map(|&(_, _, n)| n).collect();
    assert_eq!(listed, expect, "frontier listing must match the flags");
}
