//! Tier-1 gate for the binary-level translation validator: every
//! correctly-lowered workload must validate cleanly under every scheme,
//! IR-level and binary-level verdicts must agree, and the deterministic
//! mutation suite must be killed completely.

use hwst_compiler::binval;
use hwst_compiler::Scheme;
use hwst_workloads::{all, Scale};

const SCHEMES: [Scheme; 4] = [
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
];

#[test]
fn all_workloads_validate_cleanly_under_every_scheme() {
    for wl in all() {
        let module = wl.module(Scale::Test);
        for scheme in SCHEMES {
            let report = binval::validate_module(&module, scheme)
                .unwrap_or_else(|e| panic!("{} ({scheme:?}): {e}", wl.name));
            let lowering: Vec<_> = report
                .findings
                .iter()
                .filter(|f| f.class == binval::FindingClass::Lowering)
                .collect();
            assert!(
                lowering.is_empty(),
                "{} ({scheme:?}): {} lowering findings, first: {}",
                wl.name,
                lowering.len(),
                lowering[0]
            );
        }
    }
}

#[test]
fn translation_validation_never_diverges() {
    for wl in all() {
        let module = wl.module(Scale::Test);
        for scheme in SCHEMES {
            for rce in [false, true] {
                let tv = binval::translation_validate_with(&module, scheme, rce)
                    .unwrap_or_else(|e| panic!("{} ({scheme:?}): {e}", wl.name));
                assert!(
                    !tv.diverged(),
                    "{} ({scheme:?}, rce={rce}): IR verdict {} vs binary verdict {}; \
                     ir_error={:?}, first finding: {:?}",
                    wl.name,
                    tv.ir_ok,
                    tv.report.ok(),
                    tv.ir_error,
                    tv.report.findings.first().map(|f| f.to_string()),
                );
                assert!(
                    tv.ok(),
                    "{} ({scheme:?}, rce={rce}) failed both levels",
                    wl.name
                );
            }
        }
    }
}

#[test]
fn mutation_suite_is_killed_completely() {
    let seeds: Vec<u64> = (0..8).map(|i| 0xB17A_1000 + i).collect();
    let mut total = 0usize;
    for wl in all() {
        let module = wl.module(Scale::Test);
        for scheme in [Scheme::Hwst128, Scheme::Hwst128Tchk, Scheme::Shore] {
            let rep = binval::mutation_campaign(&module, scheme, &seeds)
                .unwrap_or_else(|e| panic!("{} ({scheme:?}): {e}", wl.name));
            for o in &rep.outcomes {
                assert!(
                    o.killed,
                    "{} ({scheme:?}): surviving mutant {} seed={:#x} site={}",
                    wl.name, o.mutation, o.seed, o.site
                );
            }
            total += rep.total();
        }
    }
    assert!(total > 0, "mutation campaign generated no mutants");
}

#[test]
fn sbcets_images_have_no_mutation_candidates() {
    // Pure-software instrumentation emits no metadata loads, so the
    // campaign must be vacuous rather than erroring.
    let wl = hwst_workloads::Workload::by_name("bzip2").expect("known workload");
    let rep = binval::mutation_campaign(&wl.module(Scale::Test), Scheme::Sbcets, &[1, 2, 3])
        .expect("campaign");
    assert_eq!(rep.candidates, 0);
    assert_eq!(rep.total(), 0);
    assert!(rep.all_killed());
}

#[test]
fn binval_discharges_checks_beyond_rce() {
    // A9: across the suite, the binary-level interpreter must discharge
    // a nonzero number of checks even after IR-level RCE ran.
    let mut discharged = 0usize;
    for wl in all() {
        let module = wl.module(Scale::Test);
        let tv = binval::translation_validate_with(&module, Scheme::Hwst128, true)
            .unwrap_or_else(|e| panic!("{}: {e}", wl.name));
        discharged += tv.report.discharged();
    }
    assert!(
        discharged > 0,
        "binary-level analysis discharged no checks beyond IR-level RCE"
    );
}
