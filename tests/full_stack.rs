//! Workspace-level integration: the whole stack (workloads → compiler →
//! simulator → pipeline statistics) composed through the public facade.

use hwst128::compiler::Scheme;
use hwst128::prelude::*;
use hwst128::{config_for, run_scheme};

#[test]
fn representative_workloads_agree_and_order_correctly() {
    for name in ["sha", "treeadd", "hmmer"] {
        let wl = Workload::by_name(name).expect("known workload");
        let module = wl.module(Scale::Test);
        let mut cycles = Vec::new();
        let mut codes = Vec::new();
        for scheme in Scheme::ALL {
            let exit = run_scheme(&module, scheme, wl.fuel(Scale::Test))
                .unwrap_or_else(|e| panic!("{name}/{scheme}: {e}"));
            cycles.push(exit.stats.total_cycles());
            codes.push(exit.code);
        }
        assert!(codes.windows(2).all(|w| w[0] == w[1]), "{name} diverges");
        assert!(
            cycles[0] < cycles[3] && cycles[3] < cycles[2] && cycles[2] < cycles[1],
            "{name}: ordering baseline < tchk < hwst < sbcets violated: {cycles:?}"
        );
    }
}

#[test]
fn keybuffer_hit_rate_is_high_on_loops() {
    // Temporal checks in loops hit the keybuffer nearly always — that is
    // the entire mechanism behind the paper's tchk gains.
    let wl = Workload::by_name("bzip2").unwrap();
    let prog = hwst128::compiler::compile(&wl.module(Scale::Test), Scheme::Hwst128Tchk).unwrap();
    let mut m = Machine::new(prog, SafetyConfig::default());
    let exit = m.run(wl.fuel(Scale::Test)).unwrap();
    let s = exit.stats;
    let rate = s.keybuffer_hits as f64 / (s.keybuffer_hits + s.keybuffer_misses) as f64;
    assert!(rate > 0.9, "keybuffer hit rate only {rate:.3}");
}

#[test]
fn compression_config_flows_through_the_csrs() {
    // A machine configured with the embedded layout must reject objects
    // the SPEC layout accepts — the CSR really governs the hardware.
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // 128 MiB object: fits 29-bit range (SPEC), exceeds 23-bit (embedded).
    let p = f.malloc_bytes(100 << 20);
    let v = f.konst(1);
    f.store(v, p, 0, Width::U64);
    f.ret(None);
    f.finish();
    let module = mb.finish();
    let prog = hwst128::compiler::compile(&module, Scheme::Hwst128Tchk).unwrap();

    // A layout with a heap big enough for the 100 MiB object.
    let big_heap = hwst128::mem::MemoryLayout {
        heap_size: 0x0800_0000,
        stack_top: 0x0a00_0000,
        lock_region_base: 0x0b00_0000,
        ..Default::default()
    };
    let spec_cfg = SafetyConfig {
        layout: big_heap,
        ..SafetyConfig::default()
    };
    // SPEC layout: runs (the store is in bounds).
    assert!(Machine::new(prog.clone(), spec_cfg).run(1_000_000).is_ok());

    // Embedded layout: the bndrs cannot represent a 100 MiB object.
    let emb_cfg = SafetyConfig {
        compression: CompressionConfig::EMBEDDED,
        layout: big_heap,
        ..SafetyConfig::default()
    };
    match Machine::new(prog, emb_cfg).run(1_000_000) {
        Err(Trap::Environment { what, .. }) => {
            assert!(what.contains("not representable"));
        }
        other => panic!("expected a compression fault, got {other:?}"),
    }
}

#[test]
fn disarming_checks_via_csr_suppresses_traps() {
    use hwst128::isa::csr;
    // A program that turns the spatial check off via the status CSR and
    // then violates bounds: the hardware must stay silent.
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(16);
    let v = f.konst(1);
    f.store(v, p, 64, Width::U64); // would trap if armed
    f.ret(None);
    f.finish();
    let module = mb.finish();
    let mut instrs = hwst128::compiler::compile(&module, Scheme::Hwst128Tchk)
        .unwrap()
        .instrs()
        .to_vec();
    // Prepend: csrrw zero, hwst.status, zero (disarm everything).
    instrs.insert(
        0,
        Instr::Csr {
            op: hwst128::isa::CsrOp::Rw,
            rd: Reg::Zero,
            rs1: Reg::Zero,
            csr: csr::HWST_STATUS,
        },
    );
    let layout = hwst128::mem::MemoryLayout::default();
    let prog = Program::from_instrs(layout.text_base, instrs);
    let mut m = Machine::new(prog, SafetyConfig::default());
    assert!(m.run(1_000_000).is_ok(), "disarmed core must not trap");
}

#[test]
fn config_for_covers_every_scheme() {
    for scheme in Scheme::ALL {
        let cfg = config_for(scheme);
        assert_eq!(cfg.spatial, scheme.uses_hardware());
        assert_eq!(
            cfg.keybuffer,
            scheme == Scheme::Hwst128Tchk,
            "only full HWST128 uses the keybuffer"
        );
    }
}

#[test]
fn deterministic_replay() {
    // Same program + config => bit-identical statistics (the whole stack
    // is deterministic; figure regeneration depends on it).
    let wl = Workload::by_name("FFT").unwrap();
    let module = wl.module(Scale::Test);
    let a = run_scheme(&module, Scheme::Hwst128Tchk, wl.fuel(Scale::Test)).unwrap();
    let b = run_scheme(&module, Scheme::Hwst128Tchk, wl.fuel(Scale::Test)).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.output, b.output);
}
