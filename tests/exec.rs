//! The fast-vs-cycle differential-correctness gate (ISSUE 8
//! acceptance): for every workload × scheme, the decoded-block fast
//! engine must be **bit-identical** to the reference cycle
//! interpreter — the same exit status (code, output, full
//! `CycleStats`), the same final machine state (PC, all 32 registers,
//! every nonzero memory word) and the same decision-relevant telemetry
//! (named counters, D-cache and keybuffer hit/miss behaviour).
//!
//! The cross-suite smoke subset runs in tier-1; the full 23-workload ×
//! 5-scheme sweep rides the `--ignored` CI heavy gate.

use hwst128::compiler::{compile, Scheme};
use hwst128::config_for;
use hwst128::exec::{BlockCache, Engine};
use hwst128::isa::Reg;
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};

/// Every instrumentation scheme the compiler accepts, including the
/// SHORE baseline — "all schemes" in the acceptance sense.
const SCHEMES: [Scheme; 5] = [
    Scheme::None,
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
];

/// The tier-1 cross-suite subset (one representative per suite family).
const SMOKE: [&str; 6] = ["string", "math", "FFT", "treeadd", "health", "bzip2"];

/// Runs `wl` under `scheme` on both engines and asserts bit-identity of
/// the run result and the complete observable final state.
fn assert_engines_identical(wl: &Workload, scheme: Scheme) {
    let ctx = format!("{}/{}", wl.name, scheme.label());
    let module = wl.module(Scale::Test);
    let prog = match compile(&module, scheme) {
        Ok(p) => p,
        Err(e) => panic!("{ctx}: compile failed: {e}"),
    };
    let fuel = wl.fuel(Scale::Test);
    let cfg = config_for(scheme);

    let mut cycle = Machine::new(prog.clone(), cfg);
    let cycle_result = Engine::Cycle.run(&mut cycle, fuel, &mut BlockCache::new());

    let mut fast = Machine::new(prog, cfg);
    let mut cache = BlockCache::new();
    let fast_result = Engine::Fast.run(&mut fast, fuel, &mut cache);

    // Same outcome: exit (code, output, full CycleStats) or trap.
    assert_eq!(cycle_result, fast_result, "{ctx}: run results diverged");

    // Same final architectural state.
    assert_eq!(cycle.pc(), fast.pc(), "{ctx}: final PC");
    for r in Reg::ALL {
        assert_eq!(cycle.reg(r), fast.reg(r), "{ctx}: register {}", r.name());
    }
    let lo = 0u64;
    let hi = u64::MAX;
    let cycle_words = cycle.mem().nonzero_word_addrs_in(lo, hi);
    let fast_words = fast.mem().nonzero_word_addrs_in(lo, hi);
    assert_eq!(cycle_words, fast_words, "{ctx}: nonzero memory footprint");
    for &addr in &cycle_words {
        assert_eq!(
            cycle.mem().read_u64(addr),
            fast.mem().read_u64(addr),
            "{ctx}: memory word at {addr:#x}"
        );
    }

    // Same decision-relevant counters and model-unit behaviour.
    assert_eq!(cycle.stats(), fast.stats(), "{ctx}: cycle stats");
    assert_eq!(
        cycle.pipeline().counters(),
        fast.pipeline().counters(),
        "{ctx}: telemetry counters"
    );
    assert_eq!(
        cycle.pipeline().dcache().stats(),
        fast.pipeline().dcache().stats(),
        "{ctx}: dcache hits/misses"
    );
    assert_eq!(
        cycle.pipeline().keybuffer().stats(),
        fast.pipeline().keybuffer().stats(),
        "{ctx}: keybuffer hits/misses/fills"
    );
}

/// Tier-1: the cross-suite subset × every scheme is bit-identical.
#[test]
fn fast_engine_bit_identical_on_smoke_subset() {
    for name in SMOKE {
        let wl = Workload::by_name(name).unwrap();
        for scheme in SCHEMES {
            assert_engines_identical(&wl, scheme);
        }
    }
}

/// Full acceptance: all 23 workloads × all 5 schemes. Heavier (the
/// cycle engine runs every pair too), so it rides the CI heavy gate.
#[test]
#[ignore = "full sweep; run via the CI heavy gates"]
fn fast_engine_bit_identical_on_full_suite() {
    for wl in hwst128::workloads::all() {
        for scheme in SCHEMES {
            assert_engines_identical(&wl, scheme);
        }
    }
}

/// The `BENCH_exec.json` artifact (the committed full-scale X1 run, or
/// the one CI's smoke step just emitted) must parse, be schema-stable,
/// and report the 10× target honestly: `meets_target` must equal the
/// recorded geomean actually clearing `target_speedup`. Host timings
/// vary, so no speedup floor is asserted — only structure and
/// self-consistency.
#[test]
fn emitted_bench_exec_artifact_is_valid() {
    use hwst_harness::Json;
    let path = std::path::Path::new("BENCH_exec.json");
    if !path.exists() {
        return;
    }
    let text = std::fs::read_to_string(path).expect("readable artifact");
    let doc = Json::parse(&text).expect("BENCH_exec.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("hwst-bench/exec")
    );
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
    assert!(!rows.is_empty(), "at least the smoke subset");
    for row in rows {
        let name = row.get("name").and_then(Json::as_str).expect("row name");
        for key in ["instret", "cycle_ips", "fast_ips", "speedup"] {
            let v = row
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name}: {key} missing"));
            assert!(v > 0.0, "{name}: {key} must be positive, got {v}");
        }
    }
    let geomean = doc
        .get("geomean_speedup")
        .and_then(Json::as_f64)
        .expect("geomean_speedup");
    let target = doc
        .get("target_speedup")
        .and_then(Json::as_f64)
        .expect("target_speedup");
    assert_eq!(
        doc.get("meets_target"),
        Some(&Json::Bool(geomean >= target)),
        "meets_target must report the geomean honestly"
    );
}
