//! Reproduction gates: every table and figure of the paper must come out
//! with the right *shape* — who wins, by roughly what factor, and where
//! the crossovers fall (absolute cycle counts are substrate-specific;
//! see EXPERIMENTS.md for the recorded values).

use hwst128::hwcost::hwst128_report;
use hwst128::juliet::model_coverage;
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{fig4_geomean, fig4_row, fig5_geomean, fig5_rows, try_fig4_row_with};

/// Fig. 4 (E1): the three-scheme overhead ordering and rough magnitudes
/// on a representative cross-suite subset.
#[test]
fn fig4_shape_holds() {
    let names = [
        "string", "math", "FFT", "treeadd", "health", "bzip2", "hmmer", "lbm",
    ];
    let rows: Vec<_> = names
        .iter()
        .map(|n| fig4_row(&Workload::by_name(n).unwrap(), Scale::Test))
        .collect();
    for r in &rows {
        assert!(
            r.overhead_pct[0] > r.overhead_pct[1]
                && r.overhead_pct[1] > r.overhead_pct[2]
                && r.overhead_pct[2] > 0.0,
            "{}: SBCETS > HWST128 > HWST128_tchk violated: {:?}",
            r.name,
            r.overhead_pct
        );
    }
    let g = fig4_geomean(&rows);
    // Paper geomeans: 441% / 153% / 95%. The substrate shifts absolutes;
    // the gates check the factors that carry the paper's claims.
    assert!(g[0] > 150.0, "SBCETS geomean too low: {:.1}%", g[0]);
    assert!(
        g[0] / g[1] > 2.0,
        "hardware metadata must cut software overhead by >2x: {g:?}"
    );
    assert!(
        g[1] / g[2] > 1.5,
        "tchk+keybuffer must cut the remaining overhead sharply: {g:?}"
    );
    // Temporal-heavy workloads are the HWST128 standouts (paper: bzip2
    // 7.98x, hmmer 7.78x vs suite mean 3.74x).
    let speedup = |name: &str| {
        let r = rows.iter().find(|r| r.name == name).unwrap();
        (100.0 + r.overhead_pct[0]) / (100.0 + r.overhead_pct[2])
    };
    let mean: f64 = (rows
        .iter()
        .map(|r| ((100.0 + r.overhead_pct[0]) / (100.0 + r.overhead_pct[2])).ln())
        .sum::<f64>()
        / rows.len() as f64)
        .exp();
    assert!(
        speedup("bzip2") > mean && speedup("hmmer") > mean,
        "bzip2/hmmer must beat the mean speedup: {:.2}/{:.2} vs {:.2}",
        speedup("bzip2"),
        speedup("hmmer"),
        mean
    );
}

/// Fig. 5 (E2): comparator ordering and geomean bands.
#[test]
fn fig5_shape_holds() {
    let rows = fig5_rows(Scale::Test);
    assert_eq!(rows.len(), 7, "all seven SPEC workloads");
    for r in &rows {
        assert!(
            r.speedup[0] < r.speedup[1]
                && r.speedup[1] < r.speedup[2]
                && r.speedup[2] < r.speedup[3],
            "{}: BOGO < WDLn < WDLw < HWST128 violated: {:?}",
            r.name,
            r.speedup
        );
        assert!(r.speedup[0] > 1.0, "{}: BOGO must beat software", r.name);
    }
    let g = fig5_geomean(&rows);
    // Paper: 1.31 / 1.58 / 1.64 / 3.74.
    assert!((g[0] - 1.31).abs() < 0.15, "BOGO geomean {:.2}", g[0]);
    assert!((g[1] - 1.58).abs() < 0.15, "WDL narrow geomean {:.2}", g[1]);
    assert!((g[2] - 1.64).abs() < 0.20, "WDL wide geomean {:.2}", g[2]);
    assert!(g[3] > 2.5, "HWST128 geomean {:.2} must be well clear", g[3]);
    // bzip2 is the HWST128 standout in Fig. 5 too.
    let bzip = rows.iter().find(|r| r.name == "bzip2").unwrap();
    assert!(
        bzip.speedup[3] >= g[3],
        "bzip2 ({:.2}x) must be at or above the geomean ({:.2}x)",
        bzip.speedup[3],
        g[3]
    );
}

/// Fig. 6 (E3): coverage totals, ASAN's CWE690 blindness, and the CWE122
/// delta — on the full modelled suite (the measured variant is validated
/// sample-wise in `hwst-juliet` and in full by the `fig6` binary).
#[test]
fn fig6_shape_holds() {
    let r = model_coverage();
    assert_eq!(r.total("GCC"), 937);
    assert_eq!(r.total("SBCETS"), 5395);
    assert_eq!(r.total("HWST128"), 5323);
    assert!((r.coverage("ASAN") - 0.5808).abs() < 0.002);
    // Ordering: SBCETS > HWST128 > ASAN > GCC (paper Fig. 6).
    assert!(r.total("SBCETS") > r.total("HWST128"));
    assert!(r.total("HWST128") > r.total("ASAN"));
    assert!(r.total("ASAN") > r.total("GCC"));
    // ASAN: zero CWE690.
    assert_eq!(r.count("ASAN", hwst128::juliet::Cwe::Cwe690), 0);
}

/// §5.3 (E4): the hardware-cost table is exact at the published
/// configuration.
#[test]
fn hwcost_matches_paper() {
    let r = hwst128_report(1);
    assert_eq!(r.delta().luts, 1536);
    assert_eq!(r.delta().ffs, 112);
    assert!((r.lut_overhead_pct() - 4.11).abs() < 0.02);
    assert!((r.ff_overhead_pct() - 0.66).abs() < 0.02);
    assert!((r.critical_path_base_ns - 5.26).abs() < 1e-9);
    assert!((r.critical_path_ns - 6.45).abs() < 0.01);
}

/// Overhead ratios are scale-stable: the Bench-scale run must land close
/// to the Test-scale run (the EXPERIMENTS.md claim). Both sides run on
/// the decoded-block fast engine (bit-identical to the cycle reference
/// by the `hwst-exec` differential contract), which makes the
/// Bench-scale sweep affordable in the CI heavy-gates job — it rides
/// the workspace `--ignored` sweep there.
#[test]
#[ignore = "Bench-scale simulation; runs in the CI heavy gates via --ignored"]
fn fig4_overheads_are_scale_stable() {
    use hwst128::exec::Engine;
    for name in ["sha", "treeadd", "bzip2"] {
        let wl = Workload::by_name(name).unwrap();
        let small = try_fig4_row_with(&wl, Scale::Test, Engine::Fast).unwrap();
        let big = try_fig4_row_with(&wl, Scale::Bench, Engine::Fast).unwrap();
        for k in 0..3 {
            let a = 1.0 + small.overhead_pct[k] / 100.0;
            let b = 1.0 + big.overhead_pct[k] / 100.0;
            let ratio = a / b;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{name} col {k}: {:.1}% (Test) vs {:.1}% (Bench)",
                small.overhead_pct[k],
                big.overhead_pct[k]
            );
        }
    }
}
