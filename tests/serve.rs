//! Tier-1 gates for the hwst-serve batch service (the S1
//! service-robustness experiment): the mixed hostile/benign workload
//! must produce zero unexplained panics, 100% typed rejection of
//! hostile submissions, at least one retry-after-backoff recovery,
//! cache hits that skip recompilation, an opened circuit breaker — and
//! the whole decision log must be byte-identical at any worker count.

use hwst_harness::NullSink;
use hwst_serve::{
    mixed_submissions, MixCategory, MixConfig, Serve, ServeConfig, ServeReport, TenantQuota,
    Verdict,
};

/// The S1 smoke configuration: small caps so the flood and the bombs
/// actually trip admission control and the circuit breaker.
fn smoke_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 64,
        batch: 8,
        quota: TenantQuota {
            // 6 = the 4 fuel bombs + the bomber's follow-up with room
            // to spare, while still small enough that the 8-strong
            // flood sheds its tail at admission.
            max_in_flight: 6,
            trips_to_open: 3,
            cooldown_ticks: 8,
            ..TenantQuota::default()
        },
        ..ServeConfig::default()
    }
}

fn run_smoke(workers: usize) -> ServeReport {
    let cfg = MixConfig::smoke();
    let mut serve = Serve::new(smoke_config(workers));
    let subs = mixed_submissions(&cfg, &smoke_config(workers).quota);
    for m in subs {
        let _ = serve.submit(m.submission);
    }
    serve.drain(&mut NullSink);
    serve.into_report()
}

#[test]
fn smoke_mix_meets_the_s1_robustness_bar() {
    let cfg = MixConfig::smoke();
    let quota = smoke_config(1).quota;
    let subs = mixed_submissions(&cfg, &quota);
    let report = run_smoke(1);
    assert_eq!(
        report.reports.len(),
        subs.len(),
        "one report per submission"
    );

    // 100% of hostile submissions end in a typed rejection.
    for (m, r) in subs.iter().zip(&report.reports) {
        if m.category == MixCategory::Hostile {
            assert!(
                r.verdict.is_rejection(),
                "hostile job{} ({}) ended {:?}",
                r.id,
                r.label,
                r.verdict
            );
        }
        if m.category == MixCategory::Benign || m.category == MixCategory::Duplicate {
            assert!(
                matches!(r.verdict, Verdict::Completed { .. }),
                "cooperative job{} ({}) ended {:?}",
                r.id,
                r.label,
                r.verdict
            );
        }
    }

    let s = report.stats;
    // The only worker panics are the chaos probes' induced ones.
    assert_eq!(s.panics_isolated, 3, "2 chaos probes fail 1 and 2 attempts");
    assert_eq!(s.retry_successes, 2, "both probes recover after backoff");
    assert!(s.retries >= 3);
    // Duplicates warm-start from the content-addressed cache.
    assert!(
        s.cache_hits >= 1,
        "no cache hit:\n{}",
        report.decision_log()
    );
    // The bomber's fuel bombs open its circuit; its follow-up is shed.
    assert!(s.quota_trips >= 3);
    assert!(s.circuit_opens >= 1, "{}", report.decision_log());
    assert!(s.shed_suspended >= 1, "{}", report.decision_log());
    // The flood is shed at admission, not blocked on.
    assert!(s.shed_at_submit >= 1);
    let flooder = report.tenants.get("flooder").expect("flooder state");
    assert!(flooder.shed >= 1, "flood past in-flight cap is shed");
}

#[test]
fn decision_log_is_byte_identical_across_worker_counts() {
    let serial = run_smoke(1);
    let log = serial.decision_log();
    assert!(!log.is_empty());
    for workers in [2, 8] {
        let parallel = run_smoke(workers);
        assert_eq!(
            log,
            parallel.decision_log(),
            "decision log diverged at {workers} workers"
        );
        assert_eq!(serial.stats, parallel.stats, "stats diverged at {workers}");
        assert_eq!(
            serial.json().to_string(),
            parallel.json().to_string(),
            "JSON summary diverged at {workers} workers"
        );
    }
}

#[test]
fn cache_hits_skip_recompilation() {
    // Same submission three times with batch=1: the first compiles, the
    // later two must warm-start (miss, hit, hit).
    let mut cfg = smoke_config(1);
    cfg.batch = 1;
    let mut serve = Serve::new(cfg);
    let template = mixed_submissions(&MixConfig::smoke(), &smoke_config(1).quota)
        .into_iter()
        .find(|m| m.category == MixCategory::Benign)
        .expect("a benign submission")
        .submission;
    for _ in 0..3 {
        serve.submit(template.clone()).expect("admitted");
    }
    serve.drain(&mut NullSink);
    let report = serve.into_report();
    assert_eq!(report.stats.cache_misses, 1);
    assert_eq!(report.stats.cache_hits, 2);
    assert!(!report.reports[0].cache_hit);
    assert!(report.reports[1].cache_hit && report.reports[2].cache_hit);
    // Warm starts inherit the cold run's decoded-block cache: both
    // warm attempts skip every block the cold run decoded.
    assert!(
        report.stats.decode_skips >= 2,
        "warm starts skipped no decodes: {}",
        report.stats.decode_skips
    );
    // All three agree on the run result — warm starts are bit-identical.
    let cycles: Vec<u64> = report
        .reports
        .iter()
        .map(|r| match r.verdict {
            Verdict::Completed { cycles, .. } => cycles,
            ref v => panic!("expected completion, got {v:?}"),
        })
        .collect();
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}
