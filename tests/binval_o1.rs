//! Tier-1 gate for `-O1` translation validation: every optimized image
//! must clear the same binary-level obligations as `-O0` plus the
//! register-allocation obligations, and the register-allocation
//! mutation suite must be killed completely.

use hwst_compiler::binval;
use hwst_compiler::{OptLevel, Scheme};
use hwst_workloads::{all, Scale, Workload};

const SCHEMES: [Scheme; 4] = [
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
];

const SMOKE: [&str; 4] = ["string", "math", "treeadd", "bzip2"];

#[test]
fn o1_images_validate_cleanly_under_every_scheme() {
    for wl in all() {
        let module = wl.module(Scale::Test);
        for scheme in SCHEMES {
            let tv = binval::translation_validate_opt(&module, scheme, OptLevel::O1)
                .unwrap_or_else(|e| panic!("{} ({scheme:?}): {e}", wl.name));
            assert!(
                !tv.diverged(),
                "{} ({scheme:?}, -O1): IR verdict {} vs binary verdict {}; \
                 ir_error={:?}, first finding: {:?}",
                wl.name,
                tv.ir_ok,
                tv.report.ok(),
                tv.ir_error,
                tv.report.findings.first().map(|f| f.to_string()),
            );
            assert!(tv.ok(), "{} ({scheme:?}, -O1) failed both levels", wl.name);
        }
    }
}

#[test]
fn o1_reg_mutation_smoke_suite_is_killed_completely() {
    let seeds: Vec<u64> = (0..8).map(|i| 0xB17A_1000 + i).collect();
    let mut total = 0usize;
    for name in SMOKE {
        let wl = Workload::by_name(name).expect("known workload");
        let module = wl.module(Scale::Test);
        for scheme in [Scheme::Hwst128, Scheme::Hwst128Tchk, Scheme::Shore] {
            let rep = binval::reg_mutation_campaign(&module, scheme, OptLevel::O1, &seeds)
                .unwrap_or_else(|e| panic!("{name} ({scheme:?}): {e}"));
            for o in &rep.outcomes {
                assert!(
                    o.killed,
                    "{name} ({scheme:?}): surviving reg mutant {} seed={:#x} site={} \
                     in {} ({} findings)",
                    o.mutation, o.seed, o.site, o.func, o.findings
                );
            }
            total += rep.total();
        }
    }
    assert!(total > 0, "reg mutation campaign generated no mutants");
}

#[test]
fn o0_images_have_no_regalloc_mutation_candidates() {
    // At `-O0` no pool register ever feeds a checked access, so the
    // clobber and drop-spill operators must be vacuous (scheduled-pair
    // sites legitimately exist at both tiers).
    let wl = Workload::by_name("bzip2").expect("known workload");
    let module = wl.module(Scale::Test);
    let rep = binval::reg_mutation_campaign(&module, Scheme::Hwst128, OptLevel::O0, &[1, 2, 3])
        .expect("campaign");
    assert!(
        rep.outcomes
            .iter()
            .all(|o| o.mutation != "clobber-live-reg" && o.mutation != "drop-spill"),
        "regalloc operators found sites in an -O0 image"
    );
    assert!(rep.all_killed(), "surviving mutant in -O0 campaign");
}

/// Bench-scale sweep of the full suite × schemes at `-O1`, plus the
/// full register-allocation mutation campaign. Heavy; run with
/// `--ignored` in the heavy gates.
#[test]
#[ignore = "heavy: full -O1 mutation campaign across the suite"]
fn o1_reg_mutation_full_suite_is_killed_completely() {
    let seeds: Vec<u64> = (0..8).map(|i| 0xB17A_1000 + i).collect();
    let mut total = 0usize;
    for wl in all() {
        let module = wl.module(Scale::Test);
        for scheme in [Scheme::Hwst128, Scheme::Hwst128Tchk, Scheme::Shore] {
            let rep = binval::reg_mutation_campaign(&module, scheme, OptLevel::O1, &seeds)
                .unwrap_or_else(|e| panic!("{} ({scheme:?}): {e}", wl.name));
            for o in &rep.outcomes {
                assert!(
                    o.killed,
                    "{} ({scheme:?}): surviving reg mutant {} seed={:#x} site={} in {}",
                    wl.name, o.mutation, o.seed, o.site, o.func
                );
            }
            total += rep.total();
        }
    }
    assert!(total > 0, "reg mutation campaign generated no mutants");
}
