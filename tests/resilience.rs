//! Resilience gate (R1): on clean temporal-heavy workloads under
//! HWST128_tchk, lock-word and shadow-word corruption must be caught by
//! the checks — never silent — and the whole campaign machinery must be
//! deterministic. Kept small: tier-1 runs in debug.

use hwst128::compiler::{compile, Scheme};
use hwst128::config_for;
use hwst128::sim::inject::{campaign, FaultClass};
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};

fn campaign_on(
    name: &str,
    class: FaultClass,
    seeds: &[u64],
) -> hwst128::sim::inject::OutcomeCounts {
    let wl = Workload::by_name(name).expect("known workload");
    let prog = compile(&wl.module(Scale::Test), Scheme::Hwst128Tchk).expect("compiles");
    let cfg = config_for(Scheme::Hwst128Tchk);
    campaign(
        || Machine::new(prog.clone(), cfg),
        wl.fuel(Scale::Test),
        class,
        seeds,
    )
}

#[test]
fn lock_and_shadow_corruption_is_never_silent_on_clean_workloads() {
    let seeds = [1u64, 2, 3];
    for class in [FaultClass::LockWordOverwrite, FaultClass::ShadowWordFlip] {
        let mut detected = 0;
        for name in ["bzip2", "hmmer"] {
            let c = campaign_on(name, class, &seeds);
            assert_eq!(
                c.silent, 0,
                "{class} on {name}: metadata corruption silently changed results"
            );
            assert_eq!(c.total(), seeds.len() as u64);
            detected += c.detected;
        }
        assert!(
            detected > 0,
            "{class}: temporal-heavy workloads must detect at least one \
             injected corruption (all {} runs were masked)",
            2 * seeds.len()
        );
    }
}

#[test]
fn keybuffer_poison_is_semantically_invisible() {
    // The keybuffer is timing-only: planting stale entries can never
    // change what the checks decide.
    let c = campaign_on("bzip2", FaultClass::KeybufferPoison, &[1, 2, 3]);
    assert_eq!(c.detected, 0);
    assert_eq!(c.silent, 0);
    assert_eq!(c.machine_fault, 0);
    assert_eq!(c.masked, 3);
}

#[test]
fn campaigns_are_deterministic() {
    let seeds = [7u64, 8];
    for class in FaultClass::ALL {
        let a = campaign_on("math", class, &seeds);
        let b = campaign_on("math", class, &seeds);
        assert_eq!(a, b, "{class}: campaign must be reproducible");
    }
}
