//! Experiment P1: per-function overhead attribution.
//!
//! Each workload is compiled for `HWST128_tchk` with the lowering plan
//! kept alongside, run under [`hwst128::sim::Machine::run_profiled`],
//! and the per-PC profile is folded through the plan's symbol ranges
//! into a hot-function table. The row carries the whole-run cycle split
//! (base / check / shadow / keybuffer / runtime), the uninstrumented
//! baseline for overhead context, and the hottest functions.
//!
//! Everything here is deterministic: same workload + scale ⇒ the same
//! row, bit for bit, on any worker count.

use hwst128::compiler::{compile, compile_with_plan, LowerPlan, Scheme};
use hwst128::exec::{BlockCache, Engine};
use hwst128::sim::Machine;
use hwst128::telemetry::{
    attribute, chrome_trace, collapsed_stacks, Breakdown, FnTable, Profiler, Symbol, SymbolTable,
};
use hwst128::workloads::{Scale, Workload};
use hwst128::{config_for, run_scheme_with};
use hwst_harness::Json;

/// Hot functions carried per row (the table is truncated, the JSON
/// summary carries the same truncation — symbols beyond this are summed
/// into the row totals regardless).
pub const HOT_FNS: usize = 5;

/// Ring-recorder capacity used for trace export.
pub const TRACE_RING: usize = 1 << 16;

/// One hot function of a profile row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotFn {
    /// Function name.
    pub name: String,
    /// Its cycles per category.
    pub cycles: Breakdown,
}

/// One P1 row: a workload's cycle-attribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Workload name.
    pub name: String,
    /// Whole-run cycles per category under `HWST128_tchk`.
    pub total: Breakdown,
    /// Uninstrumented (`Scheme::None`) cycles for overhead context.
    pub baseline_cycles: u64,
    /// Fraction of cycles attributed to named functions (startup-shim
    /// cycles are the only unattributed ones).
    pub attributed_fraction: f64,
    /// The [`HOT_FNS`] hottest functions, hottest first.
    pub hot: Vec<HotFn>,
}

impl ProfileRow {
    /// Eq. 7 overhead of the instrumented run over the baseline.
    pub fn overhead_pct(&self) -> f64 {
        (self.total.total() as f64 / self.baseline_cycles as f64 - 1.0) * 100.0
    }
}

/// Converts a lowering plan's function ranges into a telemetry symbol
/// table.
pub fn symbol_table(plan: &LowerPlan) -> SymbolTable {
    SymbolTable::new(
        plan.symbols()
            .into_iter()
            .map(|(name, start_pc, end_pc)| Symbol {
                name,
                start_pc,
                end_pc,
            })
            .collect(),
    )
}

fn profiled_table(
    wl: &Workload,
    scale: Scale,
    profiler: &mut Profiler,
    engine: Engine,
) -> Result<(FnTable, u64), String> {
    let module = wl.module(scale);
    let (prog, plan) = compile_with_plan(&module, Scheme::Hwst128Tchk)
        .map_err(|e| format!("{} (Hwst128Tchk): {e}", wl.name))?;
    let mut m = Machine::new(prog, config_for(Scheme::Hwst128Tchk));
    let mut cache = BlockCache::new();
    let exit = engine
        .run_profiled(&mut m, wl.fuel(scale), profiler, &mut cache)
        .map_err(|e| format!("{} (Hwst128Tchk): {e}", wl.name))?;
    let table = attribute(&profiler.profile, &symbol_table(&plan));
    debug_assert_eq!(table.total().total(), exit.stats.total_cycles());
    Ok((table, exit.stats.total_cycles()))
}

/// Computes one P1 row (fail-fast wrapper around [`try_profile_row`]).
pub fn profile_row(wl: &Workload, scale: Scale) -> ProfileRow {
    try_profile_row(wl, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// [`profile_row`] with structured errors. Runs under the fast engine
/// (the sweep default — attribution is bit-identical to the cycle
/// reference); use [`try_profile_row_with`] to pin the engine.
///
/// # Errors
///
/// Returns `"<workload> (<scheme>): <compile error/trap>"` when either
/// the profiled `HWST128_tchk` run or the baseline run fails.
pub fn try_profile_row(wl: &Workload, scale: Scale) -> Result<ProfileRow, String> {
    try_profile_row_with(wl, scale, Engine::Fast)
}

/// [`try_profile_row`] under an explicit execution engine.
///
/// # Errors
///
/// Same as [`try_profile_row`].
pub fn try_profile_row_with(
    wl: &Workload,
    scale: Scale,
    engine: Engine,
) -> Result<ProfileRow, String> {
    let mut profiler = Profiler::new();
    let (table, _) = profiled_table(wl, scale, &mut profiler, engine)?;
    let baseline_cycles = run_scheme_with(&wl.module(scale), Scheme::None, wl.fuel(scale), engine)
        .map_err(|e| format!("{} (None): {e}", wl.name))?
        .stats
        .total_cycles();
    Ok(ProfileRow {
        name: wl.name.to_string(),
        total: table.total(),
        baseline_cycles,
        attributed_fraction: table.attributed_fraction(),
        hot: table
            .rows
            .iter()
            .take(HOT_FNS)
            .map(|r| HotFn {
                name: r.name.clone(),
                cycles: r.cycles,
            })
            .collect(),
    })
}

/// The exportable artefacts of one profiled run: a Chrome trace-event
/// document (Perfetto-loadable) and collapsed-stack text for flamegraph
/// tooling.
#[derive(Debug, Clone)]
pub struct ProfileTrace {
    /// The `{"traceEvents": ...}` document.
    pub chrome: Json,
    /// `frame;frame count` lines.
    pub collapsed: String,
    /// Spans dropped by the ring recorder (0 unless the run out-ran
    /// [`TRACE_RING`]).
    pub dropped: u64,
}

/// Re-runs `wl` with a span recorder attached and exports both trace
/// forms.
///
/// # Errors
///
/// Same as [`try_profile_row`]'s profiled run.
pub fn try_profile_trace(wl: &Workload, scale: Scale) -> Result<ProfileTrace, String> {
    let mut profiler = Profiler::with_recorder(TRACE_RING);
    let (table, _) = profiled_table(wl, scale, &mut profiler, Engine::Fast)?;
    let recorder = profiler.recorder.as_ref();
    let events: Vec<_> = recorder.map(|r| r.to_vec()).unwrap_or_default();
    Ok(ProfileTrace {
        chrome: chrome_trace(&events),
        collapsed: collapsed_stacks(&table),
        dropped: recorder.map_or(0, |r| r.dropped()),
    })
}

/// Mean fraction of total cycles per category, over the given rows (in
/// [`Breakdown::CATEGORIES`] order) — the table's summary line.
pub fn profile_mean_fractions(rows: &[ProfileRow]) -> [f64; 5] {
    let mut out = [0.0f64; 5];
    if rows.is_empty() {
        return out;
    }
    for r in rows {
        let total = r.total.total().max(1) as f64;
        for (slot, (_, cycles)) in out.iter_mut().zip(r.total.iter()) {
            *slot += cycles as f64 / total;
        }
    }
    for slot in &mut out {
        *slot /= rows.len() as f64;
    }
    out
}

/// The P1 determinism check used by tests: a profiled run must not
/// perturb the machine — its cycle total equals the plain run's.
///
/// # Errors
///
/// Compile/trap messages from either run, or a description of the
/// mismatch.
pub fn check_profile_parity(wl: &Workload, scale: Scale) -> Result<(), String> {
    let module = wl.module(scale);
    let prog = compile(&module, Scheme::Hwst128Tchk)
        .map_err(|e| format!("{} (Hwst128Tchk): {e}", wl.name))?;
    let plain = Machine::new(prog.clone(), config_for(Scheme::Hwst128Tchk))
        .run(wl.fuel(scale))
        .map_err(|e| format!("{}: {e}", wl.name))?;
    let mut profiler = Profiler::new();
    let profiled = Machine::new(prog, config_for(Scheme::Hwst128Tchk))
        .run_profiled(wl.fuel(scale), &mut profiler)
        .map_err(|e| format!("{}: {e}", wl.name))?;
    if plain != profiled {
        return Err(format!(
            "{}: profiled run diverged from plain run ({} vs {} cycles)",
            wl.name,
            profiled.stats.total_cycles(),
            plain.stats.total_cycles()
        ));
    }
    if profiler.profile.total().total() != plain.stats.total_cycles() {
        return Err(format!(
            "{}: profile covers {} of {} cycles",
            wl.name,
            profiler.profile.total().total(),
            plain.stats.total_cycles()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_row_partitions_every_cycle() {
        let wl = Workload::by_name("math").unwrap();
        let r = try_profile_row(&wl, Scale::Test).unwrap();
        assert!(r.total.check > 0, "instrumented run has check cycles");
        assert!(r.overhead_pct() > 0.0);
        assert!(
            r.attributed_fraction >= 0.95,
            "only the shim is unattributed: {}",
            r.attributed_fraction
        );
        assert!(!r.hot.is_empty());
        // Hot-table rows never exceed the whole-run totals.
        let hot_sum: u64 = r.hot.iter().map(|h| h.cycles.total()).sum();
        assert!(hot_sum <= r.total.total());
    }

    #[test]
    fn profiled_run_has_no_observer_effect() {
        let wl = Workload::by_name("treeadd").unwrap();
        check_profile_parity(&wl, Scale::Test).unwrap();
    }

    #[test]
    fn fast_engine_attribution_matches_cycle_reference() {
        let wl = Workload::by_name("string").unwrap();
        let cycle = try_profile_row_with(&wl, Scale::Test, Engine::Cycle).unwrap();
        let fast = try_profile_row_with(&wl, Scale::Test, Engine::Fast).unwrap();
        assert_eq!(
            cycle, fast,
            "per-row attribution must be engine-independent"
        );
    }

    #[test]
    fn trace_export_is_loadable_json() {
        let wl = Workload::by_name("string").unwrap();
        let t = try_profile_trace(&wl, Scale::Test).unwrap();
        let parsed = Json::parse(&t.chrome.to_string()).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        assert!(events.len() > 5, "metadata events + payload spans");
        assert!(t.collapsed.lines().count() > 0);
    }

    #[test]
    fn mean_fractions_sum_to_one() {
        let wl = Workload::by_name("math").unwrap();
        let rows = vec![try_profile_row(&wl, Scale::Test).unwrap()];
        let f = profile_mean_fractions(&rows);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{f:?}");
    }
}
