//! # hwst-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Binaries (each prints the corresponding figure's rows):
//!
//! * `fig4` — performance overhead of SBCETS / HWST128 / HWST128_tchk
//!   over 23 workloads + geometric mean,
//! * `fig5` — speedup over SoftBoundCETS for BOGO, WDL narrow/wide and
//!   HWST128 on the SPEC set,
//! * `fig6` — Juliet security coverage for GCC/ASAN/SBCETS/HWST128,
//! * `hwcost` — the §5.3 LUT/FF/critical-path table,
//! * `ablation_keybuffer` — keybuffer size sweep (A1),
//! * `ablation_compression` — range/lock field width sweep (A2),
//! * `ablation_shadow` — linear map vs trie lookup cost (A3),
//! * `resilience` — metadata-path fault-injection campaigns (R1),
//! * `hwst-profile` — per-function overhead attribution and trace
//!   export (P1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod exec;
pub mod profile;
pub mod runs;
pub mod summary;

use hwst128::compiler::{compile, OptLevel, Scheme};
use hwst128::exec::Engine;
use hwst128::sim::{Machine, SafetyConfig};
use hwst128::workloads::{all, Scale, Suite, Workload};
use hwst128::{run_scheme_opt_with, run_scheme_with};

/// One Fig. 4 row: per-scheme overhead percentages for a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: Suite,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Overhead % for SBCETS, HWST128, HWST128_tchk (Eq. 7).
    pub overhead_pct: [f64; 3],
}

/// Runs one workload under every scheme and computes Eq. 7 overheads.
///
/// This is the fail-fast wrapper around [`try_fig4_row`] for callers
/// (unit tests, exploratory code) that want a panic on a broken
/// workload; the harness-driven sweeps use the `Result` form so one
/// bad workload becomes a structured failed row instead of killing the
/// table.
pub fn fig4_row(wl: &Workload, scale: Scale) -> Fig4Row {
    try_fig4_row(wl, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// [`fig4_row`] with structured errors. Sweeps default to the fast
/// engine ([`Engine::Fast`]) — bit-identical to the cycle reference by
/// the `hwst-exec` contract; use [`try_fig4_row_with`] to pin the
/// engine.
///
/// # Errors
///
/// Returns `"<workload> (<scheme>): <trap/compile error>"` for the
/// first scheme that fails to compile or run clean.
pub fn try_fig4_row(wl: &Workload, scale: Scale) -> Result<Fig4Row, String> {
    try_fig4_row_with(wl, scale, Engine::Fast)
}

/// [`try_fig4_row`] under an explicit execution engine.
///
/// # Errors
///
/// Same as [`try_fig4_row`].
pub fn try_fig4_row_with(wl: &Workload, scale: Scale, engine: Engine) -> Result<Fig4Row, String> {
    let module = wl.module(scale);
    let fuel = wl.fuel(scale);
    let mut cycles = [0.0f64; 4];
    for (slot, &s) in cycles.iter_mut().zip(Scheme::ALL.iter()) {
        *slot = run_scheme_with(&module, s, fuel, engine)
            .map_err(|e| format!("{} ({s}): {e}", wl.name))?
            .stats
            .total_cycles() as f64;
    }
    Ok(Fig4Row {
        name: wl.name.to_string(),
        suite: wl.suite,
        baseline_cycles: cycles[0] as u64,
        overhead_pct: [
            (cycles[1] / cycles[0] - 1.0) * 100.0,
            (cycles[2] / cycles[0] - 1.0) * 100.0,
            (cycles[3] / cycles[0] - 1.0) * 100.0,
        ],
    })
}

/// All Fig. 4 rows in the paper's order.
pub fn fig4_rows(scale: Scale) -> Vec<Fig4Row> {
    all().iter().map(|wl| fig4_row(wl, scale)).collect()
}

/// Geometric mean of each overhead column (the paper's rightmost bars:
/// SBCETS ≈ 441%, HWST128 ≈ 153%, HWST128_tchk ≈ 95%).
pub fn fig4_geomean(rows: &[Fig4Row]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (i, o) in out.iter_mut().enumerate() {
        let logsum: f64 = rows
            .iter()
            .map(|r| (1.0 + r.overhead_pct[i] / 100.0).ln())
            .sum();
        *o = ((logsum / rows.len() as f64).exp() - 1.0) * 100.0;
    }
    out
}

/// One O1-experiment row: the Fig. 4 matrix measured at both back-end
/// tiers, answering whether HWST128's relative overhead grows or
/// shrinks on an optimized baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4O1Row {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: Suite,
    /// Uninstrumented baseline cycles at `-O0`.
    pub o0_baseline_cycles: u64,
    /// Uninstrumented baseline cycles at `-O1`.
    pub o1_baseline_cycles: u64,
    /// Eq. 7 overhead % for SBCETS, HWST128, HWST128_tchk at `-O0`.
    pub o0_overhead_pct: [f64; 3],
    /// Eq. 7 overhead % for SBCETS, HWST128, HWST128_tchk at `-O1`.
    pub o1_overhead_pct: [f64; 3],
}

impl Fig4O1Row {
    /// `-O0` cycles over `-O1` cycles on the uninstrumented baseline —
    /// how much faster the optimizing back-end makes the program the
    /// overheads are measured against.
    pub fn baseline_speedup(&self) -> f64 {
        self.o0_baseline_cycles as f64 / (self.o1_baseline_cycles as f64).max(1.0)
    }
}

/// Computes one O1-experiment row: all four schemes at both tiers
/// (eight runs) under `engine`.
///
/// # Errors
///
/// Returns `"<workload> (<scheme>@<tier>): <trap/compile error>"` for
/// the first cell that fails to compile or run clean.
pub fn try_fig4_o1_row(wl: &Workload, scale: Scale, engine: Engine) -> Result<Fig4O1Row, String> {
    let module = wl.module(scale);
    let fuel = wl.fuel(scale);
    let mut cycles = [[0.0f64; 4]; 2];
    for (t, &opt) in [OptLevel::O0, OptLevel::O1].iter().enumerate() {
        for (slot, &s) in cycles[t].iter_mut().zip(Scheme::ALL.iter()) {
            *slot = run_scheme_opt_with(&module, s, fuel, opt, engine)
                .map_err(|e| format!("{} ({s}@{}): {e}", wl.name, opt.label()))?
                .stats
                .total_cycles() as f64;
        }
    }
    let over = |c: &[f64; 4]| {
        [
            (c[1] / c[0] - 1.0) * 100.0,
            (c[2] / c[0] - 1.0) * 100.0,
            (c[3] / c[0] - 1.0) * 100.0,
        ]
    };
    Ok(Fig4O1Row {
        name: wl.name.to_string(),
        suite: wl.suite,
        o0_baseline_cycles: cycles[0][0] as u64,
        o1_baseline_cycles: cycles[1][0] as u64,
        o0_overhead_pct: over(&cycles[0]),
        o1_overhead_pct: over(&cycles[1]),
    })
}

/// Geometric mean of the per-row baseline speedups (the ISSUE 9
/// acceptance number: ≥ 1.3×).
pub fn fig4_o1_geomean_speedup(rows: &[Fig4O1Row]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let logsum: f64 = rows.iter().map(|r| r.baseline_speedup().ln()).sum();
    (logsum / rows.len() as f64).exp()
}

/// Geometric mean of each `-O1` overhead column, mirroring
/// [`fig4_geomean`] for the optimized tier.
pub fn fig4_o1_geomean(rows: &[Fig4O1Row]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (i, o) in out.iter_mut().enumerate() {
        let logsum: f64 = rows
            .iter()
            .map(|r| (1.0 + r.o1_overhead_pct[i] / 100.0).ln())
            .sum();
        *o = ((logsum / rows.len().max(1) as f64).exp() - 1.0) * 100.0;
    }
    out
}

/// One Fig. 5 row: Eq. 8 speedups for a SPEC workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Row {
    /// Workload name.
    pub name: String,
    /// BOGO, WDL narrow, WDL wide, HWST128.
    pub speedup: [f64; 4],
}

/// Computes the Fig. 5 speedups for one workload (fail-fast wrapper
/// around [`try_fig5_row`]).
pub fn fig5_row(wl: &Workload, scale: Scale) -> Fig5Row {
    try_fig5_row(wl, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// [`fig5_row`] with structured errors.
///
/// # Errors
///
/// Returns the failing scheme's compile/trap message from the profile
/// runs, prefixed with the workload name.
pub fn try_fig5_row(wl: &Workload, scale: Scale) -> Result<Fig5Row, String> {
    use hwst128::baselines::{hwst_speedup, try_profile_workload, Comparator};
    let p = try_profile_workload(&wl.module(scale), wl.fuel(scale))
        .map_err(|e| format!("{}: {e}", wl.name))?;
    Ok(Fig5Row {
        name: wl.name.to_string(),
        speedup: [
            Comparator::Bogo.speedup(&p),
            Comparator::WdlNarrow.speedup(&p),
            Comparator::WdlWide.speedup(&p),
            hwst_speedup(&p),
        ],
    })
}

/// All Fig. 5 rows (SPEC suite).
pub fn fig5_rows(scale: Scale) -> Vec<Fig5Row> {
    hwst128::workloads::spec_suite()
        .iter()
        .map(|wl| fig5_row(wl, scale))
        .collect()
}

/// Geometric mean per speedup column (paper: 1.31 / 1.58 / 1.64 / 3.74).
pub fn fig5_geomean(rows: &[Fig5Row]) -> [f64; 4] {
    let mut out = [0.0; 4];
    for (i, o) in out.iter_mut().enumerate() {
        let logsum: f64 = rows.iter().map(|r| r.speedup[i].ln()).sum();
        *o = (logsum / rows.len() as f64).exp();
    }
    out
}

/// Cycle count of one workload at a given keybuffer size (A1 ablation;
/// fail-fast wrapper around [`try_cycles_with_keybuffer`]).
pub fn cycles_with_keybuffer(wl: &Workload, scale: Scale, entries: usize) -> u64 {
    try_cycles_with_keybuffer(wl, scale, entries).unwrap_or_else(|e| panic!("{e}"))
}

/// [`cycles_with_keybuffer`] with structured errors.
///
/// # Errors
///
/// Returns the compile error or trap, prefixed with the workload name
/// and keybuffer size.
pub fn try_cycles_with_keybuffer(
    wl: &Workload,
    scale: Scale,
    entries: usize,
) -> Result<u64, String> {
    let module = wl.module(scale);
    let prog = compile(&module, Scheme::Hwst128Tchk)
        .map_err(|e| format!("{} (kb={entries}): {e}", wl.name))?;
    let mut cfg = SafetyConfig::default();
    cfg.pipeline.keybuffer_entries = entries;
    cfg.keybuffer = entries > 0;
    Ok(Machine::new(prog, cfg)
        .run(wl.fuel(scale))
        .map_err(|e| format!("{} (kb={entries}): {e}", wl.name))?
        .stats
        .total_cycles())
}

use hwst128::sim::inject::{FaultClass, OutcomeCounts};

/// Campaign parameters for [`resilience_rows`] (experiment R1).
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Faulted runs per (fault class, target) cell.
    pub seeds_per_target: u64,
    /// Reachable Juliet cases sampled per CWE.
    pub juliet_per_cwe: u32,
    /// Base of the deterministic seed sequence.
    pub master_seed: u64,
    /// Workload names drawn from the Fig. 4 set (temporal-heavy A1
    /// subset by default — lock/keybuffer faults need `tchk` traffic to
    /// be observable).
    pub workloads: &'static [&'static str],
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            seeds_per_target: 8,
            juliet_per_cwe: 2,
            master_seed: 0xC0FF_EE00,
            workloads: &["bzip2", "hmmer", "health", "math"],
        }
    }
}

impl ResilienceConfig {
    /// The fast CI smoke configuration: fewer seeds, fewer targets.
    pub fn smoke() -> Self {
        ResilienceConfig {
            seeds_per_target: 3,
            juliet_per_cwe: 1,
            workloads: &["bzip2", "math"],
            ..Self::default()
        }
    }

    /// The deterministic seed sequence used for every campaign cell.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.seeds_per_target)
            .map(|i| self.master_seed.wrapping_add(i))
            .collect()
    }
}

/// One R1 row: per-fault-class outcome counters, split by target group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceRow {
    /// The injected fault class.
    pub class: FaultClass,
    /// Aggregated over the Fig. 4 workload subset.
    pub workloads: OutcomeCounts,
    /// Aggregated over the sampled Juliet cases.
    pub juliet: OutcomeCounts,
}

/// Runs the full R1 fault-injection campaign: every fault class against
/// the configured Fig. 4 workload subset and the sampled Juliet cases,
/// all under `HWST128_tchk`. Deterministic for a fixed config.
///
/// Fail-fast wrapper over [`runs::resilience_results`] on a one-worker
/// pool — the parallel campaign merges per-cell counters in job-ID
/// order, which is exactly this serial nesting, so both paths agree
/// bit-for-bit.
pub fn resilience_rows(rc: &ResilienceConfig, scale: Scale) -> Vec<ResilienceRow> {
    use hwst_harness::{NullSink, PoolConfig};
    let (rows, failed) = runs::resilience_results(rc, scale, &PoolConfig::serial(), &mut NullSink)
        .unwrap_or_else(|e| panic!("{e}"));
    if let Some(f) = failed.first() {
        panic!("campaign cell {}: {}", f.label, f.error);
    }
    rows
}

/// The R1 graceful-degradation guarantee: on the clean (bug-free)
/// temporal-heavy workloads, lock-word and shadow-word corruption must
/// never be *silent* — every injected fault is either detected by the
/// checks or provably benign. Returns the offending rows, empty on pass.
pub fn resilience_guarantee_violations(rows: &[ResilienceRow]) -> Vec<ResilienceRow> {
    rows.iter()
        .filter(|r| {
            matches!(
                r.class,
                FaultClass::LockWordOverwrite | FaultClass::ShadowWordFlip
            ) && r.workloads.silent > 0
        })
        .copied()
        .collect()
}

/// Convenience re-export for binaries.
pub use hwst128::juliet::{measure_coverage, model_coverage};

/// Pretty-prints a percentage column.
pub fn pct(v: f64) -> String {
    format!("{v:>8.1}%")
}

/// Unwraps a bench-bin `Result`, printing the error and exiting
/// non-zero instead of panicking (the bins are under the
/// `clippy::unwrap_used` panic audit).
pub fn require<T, E: std::fmt::Display>(what: &str, r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1)
    })
}

/// [`require`] for `Option` values.
pub fn require_some<T>(what: &str, v: Option<T>) -> T {
    v.unwrap_or_else(|| {
        eprintln!("error: {what}");
        std::process::exit(1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst128::config_for;

    #[test]
    fn fig4_row_computes_eq7() {
        let wl = Workload::by_name("math").unwrap();
        let r = fig4_row(&wl, Scale::Test);
        assert!(r.overhead_pct[0] > r.overhead_pct[1]);
        assert!(r.overhead_pct[1] > r.overhead_pct[2]);
        assert!(r.overhead_pct[2] > 0.0);
    }

    #[test]
    fn geomean_of_equal_rows_is_identity() {
        let rows = vec![
            Fig4Row {
                name: "a".into(),
                suite: Suite::MiBench,
                baseline_cycles: 1,
                overhead_pct: [100.0, 50.0, 25.0],
            },
            Fig4Row {
                name: "b".into(),
                suite: Suite::MiBench,
                baseline_cycles: 1,
                overhead_pct: [100.0, 50.0, 25.0],
            },
        ];
        let g = fig4_geomean(&rows);
        assert!((g[0] - 100.0).abs() < 1e-9);
        assert!((g[1] - 50.0).abs() < 1e-9);
        assert!((g[2] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn keybuffer_ablation_is_monotone_on_temporal_workload() {
        let wl = Workload::by_name("bzip2").unwrap();
        let none = cycles_with_keybuffer(&wl, Scale::Test, 0);
        let one = cycles_with_keybuffer(&wl, Scale::Test, 1);
        let eight = cycles_with_keybuffer(&wl, Scale::Test, 8);
        assert!(
            none > one,
            "a single entry must already help: {none} vs {one}"
        );
        assert!(one >= eight, "more entries never hurt: {one} vs {eight}");
    }

    #[test]
    fn config_for_matches_paper_setups() {
        assert!(!config_for(Scheme::Sbcets).temporal);
        assert!(config_for(Scheme::Hwst128Tchk).temporal);
    }
}
