//! # hwst-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Binaries (each prints the corresponding figure's rows):
//!
//! * `fig4` — performance overhead of SBCETS / HWST128 / HWST128_tchk
//!   over 23 workloads + geometric mean,
//! * `fig5` — speedup over SoftBoundCETS for BOGO, WDL narrow/wide and
//!   HWST128 on the SPEC set,
//! * `fig6` — Juliet security coverage for GCC/ASAN/SBCETS/HWST128,
//! * `hwcost` — the §5.3 LUT/FF/critical-path table,
//! * `ablation_keybuffer` — keybuffer size sweep (A1),
//! * `ablation_compression` — range/lock field width sweep (A2),
//! * `ablation_shadow` — linear map vs trie lookup cost (A3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hwst128::compiler::{compile, Scheme};
use hwst128::run_scheme;
use hwst128::sim::{Machine, SafetyConfig};
use hwst128::workloads::{all, Scale, Suite, Workload};

/// One Fig. 4 row: per-scheme overhead percentages for a workload.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Workload name.
    pub name: String,
    /// Suite label.
    pub suite: Suite,
    /// Baseline cycles.
    pub baseline_cycles: u64,
    /// Overhead % for SBCETS, HWST128, HWST128_tchk (Eq. 7).
    pub overhead_pct: [f64; 3],
}

/// Runs one workload under every scheme and computes Eq. 7 overheads.
pub fn fig4_row(wl: &Workload, scale: Scale) -> Fig4Row {
    let module = wl.module(scale);
    let fuel = wl.fuel(scale);
    let cycles: Vec<f64> = Scheme::ALL
        .iter()
        .map(|&s| {
            run_scheme(&module, s, fuel)
                .unwrap_or_else(|e| panic!("{} ({s}): {e}", wl.name))
                .stats
                .total_cycles() as f64
        })
        .collect();
    Fig4Row {
        name: wl.name.to_string(),
        suite: wl.suite,
        baseline_cycles: cycles[0] as u64,
        overhead_pct: [
            (cycles[1] / cycles[0] - 1.0) * 100.0,
            (cycles[2] / cycles[0] - 1.0) * 100.0,
            (cycles[3] / cycles[0] - 1.0) * 100.0,
        ],
    }
}

/// All Fig. 4 rows in the paper's order.
pub fn fig4_rows(scale: Scale) -> Vec<Fig4Row> {
    all().iter().map(|wl| fig4_row(wl, scale)).collect()
}

/// Geometric mean of each overhead column (the paper's rightmost bars:
/// SBCETS ≈ 441%, HWST128 ≈ 153%, HWST128_tchk ≈ 95%).
pub fn fig4_geomean(rows: &[Fig4Row]) -> [f64; 3] {
    let mut out = [0.0; 3];
    for (i, o) in out.iter_mut().enumerate() {
        let logsum: f64 = rows
            .iter()
            .map(|r| (1.0 + r.overhead_pct[i] / 100.0).ln())
            .sum();
        *o = ((logsum / rows.len() as f64).exp() - 1.0) * 100.0;
    }
    out
}

/// One Fig. 5 row: Eq. 8 speedups for a SPEC workload.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Workload name.
    pub name: String,
    /// BOGO, WDL narrow, WDL wide, HWST128.
    pub speedup: [f64; 4],
}

/// Computes the Fig. 5 speedups for one workload.
pub fn fig5_row(wl: &Workload, scale: Scale) -> Fig5Row {
    use hwst128::baselines::{hwst_speedup, profile_workload, Comparator};
    let p = profile_workload(&wl.module(scale), wl.fuel(scale));
    Fig5Row {
        name: wl.name.to_string(),
        speedup: [
            Comparator::Bogo.speedup(&p),
            Comparator::WdlNarrow.speedup(&p),
            Comparator::WdlWide.speedup(&p),
            hwst_speedup(&p),
        ],
    }
}

/// All Fig. 5 rows (SPEC suite).
pub fn fig5_rows(scale: Scale) -> Vec<Fig5Row> {
    hwst128::workloads::spec_suite()
        .iter()
        .map(|wl| fig5_row(wl, scale))
        .collect()
}

/// Geometric mean per speedup column (paper: 1.31 / 1.58 / 1.64 / 3.74).
pub fn fig5_geomean(rows: &[Fig5Row]) -> [f64; 4] {
    let mut out = [0.0; 4];
    for (i, o) in out.iter_mut().enumerate() {
        let logsum: f64 = rows.iter().map(|r| r.speedup[i].ln()).sum();
        *o = (logsum / rows.len() as f64).exp();
    }
    out
}

/// Cycle count of one workload at a given keybuffer size (A1 ablation).
pub fn cycles_with_keybuffer(wl: &Workload, scale: Scale, entries: usize) -> u64 {
    let module = wl.module(scale);
    let prog = compile(&module, Scheme::Hwst128Tchk).expect("compiles");
    let mut cfg = SafetyConfig::default();
    cfg.pipeline.keybuffer_entries = entries;
    cfg.keybuffer = entries > 0;
    Machine::new(prog, cfg)
        .run(wl.fuel(scale))
        .expect("runs clean")
        .stats
        .total_cycles()
}

/// Convenience re-export for binaries.
pub use hwst128::juliet::{measure_coverage, model_coverage};

/// Pretty-prints a percentage column.
pub fn pct(v: f64) -> String {
    format!("{v:>8.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst128::config_for;

    #[test]
    fn fig4_row_computes_eq7() {
        let wl = Workload::by_name("math").unwrap();
        let r = fig4_row(&wl, Scale::Test);
        assert!(r.overhead_pct[0] > r.overhead_pct[1]);
        assert!(r.overhead_pct[1] > r.overhead_pct[2]);
        assert!(r.overhead_pct[2] > 0.0);
    }

    #[test]
    fn geomean_of_equal_rows_is_identity() {
        let rows = vec![
            Fig4Row {
                name: "a".into(),
                suite: Suite::MiBench,
                baseline_cycles: 1,
                overhead_pct: [100.0, 50.0, 25.0],
            },
            Fig4Row {
                name: "b".into(),
                suite: Suite::MiBench,
                baseline_cycles: 1,
                overhead_pct: [100.0, 50.0, 25.0],
            },
        ];
        let g = fig4_geomean(&rows);
        assert!((g[0] - 100.0).abs() < 1e-9);
        assert!((g[1] - 50.0).abs() < 1e-9);
        assert!((g[2] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn keybuffer_ablation_is_monotone_on_temporal_workload() {
        let wl = Workload::by_name("bzip2").unwrap();
        let none = cycles_with_keybuffer(&wl, Scale::Test, 0);
        let one = cycles_with_keybuffer(&wl, Scale::Test, 1);
        let eight = cycles_with_keybuffer(&wl, Scale::Test, 8);
        assert!(
            none > one,
            "a single entry must already help: {none} vs {one}"
        );
        assert!(one >= eight, "more entries never hurt: {one} vs {eight}");
    }

    #[test]
    fn config_for_matches_paper_setups() {
        assert!(!config_for(Scheme::Sbcets).temporal);
        assert!(config_for(Scheme::Hwst128Tchk).temporal);
    }
}
