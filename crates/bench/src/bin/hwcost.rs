//! Regenerates the §5.3 hardware-cost table (LUTs, FFs, critical path).

use hwst128::hwcost::hwst128_report;

fn main() {
    let entries = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!("§5.3 — hardware cost (keybuffer entries: {entries})");
    println!("{}", hwst128_report(entries));
    println!();
    println!("paper: +1536 LUTs (+4.11%), +112 FFs (+0.66%), 5.26 ns -> 6.45 ns");
}
