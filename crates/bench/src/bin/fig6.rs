//! Regenerates Fig. 6: NIST-Juliet-style security coverage of GCC, ASAN,
//! SBCETS and HWST128. SBCETS/HWST128 detections are *measured* by
//! executing each case on the simulator; pass `--stride N` to sample
//! every Nth case (default 1 = the full 8366-case suite), or
//! `--model` for the instant modelled report.
//!
//! The measured sweep is chunked over the `hwst-harness` pool:
//! `--jobs N`, `--json PATH`, `--progress` (see `hwst_bench::cli`).

use hwst_bench::cli::BenchArgs;
use hwst_bench::model_coverage;
use hwst_bench::runs::fig6_results;
use hwst_bench::summary::{fig6_summary, write_json};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    if args.flag("--model") {
        println!("Fig. 6 — security coverage (modelled)");
        println!("{}", model_coverage());
        return;
    }
    let stride = args.parsed_value::<usize>("--stride").unwrap_or(1).max(1);
    let pool = args.pool();
    println!(
        "Fig. 6 — security coverage (SBCETS/HWST128 measured, stride {stride}, {} worker(s))",
        pool.workers
    );
    let start = Instant::now();
    let (report, failed) = fig6_results(stride, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    println!("{report}");
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!();
    println!("paper: GCC 11.20%  ASAN 58.08%  SBCETS 64.49%  HWST128 63.63%");
    println!(
        "wall {:.1} ms on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        pool.workers
    );
    if let Some(path) = args.json_path() {
        let doc = fig6_summary(stride, pool.workers, &report, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
