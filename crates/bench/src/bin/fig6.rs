//! Regenerates Fig. 6: NIST-Juliet-style security coverage of GCC, ASAN,
//! SBCETS and HWST128. SBCETS/HWST128 detections are *measured* by
//! executing each case on the simulator; pass `--stride N` to sample
//! every Nth case (default 1 = the full 8366-case suite), or
//! `--model` for the instant modelled report.

use hwst_bench::{measure_coverage, model_coverage};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--model") {
        println!("Fig. 6 — security coverage (modelled)");
        println!("{}", model_coverage());
        return;
    }
    let stride = args
        .iter()
        .position(|a| a == "--stride")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    println!("Fig. 6 — security coverage (SBCETS/HWST128 measured, stride {stride})");
    println!("{}", measure_coverage(stride));
    println!();
    println!("paper: GCC 11.20%  ASAN 58.08%  SBCETS 64.49%  HWST128 63.63%");
}
