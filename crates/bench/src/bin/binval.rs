//! `hwst-binval` — the binary-level translation-validation gate.
//!
//! Lowers every workload under every scheme, runs the machine-code
//! abstract interpreter (`hwst_compiler::binval`) against the IR-level
//! verifier, and runs the deterministic mutation campaign. Any
//! divergence, lowering finding or surviving mutant is a hard failure.
//!
//! Also reports the A9 ablation: checks statically discharged at
//! binary level beyond what IR-level RCE removed.
//!
//! Flags: the harness family (`--jobs`, `--json PATH`, `--progress`,
//! `--timeout-secs`, `--bench-scale`) plus `--smoke` (2 mutation seeds
//! per scheme instead of 8 — the CI configuration) and `--opt O0|O1`
//! (back-end tier; at `-O1` the register-allocation mutation campaign
//! replaces the metadata-plumbing one and validation carries the
//! register-tracking obligations).
//!
//! Exit codes (stable, documented in README): `0` — all workloads
//! validate and every mutant is killed; `1` — any divergence, finding,
//! surviving mutant or failed job; `2` — usage or I/O error.

use hwst128::compiler::OptLevel;
use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::{binval_results_opt, serial_wall, BINVAL_MASTER_SEED};
use hwst_bench::summary::{binval_summary, write_json};
use hwst_harness::collect_ok;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let scale = args.scale();
    let pool = args.pool();
    let opt = match args.value("--opt") {
        None => OptLevel::O0,
        Some(s) => OptLevel::by_name(s).unwrap_or_else(|| {
            eprintln!("error: unknown opt level {s:?} (expected O0 or O1)");
            std::process::exit(2)
        }),
    };
    let seeds_per_scheme: u64 = if smoke { 2 } else { 8 };
    println!(
        "binval — binary-level translation validation [-{}]{}, {} worker(s)",
        opt.label(),
        if smoke { " [smoke]" } else { "" },
        pool.workers
    );
    println!(
        "mutation campaign ({}): {seeds_per_scheme} seed(s)/scheme, master seed {:#x}",
        match opt {
            OptLevel::O0 => "metadata plumbing",
            OptLevel::O1 => "register allocation",
        },
        BINVAL_MASTER_SEED
    );
    let start = Instant::now();
    let results = binval_results_opt(scale, seeds_per_scheme, opt, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let (rows, failed) = collect_ok(results.clone());
    println!(
        "{:<10} {:<12} {:>7} {:>6} {:>9} {:>9} {:>7}",
        "workload", "scheme", "checked", "rce-", "inbounds", "redundant", "mutants"
    );
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>7} {:>6} {:>9} {:>9} {:>3}/{:<3}",
            r.name,
            r.scheme,
            r.checked_ops,
            r.rce_removed,
            r.discharged_in_bounds,
            r.discharged_redundant,
            r.mutants_killed,
            r.mutants
        );
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    let checked: usize = rows.iter().map(|r| r.checked_ops).sum();
    let discharged: usize = rows.iter().map(|r| r.discharged()).sum();
    let mutants: usize = rows.iter().map(|r| r.mutants).sum();
    println!("A9: {discharged}/{checked} checks discharged at binary level beyond IR-level RCE");
    println!(
        "mutation: {mutants} mutant(s), all killed: {}",
        failed.is_empty()
    );
    println!(
        "wall {:.1} ms (serial {:.1} ms) on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        serial_wall(&results).as_secs_f64() * 1e3,
        pool.workers
    );
    if let Some(path) = args.json_path() {
        let doc = binval_summary(
            scale,
            pool.workers,
            seeds_per_scheme,
            opt,
            &results,
            wall,
            &failed,
        );
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
