//! A4 ablation (extension): D-cache sensitivity. HWST128's metadata
//! traffic shares the D-cache with user data (the paper bypasses only
//! keybuffer hits); this sweep shows how the overhead of each scheme
//! responds to cache size and miss penalty.
//!
//! One harness job per cache point; `--jobs N`, `--progress` (see
//! `hwst_bench::cli`).

use hwst128::compiler::{compile, Scheme};
use hwst128::pipeline::CacheConfig;
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};
use hwst_bench::cli::BenchArgs;
use hwst_bench::require_some;
use hwst_harness::{collect_ok, run as pool_run, Job};

fn overhead(wl: &Workload, scheme: Scheme, dcache: CacheConfig) -> Result<f64, String> {
    let run = |scheme: Scheme| -> Result<u64, String> {
        let mut cfg = hwst128::config_for(scheme);
        cfg.pipeline.dcache = dcache;
        let prog = compile(&wl.module(Scale::Test), scheme)
            .map_err(|e| format!("{} ({scheme}): {e}", wl.name))?;
        Ok(Machine::new(prog, cfg)
            .run(wl.fuel(Scale::Test))
            .map_err(|e| format!("{} ({scheme}): {e}", wl.name))?
            .stats
            .total_cycles())
    };
    Ok((run(scheme)? as f64 / run(Scheme::None)? as f64 - 1.0) * 100.0)
}

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let wl = require_some("lbm", Workload::by_name("lbm"));
    println!(
        "A4 — D-cache sensitivity on {} (overhead %, Eq. 7), {} worker(s)",
        wl.name, pool.workers
    );
    println!(
        "{:<26} {:>9} {:>9} {:>9}",
        "dcache", "SBCETS", "HWST128", "_tchk"
    );
    let sweeps = [
        (
            "4 KiB, 20-cycle miss",
            CacheConfig {
                sets: 16,
                ways: 4,
                line_bytes: 64,
                miss_penalty: 20,
            },
        ),
        ("16 KiB, 20-cycle miss", CacheConfig::default()),
        (
            "64 KiB, 20-cycle miss",
            CacheConfig {
                sets: 256,
                ways: 4,
                line_bytes: 64,
                miss_penalty: 20,
            },
        ),
        (
            "16 KiB, 50-cycle miss",
            CacheConfig {
                miss_penalty: 50,
                ..CacheConfig::default()
            },
        ),
        (
            "16 KiB, 100-cycle miss",
            CacheConfig {
                miss_penalty: 100,
                ..CacheConfig::default()
            },
        ),
    ];
    let jobs: Vec<Job<(&'static str, [f64; 3])>> = sweeps
        .into_iter()
        .map(|(label, dc)| {
            Job::new(format!("a4/{label}"), move || {
                Ok((
                    label,
                    [
                        overhead(&wl, Scheme::Sbcets, dc)?,
                        overhead(&wl, Scheme::Hwst128, dc)?,
                        overhead(&wl, Scheme::Hwst128Tchk, dc)?,
                    ],
                ))
            })
        })
        .collect();
    let (rows, failed) = collect_ok(pool_run(jobs, &pool, args.sink().as_mut()));
    for (label, o) in &rows {
        println!("{:<26} {:>8.1}% {:>8.1}% {:>8.1}%", label, o[0], o[1], o[2]);
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!();
    println!("-> the kernels' working sets mostly fit even a 4 KiB cache, so");
    println!("   overheads are remarkably stable across the sweep — metadata");
    println!("   traffic is dominated by *instruction count*, not misses,");
    println!("   which is exactly why the paper attacks it with compression");
    println!("   and the keybuffer rather than with a bigger cache.");
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
