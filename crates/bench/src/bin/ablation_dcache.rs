//! A4 ablation (extension): D-cache sensitivity. HWST128's metadata
//! traffic shares the D-cache with user data (the paper bypasses only
//! keybuffer hits); this sweep shows how the overhead of each scheme
//! responds to cache size and miss penalty.

use hwst128::compiler::{compile, Scheme};
use hwst128::pipeline::CacheConfig;
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};

fn overhead(wl: &Workload, scheme: Scheme, dcache: CacheConfig) -> f64 {
    let run = |scheme: Scheme| -> u64 {
        let mut cfg = hwst128::config_for(scheme);
        cfg.pipeline.dcache = dcache;
        let prog = compile(&wl.module(Scale::Test), scheme).expect("compiles");
        Machine::new(prog, cfg)
            .run(wl.fuel(Scale::Test))
            .expect("runs clean")
            .stats
            .total_cycles()
    };
    (run(scheme) as f64 / run(Scheme::None) as f64 - 1.0) * 100.0
}

fn main() {
    let wl = Workload::by_name("lbm").expect("known workload");
    println!(
        "A4 — D-cache sensitivity on {} (overhead %, Eq. 7)",
        wl.name
    );
    println!(
        "{:<26} {:>9} {:>9} {:>9}",
        "dcache", "SBCETS", "HWST128", "_tchk"
    );
    let sweeps = [
        (
            "4 KiB, 20-cycle miss",
            CacheConfig {
                sets: 16,
                ways: 4,
                line_bytes: 64,
                miss_penalty: 20,
            },
        ),
        ("16 KiB, 20-cycle miss", CacheConfig::default()),
        (
            "64 KiB, 20-cycle miss",
            CacheConfig {
                sets: 256,
                ways: 4,
                line_bytes: 64,
                miss_penalty: 20,
            },
        ),
        (
            "16 KiB, 50-cycle miss",
            CacheConfig {
                miss_penalty: 50,
                ..CacheConfig::default()
            },
        ),
        (
            "16 KiB, 100-cycle miss",
            CacheConfig {
                miss_penalty: 100,
                ..CacheConfig::default()
            },
        ),
    ];
    for (label, dc) in sweeps {
        println!(
            "{:<26} {:>8.1}% {:>8.1}% {:>8.1}%",
            label,
            overhead(&wl, Scheme::Sbcets, dc),
            overhead(&wl, Scheme::Hwst128, dc),
            overhead(&wl, Scheme::Hwst128Tchk, dc),
        );
    }
    println!();
    println!("-> the kernels' working sets mostly fit even a 4 KiB cache, so");
    println!("   overheads are remarkably stable across the sweep — metadata");
    println!("   traffic is dominated by *instruction count*, not misses,");
    println!("   which is exactly why the paper attacks it with compression");
    println!("   and the keybuffer rather than with a bigger cache.");
}
