//! `hwst-exec` — experiment X1: decoded-block fast-engine speedup.
//!
//! Runs every workload (or the `--smoke` subset) under `HWST128_tchk`
//! with **both** engines — the reference cycle interpreter and the
//! decoded-block fast tier — times each on the host clock, and prints
//! the instructions-per-second table. Each row is also a differential
//! check: any divergence between the engines' exit statuses is a hard
//! row failure (non-zero exit), so a green table certifies bit-identity
//! over the measured set.
//!
//! Flags: the harness family (`--jobs`, `--json PATH`, `--progress`,
//! `--timeout-secs`, `--bench-scale`) plus `--smoke` for the 4-workload
//! CI subset and `--opt O0|O1` to measure the optimized back-end's
//! images instead of the baseline tier.
//!
//! Exit codes (stable, documented in README): `0` — every workload
//! measured and bit-identical; `1` — any failed or diverged workload;
//! `2` — usage or I/O error.

use hwst128::compiler::OptLevel;
use hwst_bench::cli::BenchArgs;
use hwst_bench::exec::exec_geomean;
use hwst_bench::runs::{exec_results_opt, profile_names, serial_wall};
use hwst_bench::summary::{exec_summary, write_json};
use hwst_harness::collect_ok;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let scale = args.scale();
    let pool = args.pool();
    let opt = match args.value("--opt") {
        None => OptLevel::O0,
        Some(s) => OptLevel::by_name(s).unwrap_or_else(|| {
            eprintln!("error: unknown opt level {s:?} (expected O0 or O1)");
            std::process::exit(2)
        }),
    };
    let names = profile_names(smoke);
    println!(
        "X1 — fast-engine speedup [-{}]{} ({} workloads), scale {scale:?}, {} worker(s)",
        opt.label(),
        if smoke { " [smoke]" } else { "" },
        names.len(),
        pool.workers
    );
    let start = Instant::now();
    let results = exec_results_opt(&names, scale, opt, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let (rows, failed) = collect_ok(results.clone());
    println!(
        "{:<10} {:<8} {:>12} {:>7} {:>11} {:>11} {:>8}",
        "workload", "suite", "instret", "blocks", "cycle Mips", "fast Mips", "speedup"
    );
    for r in &rows {
        println!(
            "{:<10} {:<8} {:>12} {:>7} {:>11.2} {:>11.2} {:>7.1}x",
            r.name,
            r.suite.to_string(),
            r.instret,
            r.decoded_blocks,
            r.cycle_ips() / 1e6,
            r.fast_ips() / 1e6,
            r.speedup()
        );
    }
    for f in &failed {
        println!("{:<10} FAILED   {}", f.label, f.error);
    }
    let g = exec_geomean(&rows);
    println!("geomean speedup: {g:.1}x (target >= 10x)");
    eprintln!(
        "wall {:.1} ms (serial {:.1} ms) on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        serial_wall(&results).as_secs_f64() * 1e3,
        pool.workers
    );
    if let Some(path) = args.json_path() {
        let doc = exec_summary(scale, pool.workers, opt, &results, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
