//! Regenerates Fig. 5: speedup over SoftBoundCETS (Eq. 8) for BOGO,
//! WatchdogLite narrow/wide and HWST128 on the SPEC workloads.
//!
//! Harness flags: `--jobs N`, `--json PATH`, `--timeout-secs N`,
//! `--progress` (see `hwst_bench::cli`).

use hwst_bench::cli::BenchArgs;
use hwst_bench::fig5_geomean;
use hwst_bench::runs::{fig5_results, serial_wall};
use hwst_bench::summary::{fig5_summary, write_json};
use hwst_harness::collect_ok;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let pool = args.pool();
    println!(
        "Fig. 5 — speedup over SBCETS (Eq. 8), scale {scale:?}, {} worker(s)",
        pool.workers
    );
    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>9}",
        "workload", "BOGO", "WDL(narrow)", "WDL(wide)", "HWST128"
    );
    let start = Instant::now();
    let results = fig5_results(scale, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let serial = serial_wall(&results);
    let (rows, failed) = collect_ok(results.clone());
    for r in &rows {
        println!(
            "{:<10} {:>6.2}x {:>11.2}x {:>9.2}x {:>8.2}x",
            r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
        );
    }
    for f in &failed {
        println!("{:<10} FAILED {}", f.label, f.error);
    }
    let g = fig5_geomean(&rows);
    println!(
        "{:<10} {:>6.2}x {:>11.2}x {:>9.2}x {:>8.2}x",
        "Geo. mean", g[0], g[1], g[2], g[3]
    );
    println!("paper     :  1.31x        1.58x      1.64x     3.74x");
    println!(
        "wall {:.1} ms on {} worker(s); serial-equivalent {:.1} ms ({:.2}x)",
        wall.as_secs_f64() * 1e3,
        pool.workers,
        serial.as_secs_f64() * 1e3,
        serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
    );
    if let Some(path) = args.json_path() {
        let doc = fig5_summary(scale, pool.workers, &results, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
