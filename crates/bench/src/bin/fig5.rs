//! Regenerates Fig. 5: speedup over SoftBoundCETS (Eq. 8) for BOGO,
//! WatchdogLite narrow/wide and HWST128 on the SPEC workloads.

use hwst128::workloads::Scale;
use hwst_bench::{fig5_geomean, fig5_rows};

fn main() {
    let scale = if std::env::args().any(|a| a == "--bench-scale") {
        Scale::Bench
    } else {
        Scale::Test
    };
    println!("Fig. 5 — speedup over SBCETS (Eq. 8), scale {scale:?}");
    println!(
        "{:<10} {:>7} {:>12} {:>10} {:>9}",
        "workload", "BOGO", "WDL(narrow)", "WDL(wide)", "HWST128"
    );
    let rows = fig5_rows(scale);
    for r in &rows {
        println!(
            "{:<10} {:>6.2}x {:>11.2}x {:>9.2}x {:>8.2}x",
            r.name, r.speedup[0], r.speedup[1], r.speedup[2], r.speedup[3]
        );
    }
    let g = fig5_geomean(&rows);
    println!(
        "{:<10} {:>6.2}x {:>11.2}x {:>9.2}x {:>8.2}x",
        "Geo. mean", g[0], g[1], g[2], g[3]
    );
    println!("paper     :  1.31x        1.58x      1.64x     3.74x");
}
