//! A7 ablation (the compression claim, measured): shadow-memory
//! footprint of *through-memory metadata propagation* with 128-bit
//! compressed metadata (HWST128) vs 256-bit uncompressed metadata
//! (SBCETS) — 16 vs 32 bytes per pointer container.
//!
//! The measurement excludes the shadow window of the stack region: in
//! the `-O0` back-end every frame slot doubles as a hardware metadata
//! home (register-spill shadow traffic), which is codegen bookkeeping,
//! not the paper's through-memory propagation. What remains is the
//! shadow of heap and global containers — the containers both schemes
//! shadow identically in *set*, differing only in bytes per entry.

use hwst128::compiler::{compile, Scheme};
use hwst128::config_for;
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{require, require_some};

/// Nonzero shadow bytes for heap/global containers after running `wl`.
fn container_shadow_bytes(wl: &Workload, scheme: Scheme) -> u64 {
    let prog = require(wl.name, compile(&wl.module(Scale::Test), scheme));
    let cfg = config_for(scheme);
    let l = cfg.layout;
    let shadow = |a: u64| (a << 2) + l.shadow_offset;
    let mut m = Machine::new(prog, cfg);
    require(wl.name, m.run(wl.fuel(Scale::Test)));
    let all = m.mem().nonzero_bytes_in(l.shadow_offset, u64::MAX);
    let stack = m
        .mem()
        .nonzero_bytes_in(shadow(l.stack_limit()), shadow(l.stack_top));
    all - stack
}

fn main() {
    println!("A7 — container-shadow footprint (nonzero bytes, stack excluded)");
    println!(
        "{:<11} {:>16} {:>18} {:>8}",
        "workload", "SBCETS (256b)", "HWST128 (128b)", "ratio"
    );
    let mut ratios = Vec::new();
    for name in ["treeadd", "em3d", "health", "tsp", "mst", "perimeter"] {
        let wl = require_some(name, Workload::by_name(name));
        let sb = container_shadow_bytes(&wl, Scheme::Sbcets);
        let hw = container_shadow_bytes(&wl, Scheme::Hwst128Tchk);
        let ratio = sb as f64 / hw as f64;
        ratios.push(ratio);
        println!("{name:<11} {sb:>14} B {hw:>16} B {ratio:>7.2}x");
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!();
    println!(
        "mean ratio {mean:.2}x measured on nonzero bytes. Architecturally the \
record"
    );
    println!("shrinks exactly 2x (32 -> 16 bytes per container); the measured");
    println!("ratio is lower because uncompressed records carry many zero");
    println!("bytes (high address bytes, small keys) that the counter skips —");
    println!("the denser compressed encoding is precisely the paper's point.");
}
