//! Static code-size table (extension): the instrumentation bloat factor
//! per scheme — how many machine instructions each protection level adds
//! to the same program (the paper reports runtime only; code size is the
//! other half of the deployment cost).
//!
//! `--scheme A,B,...` narrows (or widens — the zoo designs are valid
//! labels) the column set; the default is the published five.

use hwst128::compiler::{compile_with_sizes, Scheme};
use hwst128::workloads::{Scale, Workload};
use hwst_bench::cli::BenchArgs;
use hwst_bench::{require, require_some};

fn main() {
    let args = BenchArgs::parse();
    let schemes = args.schemes(&[
        Scheme::None,
        Scheme::Sbcets,
        Scheme::Hwst128,
        Scheme::Hwst128Tchk,
        Scheme::Shore,
    ]);
    if schemes.is_empty() {
        eprintln!("error: empty --scheme list");
        std::process::exit(2);
    }
    println!("static code size (machine instructions, whole program)");
    print!("{:<11}", "workload");
    for s in &schemes {
        print!(" {:>12}", s.label());
    }
    println!();
    let mut totals = vec![0usize; schemes.len()];
    for name in ["sha", "dijkstra", "treeadd", "health", "bzip2"] {
        let wl = require_some(name, Workload::by_name(name));
        let module = wl.module(Scale::Test);
        print!("{name:<11}");
        for (i, &s) in schemes.iter().enumerate() {
            let (prog, _) = require(name, compile_with_sizes(&module, s));
            print!(" {:>12}", prog.len());
            totals[i] += prog.len();
        }
        println!();
    }
    print!("{:<11}", "TOTAL");
    for t in &totals {
        print!(" {t:>12}");
    }
    println!();
    println!();
    if let Some(base) = schemes
        .iter()
        .position(|&s| s == Scheme::None)
        .map(|i| totals[i])
    {
        for (i, &s) in schemes.iter().enumerate() {
            if s == Scheme::None {
                continue;
            }
            println!(
                "{:<13} {:>5.2}x the baseline text size",
                s.label(),
                totals[i] as f64 / base as f64
            );
        }
        println!();
    }
    println!("-> full HWST128 (tchk) is the smallest *complete*-protection");
    println!("   text: one tchk replaces the software key-check sequence, and");
    println!("   bndr/sbd pairs replace SBCETS's runtime calls. The no-tchk");
    println!("   variant is the largest — it pays for hardware metadata AND");
    println!("   software temporal checks, exactly why the paper adds tchk.");
}
