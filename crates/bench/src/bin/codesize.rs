//! Static code-size table (extension): the instrumentation bloat factor
//! per scheme — how many machine instructions each protection level adds
//! to the same program (the paper reports runtime only; code size is the
//! other half of the deployment cost).

use hwst128::compiler::{compile_with_sizes, Scheme};
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{require, require_some};

fn main() {
    println!("static code size (machine instructions, whole program)");
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "workload", "baseline", "SBCETS", "HWST128", "_tchk", "SHORE"
    );
    let schemes = [
        Scheme::None,
        Scheme::Sbcets,
        Scheme::Hwst128,
        Scheme::Hwst128Tchk,
        Scheme::Shore,
    ];
    let mut totals = [0usize; 5];
    for name in ["sha", "dijkstra", "treeadd", "health", "bzip2"] {
        let wl = require_some(name, Workload::by_name(name));
        let module = wl.module(Scale::Test);
        let mut row = Vec::new();
        for (i, &s) in schemes.iter().enumerate() {
            let (prog, _) = require(name, compile_with_sizes(&module, s));
            row.push(prog.len());
            totals[i] += prog.len();
        }
        println!(
            "{:<11} {:>9} {:>9} {:>9} {:>9} {:>7}",
            name, row[0], row[1], row[2], row[3], row[4]
        );
    }
    println!(
        "{:<11} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "TOTAL", totals[0], totals[1], totals[2], totals[3], totals[4]
    );
    println!();
    for (i, &s) in schemes.iter().enumerate().skip(1) {
        println!(
            "{:<13} {:>5.2}x the baseline text size",
            s.label(),
            totals[i] as f64 / totals[0] as f64
        );
    }
    println!();
    println!("-> full HWST128 (tchk) is the smallest *complete*-protection");
    println!("   text: one tchk replaces the software key-check sequence, and");
    println!("   bndr/sbd pairs replace SBCETS's runtime calls. The no-tchk");
    println!("   variant is the largest — it pays for hardware metadata AND");
    println!("   software temporal checks, exactly why the paper adds tchk.");
}
