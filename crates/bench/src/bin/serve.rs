//! Regenerates S1: service robustness of `hwst-serve` under a mixed
//! hostile/benign multi-tenant workload — typed rejection of every
//! hostile submission, panic isolation with retry-after-backoff,
//! content-addressed cache hits, quota trips opening a circuit breaker.
//!
//! `--smoke` runs the reduced CI mix; the default is the full S1 mix
//! from EXPERIMENTS.md. `--jobs N` sets the worker count (the decision
//! log is byte-identical for any N), `--json PATH` writes the
//! `BENCH_serve.json` summary, `--progress` streams per-job lines.
//! Exits nonzero when the S1 acceptance bar is missed.

use hwst_bench::cli::BenchArgs;
use hwst_bench::summary::{serve_gate, serve_summary, write_json};
use hwst_serve::{mixed_submissions, MixCategory, MixConfig, Serve, ServeConfig, TenantQuota};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let jobs = args.jobs();
    let mix = if smoke {
        MixConfig::smoke()
    } else {
        MixConfig::full()
    };
    // Caps sized to the mix: the bomber's bombs and follow-up must all
    // be admitted (so the circuit-breaker path is exercised) while the
    // flood still overruns the in-flight quota and gets shed.
    let quota = TenantQuota {
        max_in_flight: mix.bombs + 2,
        trips_to_open: 3,
        cooldown_ticks: 8,
        ..TenantQuota::default()
    };
    let engine = args.engine();
    let cfg = ServeConfig {
        workers: jobs,
        queue_capacity: 64,
        batch: 8,
        quota,
        engine,
        ..ServeConfig::default()
    };
    println!(
        "S1 — service robustness{}, {} worker(s), {engine} engine",
        if smoke { " [smoke]" } else { "" },
        jobs
    );
    println!(
        "mix: {} benign, {} duplicates, {} hostile (+{} bombs +1 follow-up), {} chaos, {} flood — {} submissions",
        mix.benign, mix.duplicates, mix.hostile, mix.bombs, mix.chaos, mix.flood, mix.total()
    );
    let submissions = mixed_submissions(&mix, &cfg.quota);
    let categories: Vec<MixCategory> = submissions.iter().map(|m| m.category).collect();
    let start = Instant::now();
    let mut serve = Serve::new(cfg);
    for m in submissions {
        // Typed sheds are part of the experiment, not errors.
        let _ = serve.submit(m.submission);
    }
    serve.drain(args.sink().as_mut());
    let report = serve.into_report();
    let wall = start.elapsed();

    println!(
        "{:<10} {:>6} {:>9} {:>7}",
        "category", "total", "rejected", "served"
    );
    for cat in [
        MixCategory::Benign,
        MixCategory::Duplicate,
        MixCategory::Hostile,
        MixCategory::Chaos,
        MixCategory::Flood,
    ] {
        let rows: Vec<_> = report
            .reports
            .iter()
            .zip(&categories)
            .filter(|(_, c)| **c == cat)
            .collect();
        let rejected = rows
            .iter()
            .filter(|(r, _)| r.verdict.is_rejection())
            .count();
        println!(
            "{:<10} {:>6} {:>9} {:>7}",
            cat.name(),
            rows.len(),
            rejected,
            rows.len() - rejected
        );
    }
    let s = report.stats;
    println!(
        "completed {} | violations {} | faulted {} | rejected {} (shed at submit {}, suspended {})",
        s.completed, s.violations, s.faulted, s.rejected, s.shed_at_submit, s.shed_suspended
    );
    println!(
        "retries {} (successes {}) | panics isolated {} | cache {}/{} hit/miss ({} decode skips) | quota trips {} | circuits {} | {} ticks",
        s.retries,
        s.retry_successes,
        s.panics_isolated,
        s.cache_hits,
        s.cache_misses,
        s.decode_skips,
        s.quota_trips,
        s.circuit_opens,
        s.ticks
    );
    println!(
        "wall {:.1} ms on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        jobs
    );
    let violations = serve_gate(&categories, &report);
    if let Some(path) = args.json_path() {
        let doc = serve_summary(jobs, &mix, &categories, &report, wall);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if violations.is_empty() {
        println!("S1 robustness bar: PASS");
    } else {
        for v in &violations {
            eprintln!("S1 VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
