//! A8 ablation (extension): redundant-check elimination.
//!
//! The paper instruments at `-O0` and never merges checks, so every
//! dereference pays its full `tchk`/bounds cost even when an identical
//! check dominates it. This ablation reruns the Fig. 4 workloads under
//! `HWST128_tchk` with the dataflow-based RCE pass
//! (`hwst_compiler::rce`) switched on, with the metadata-completeness
//! verifier armed in both configurations, and reports:
//!
//! * static check sites before/after elimination,
//! * dynamic `tchk` executions (keybuffer hits + misses),
//! * total cycles and the resulting Eq. 7 overhead delta.
//!
//! One harness job per workload computes both configurations;
//! `--jobs N`, `--progress` (see `hwst_bench::cli`).

use hwst128::compiler::{compile_with_options, CompileOptions, Scheme};
use hwst128::config_for;
use hwst128::sim::Machine;
use hwst128::workloads::all;
use hwst_bench::cli::BenchArgs;
use hwst_harness::{collect_ok, run as pool_run, Job};

struct Run {
    static_checks: usize,
    removed: usize,
    dynamic_tchks: u64,
    cycles: u64,
}

fn run(module: &hwst128::compiler::ir::Module, fuel: u64, rce: bool) -> Result<Run, String> {
    let mut opts = CompileOptions::new(Scheme::Hwst128Tchk).with_verify();
    opts.rce = rce;
    let compiled = compile_with_options(module, opts)
        .map_err(|e| format!("compile/verify (rce={rce}): {e}"))?;
    let exit = Machine::new(compiled.program, config_for(Scheme::Hwst128Tchk))
        .run(fuel)
        .map_err(|e| format!("run (rce={rce}): {e}"))?;
    Ok(Run {
        static_checks: compiled.check_count,
        removed: compiled.rce.total(),
        dynamic_tchks: exit.stats.keybuffer_hits + exit.stats.keybuffer_misses,
        cycles: exit.stats.total_cycles(),
    })
}

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let pool = args.pool();
    println!(
        "A8 — redundant-check elimination (HWST128_tchk, scale {scale:?}, {} worker(s))",
        pool.workers
    );
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "workload", "static", "-rce", "removed", "dyn tchk", "dyn -rce", "dyn red.", "cyc red."
    );
    let jobs: Vec<Job<(String, Run, Run)>> = all()
        .into_iter()
        .map(|wl| {
            Job::new(format!("a8/{}", wl.name), move || {
                let module = wl.module(scale);
                let fuel = wl.fuel(scale);
                let plain = run(&module, fuel, false).map_err(|e| format!("{}: {e}", wl.name))?;
                let opt = run(&module, fuel, true).map_err(|e| format!("{}: {e}", wl.name))?;
                if opt.dynamic_tchks > plain.dynamic_tchks {
                    return Err(format!("{}: RCE must never add checks", wl.name));
                }
                Ok((wl.name.to_string(), plain, opt))
            })
        })
        .collect();
    let (rows, failed) = collect_ok(pool_run(jobs, &pool, args.sink().as_mut()));
    let mut improved = 0usize;
    let total = rows.len();
    for (name, plain, opt) in &rows {
        let dyn_red = 100.0 * (plain.dynamic_tchks - opt.dynamic_tchks) as f64
            / plain.dynamic_tchks.max(1) as f64;
        let cyc_red = 100.0 * (plain.cycles as f64 - opt.cycles as f64) / plain.cycles as f64;
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>12} {:>12} {:>7.1}% {:>7.1}%",
            name,
            plain.static_checks,
            opt.static_checks,
            opt.removed,
            plain.dynamic_tchks,
            opt.dynamic_tchks,
            dyn_red,
            cyc_red,
        );
        if opt.dynamic_tchks < plain.dynamic_tchks {
            improved += 1;
        }
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!();
    println!(
        "-> {improved}/{total} workloads execute strictly fewer tchks with RCE;\n   \
         the verifier accepts every eliminated binary, so coverage is intact."
    );
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
