//! A2 ablation: compression field-width sweep (paper §3.3 — "the range
//! bit needs to be at least 25 bits to pass the SPEC2006"; the lock
//! field sizes the live-allocation population).

use hwst128::metadata::{CompressionConfig, Metadata, ShadowCodec};
use hwst_bench::require;

fn main() {
    println!("A2 — range-width sweep: largest expressible object");
    println!(
        "{:>6} {:>18} {:>28}",
        "bits", "max object", "SPEC-class object fits?"
    );
    // The paper's SPEC runs need objects just under 2^28 bytes.
    let spec_object: u64 = (1 << 28) - 8;
    for range_bits in [20u8, 22, 24, 25, 26, 28, 29] {
        let cfg = require(
            "range sweep",
            CompressionConfig::new(35, range_bits, 20, 64 - 20),
        );
        let codec = ShadowCodec::new(cfg, 0x4000_0000);
        let fits = codec.compress_spatial(0, spec_object).is_ok();
        println!(
            "{:>6} {:>18} {:>28}",
            range_bits,
            cfg.max_range(),
            if fits { "yes" } else { "NO (SPEC would trap)" }
        );
    }

    println!();
    println!("A2 — lock-width sweep: live allocations supported");
    println!("{:>6} {:>18}", "bits", "lock entries");
    for lock_bits in [12u8, 16, 18, 20, 22] {
        let cfg = require(
            "lock sweep",
            CompressionConfig::new(35, 29, lock_bits, 64 - lock_bits),
        );
        println!("{:>6} {:>18}", lock_bits, cfg.lock_entries());
    }

    println!();
    println!("round-trip sanity at the paper's layout (35/29/20/44):");
    let codec = ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, 0x4000_0000);
    let md = Metadata {
        base: 0x1000_0000,
        bound: 0x1000_4000,
        key: 0xfeed,
        lock: 0x4000_0000 + 8 * 1234,
    };
    let c = require("round trip", codec.compress(md));
    println!("  {md}  ->  {c}  ->  {}", codec.decompress(c));
}
