//! A10 ablation: the static bounds-proof pass on top of RCE.
//!
//! Reruns the Fig. 4 workloads under every instrumented scheme in three
//! build configurations — checks-on (`plain`), redundant-check
//! elimination (`rce`) and RCE plus the value-range bounds prover
//! (`bounds`) — with the witness-checking verifier armed throughout,
//! and reports per workload:
//!
//! * static check sites surviving each configuration,
//! * sites proven in-bounds (one elimination witness each),
//! * dynamic `tchk` executions (keybuffer hits + misses,
//!   `HWST128_tchk`),
//! * total cycles and the Eq. 7 overhead against the uninstrumented
//!   baseline.
//!
//! Each workload job also runs the witness-forging mutation campaign
//! (`hwst_compiler::binval::witness_campaign`): every forged image must
//! fail binary validation, otherwise the bench exits non-zero. After
//! the sweep, a sampled Juliet pass asserts the bounds build detects
//! exactly the same violations as the RCE build (zero true-positive
//! cost).
//!
//! One harness job per workload; `--jobs N`, `--progress`, `--smoke`
//! (subset of workloads, one campaign seed), `--json PATH` (see
//! `hwst_bench::cli` and `boundscheck_summary` in
//! `hwst_bench::summary`).

use hwst128::compiler::{binval, compile, compile_with_options, CompileOptions, Scheme};
use hwst128::config_for;
use hwst128::juliet::{execute_detects_opts, sample_reachable};
use hwst128::sim::Machine;
use hwst128::workloads::all;
use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::{BoundsRow, BoundsRun};
use hwst_bench::summary::{boundscheck_summary, write_json};
use hwst_harness::{collect_ok, run as pool_run, Job};
use std::time::Instant;

/// The instrumented schemes a witness skip can reach.
const SCHEMES: [Scheme; 3] = [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk];

fn build_opts(scheme: Scheme, rce: bool, bounds: bool) -> CompileOptions {
    let mut opts = CompileOptions::new(scheme).with_verify();
    opts.rce = rce;
    opts.bounds = bounds;
    opts
}

fn run_one(
    module: &hwst128::compiler::ir::Module,
    fuel: u64,
    opts: CompileOptions,
) -> Result<BoundsRun, String> {
    let tag = |e: &dyn std::fmt::Display| {
        format!(
            "{} (rce={}, bounds={}): {e}",
            opts.scheme, opts.rce, opts.bounds
        )
    };
    let compiled = compile_with_options(module, opts).map_err(|e| tag(&e))?;
    let exit = Machine::new(compiled.program, config_for(opts.scheme))
        .run(fuel)
        .map_err(|e| tag(&e))?;
    Ok(BoundsRun {
        static_checks: compiled.check_count,
        proven: compiled.bounds.proven,
        cycles: exit.stats.total_cycles(),
        dynamic_tchks: exit.stats.keybuffer_hits + exit.stats.keybuffer_misses,
    })
}

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let pool = args.pool();
    let smoke = args.flag("--smoke");
    let campaign_seeds: Vec<u64> = if smoke { vec![3] } else { vec![3, 5, 9] };
    let started = Instant::now();
    println!(
        "A10 — static bounds-proof check elimination (scale {scale:?}, {} worker(s){})",
        pool.workers,
        if smoke { " [smoke]" } else { "" },
    );
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>12} {:>12} {:>8} {:>8}",
        "workload",
        "static",
        "rce",
        "bounds",
        "proven",
        "tchk rce",
        "tchk bounds",
        "ovh rce",
        "ovh bnd"
    );

    let workloads: Vec<_> = all()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !smoke || i % 4 == 0)
        .map(|(_, wl)| wl)
        .collect();
    let total_workloads = workloads.len();

    let jobs: Vec<Job<BoundsRow>> = workloads
        .into_iter()
        .map(|wl| {
            let seeds = campaign_seeds.clone();
            Job::new(format!("a10/{}", wl.name), move || {
                let module = wl.module(scale);
                let fuel = wl.fuel(scale);
                let baseline = compile(&module, Scheme::None)
                    .map_err(|e| format!("{}: baseline: {e}", wl.name))?;
                let base_exit = Machine::new(baseline, config_for(Scheme::None))
                    .run(fuel)
                    .map_err(|e| format!("{}: baseline: {e}", wl.name))?;
                let mut runs = Vec::new();
                for scheme in SCHEMES {
                    let plain = run_one(&module, fuel, build_opts(scheme, false, false))
                        .map_err(|e| format!("{}: {e}", wl.name))?;
                    let rce = run_one(&module, fuel, build_opts(scheme, true, false))
                        .map_err(|e| format!("{}: {e}", wl.name))?;
                    let bounds = run_one(&module, fuel, build_opts(scheme, true, true))
                        .map_err(|e| format!("{}: {e}", wl.name))?;
                    if bounds.static_checks > rce.static_checks {
                        return Err(format!(
                            "{}: bounds must never add checks under {scheme}",
                            wl.name
                        ));
                    }
                    runs.push((scheme.label().to_string(), [plain, rce, bounds]));
                }
                let campaign = binval::witness_campaign(&module, &seeds)
                    .map_err(|e| format!("{}: campaign: {e}", wl.name))?;
                if !campaign.all_killed() {
                    return Err(format!(
                        "{}: witness forgery survived validation ({}/{} killed)",
                        wl.name,
                        campaign.killed(),
                        campaign.total()
                    ));
                }
                Ok(BoundsRow {
                    name: wl.name.to_string(),
                    suite: wl.suite,
                    baseline_cycles: base_exit.stats.total_cycles(),
                    runs,
                    campaign_skips: campaign.skips,
                    campaign_mutants: campaign.total(),
                    campaign_killed: campaign.killed(),
                })
            })
        })
        .collect();
    let results = pool_run(jobs, &pool, args.sink().as_mut());
    let (rows, failed) = collect_ok(results.clone());

    let mut improved = 0usize;
    for row in &rows {
        let t = row.tchk();
        let ovh = |r: &BoundsRun| {
            100.0 * (r.cycles as f64 - row.baseline_cycles as f64) / row.baseline_cycles as f64
        };
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>7} {:>12} {:>12} {:>7.1}% {:>7.1}%",
            row.name,
            t[0].static_checks,
            t[1].static_checks,
            t[2].static_checks,
            t[2].proven,
            t[1].dynamic_tchks,
            t[2].dynamic_tchks,
            ovh(&t[1]),
            ovh(&t[2]),
        );
        if t[2].dynamic_tchks < t[1].dynamic_tchks {
            improved += 1;
        }
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }

    // Sampled Juliet detection gate: the bounds pass must cost zero
    // true positives (the full gate is the hwst-juliet `bounds_gate`
    // test; this keeps the bench honest on every run).
    let juliet_cases = sample_reachable(if smoke { 2 } else { 5 });
    let mut juliet_detected = 0usize;
    let mut juliet_lost = 0usize;
    for case in &juliet_cases {
        for scheme in [Scheme::Sbcets, Scheme::Hwst128Tchk] {
            let before = execute_detects_opts(case, build_opts(scheme, true, false));
            let after = execute_detects_opts(case, build_opts(scheme, true, true));
            if before {
                juliet_detected += 1;
                if !after {
                    juliet_lost += 1;
                }
            }
        }
    }

    println!();
    println!(
        "-> {improved}/{total_workloads} workloads execute strictly fewer tchks with \
         bounds than with RCE alone;\n   every witness forgery was killed by the binary \
         validator;\n   Juliet sample: {juliet_detected} detections with RCE, \
         {juliet_lost} lost with bounds on."
    );

    if let Some(path) = args.json_path() {
        let doc = boundscheck_summary(
            scale,
            pool.workers,
            &results,
            started.elapsed(),
            &failed,
            improved,
            (juliet_detected, juliet_lost),
        );
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() || juliet_lost > 0 {
        std::process::exit(1);
    }
}
