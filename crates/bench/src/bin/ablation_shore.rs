//! A6 ablation (paper lineage): SHORE vs HWST128 — the cost of adding
//! *temporal* safety on top of the spatial-only predecessor (DAC 2021).
//! The paper's premise is that HWST128 delivers complete safety at a
//! cost SHORE-class spatial-only designs don't have to pay; this ablation
//! measures that increment.

use hwst128::compiler::Scheme;
use hwst128::run_scheme;
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{require, require_some};

fn main() {
    println!("A6 — spatial-only (SHORE) vs complete safety (Eq. 7 overhead)");
    println!(
        "{:<11} {:>9} {:>13} {:>14}",
        "workload", "SHORE", "HWST128_tchk", "temporal cost"
    );
    for name in ["sha", "susan", "treeadd", "health", "bzip2", "hmmer"] {
        let wl = require_some(name, Workload::by_name(name));
        let module = wl.module(Scale::Test);
        let fuel = wl.fuel(Scale::Test);
        let cycles = |s: Scheme| {
            require(name, run_scheme(&module, s, fuel))
                .stats
                .total_cycles() as f64
        };
        let base = cycles(Scheme::None);
        let shore = (cycles(Scheme::Shore) / base - 1.0) * 100.0;
        let full = (cycles(Scheme::Hwst128Tchk) / base - 1.0) * 100.0;
        println!(
            "{:<11} {:>8.1}% {:>12.1}% {:>13.1}pp",
            name,
            shore,
            full,
            full - shore
        );
    }
    println!();
    println!("-> with tchk + keybuffer, complete (spatial+temporal) safety");
    println!("   costs only a few overhead points more than SHORE's");
    println!("   spatial-only protection — the paper's core pitch.");
}
