//! A1 ablation: keybuffer size sweep on the temporal-heavy workloads
//! (paper §3.5/§5.1 — the keybuffer is what separates HWST128_tchk from
//! HWST128; the published FF budget implies a single-entry buffer).

use hwst128::workloads::{Scale, Workload};
use hwst_bench::cycles_with_keybuffer;

fn main() {
    let sizes = [0usize, 1, 2, 4, 8, 16];
    let names = ["bzip2", "hmmer", "health", "math"];
    println!("A1 — keybuffer size sweep (HWST128_tchk cycles)");
    print!("{:<10}", "workload");
    for s in sizes {
        print!("{s:>12}");
    }
    println!();
    for name in names {
        let wl = Workload::by_name(name).expect("known workload");
        print!("{name:<10}");
        let base = cycles_with_keybuffer(&wl, Scale::Test, 0);
        for s in sizes {
            let c = cycles_with_keybuffer(&wl, Scale::Test, s);
            print!("{:>11.3}x", base as f64 / c as f64);
        }
        println!();
    }
    println!("(values are speedup over the no-keybuffer configuration)");
}
