//! A1 ablation: keybuffer size sweep on the temporal-heavy workloads
//! (paper §3.5/§5.1 — the keybuffer is what separates HWST128_tchk from
//! HWST128; the published FF budget implies a single-entry buffer).
//!
//! The (workload × size) grid runs on the `hwst-harness` pool:
//! `--jobs N`, `--progress` (see `hwst_bench::cli`).

use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::keybuffer_results;

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();
    let sizes = [0usize, 1, 2, 4, 8, 16];
    let names = ["bzip2", "hmmer", "health", "math"];
    println!(
        "A1 — keybuffer size sweep (HWST128_tchk cycles), {} worker(s)",
        pool.workers
    );
    print!("{:<10}", "workload");
    for s in sizes {
        print!("{s:>12}");
    }
    println!();
    let (rows, failed) =
        keybuffer_results(&names, &sizes, args.scale(), &pool, args.sink().as_mut());
    for row in &rows {
        print!("{:<10}", row.name);
        let base = row.cycles[0];
        for &c in &row.cycles {
            print!("{:>11.3}x", base as f64 / c as f64);
        }
        println!();
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!("(values are speedup over the no-keybuffer configuration)");
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
