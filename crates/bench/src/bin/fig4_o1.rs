//! The O1 overhead experiment: re-runs the Fig. 4 matrix at both
//! back-end tiers and answers the ISSUE 9 headline question — does
//! HWST128's relative overhead grow or shrink when the baseline it is
//! measured against is optimized (`-O1` linear-scan regalloc +
//! frame-slot elimination + metadata-op scheduling)?
//!
//! Accepts the harness family of flags (`--jobs`, `--json`,
//! `--timeout-secs`, `--bench-scale`, `--engine`) plus `--smoke` for
//! the 4-workload CI subset. The JSON summary (`BENCH_fig4_o1.json`)
//! reports per-workload `-O0`/`-O1` cycle counts, the geomean baseline
//! speedup against the 1.3× target, and both tiers' Eq. 7 overhead
//! geomeans.

use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::{fig4_o1_results, profile_names, serial_wall};
use hwst_bench::summary::{fig4_o1_summary, write_json};
use hwst_bench::{fig4_o1_geomean, fig4_o1_geomean_speedup, pct, Fig4O1Row};
use hwst_harness::collect_ok;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let pool = args.pool();
    let engine = args.engine();
    let smoke = args.flag("--smoke");
    let names = profile_names(smoke);
    println!(
        "O1 experiment — Fig. 4 at both back-end tiers{}, scale {scale:?}, {} workload(s), \
         {} worker(s), {engine} engine",
        if smoke { " [smoke]" } else { "" },
        names.len(),
        pool.workers
    );
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>8} {:>9} {:>9} {:>9}",
        "workload", "suite", "O0 cycles", "O1 cycles", "speedup", "O1 SBC", "O1 H128", "O1 _tchk"
    );
    let start = Instant::now();
    let results = fig4_o1_results(&names, scale, engine, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let serial = serial_wall(&results);
    let (rows, failed) = collect_ok(results.clone());
    for r in &rows {
        println!(
            "{:<12} {:<8} {:>12} {:>12} {:>7.2}x {} {} {}",
            r.name,
            r.suite.to_string(),
            r.o0_baseline_cycles,
            r.o1_baseline_cycles,
            r.baseline_speedup(),
            pct(r.o1_overhead_pct[0]),
            pct(r.o1_overhead_pct[1]),
            pct(r.o1_overhead_pct[2]),
        );
    }
    for f in &failed {
        println!("{:<12} FAILED   {}", f.label, f.error);
    }
    let g1 = fig4_o1_geomean(&rows);
    let speedup = fig4_o1_geomean_speedup(&rows);
    println!(
        "{:<12} {:<8} {:>12} {:>12} {:>7.2}x {} {} {}",
        "Geo. mean",
        "",
        "",
        "",
        speedup,
        pct(g1[0]),
        pct(g1[1]),
        pct(g1[2])
    );
    let o0_rows: Vec<hwst_bench::Fig4Row> = rows
        .iter()
        .map(|r: &Fig4O1Row| hwst_bench::Fig4Row {
            name: r.name.clone(),
            suite: r.suite,
            baseline_cycles: r.o0_baseline_cycles,
            overhead_pct: r.o0_overhead_pct,
        })
        .collect();
    let g0 = hwst_bench::fig4_geomean(&o0_rows);
    println!(
        "-O0 geomean: SBCETS {}  HWST128 {}  HWST128_tchk {}",
        pct(g0[0]),
        pct(g0[1]),
        pct(g0[2])
    );
    println!(
        "baseline speedup target 1.30x: {}",
        if speedup >= 1.3 { "met" } else { "NOT met" }
    );
    println!(
        "wall {:.1} ms on {} worker(s); serial-equivalent {:.1} ms ({:.2}x)",
        wall.as_secs_f64() * 1e3,
        pool.workers,
        serial.as_secs_f64() * 1e3,
        serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
    );
    if let Some(path) = args.json_path() {
        let doc = fig4_o1_summary(scale, pool.workers, &results, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
