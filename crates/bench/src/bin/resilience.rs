//! Regenerates R1: metadata-path fault-injection campaigns under
//! HWST128_tchk, AVF-style (detected / masked / silent / machine-fault
//! per fault class, split by target group).
//!
//! `--smoke` runs the reduced CI configuration; the default is the full
//! deterministic campaign from EXPERIMENTS.md.

use hwst128::sim::inject::OutcomeCounts;
use hwst128::workloads::Scale;
use hwst_bench::{resilience_guarantee_violations, resilience_rows, ResilienceConfig};

fn cell(c: &OutcomeCounts) -> String {
    format!(
        "{:>5} {:>5} {:>6} {:>6} {:>4} {:>7.3}",
        c.detected,
        c.masked,
        c.silent,
        c.machine_fault,
        c.not_applied,
        c.silent_fraction()
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rc = if smoke {
        ResilienceConfig::smoke()
    } else {
        ResilienceConfig::default()
    };
    println!(
        "R1 — metadata-path fault injection (HWST128_tchk){}",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "targets: {} (Fig. 4 subset) + Juliet sample ({} reachable case(s)/CWE)",
        rc.workloads.join(", "),
        rc.juliet_per_cwe
    );
    println!(
        "seeds/target: {}  master seed: {:#x}",
        rc.seeds_per_target, rc.master_seed
    );
    let hdr = "  det  mask silent mfault  n/a     avf";
    println!("{:<17}|{:^39}|{:^39}", "fault class", "workloads", "juliet");
    println!("{:<17}|{hdr} |{hdr}", "");
    let rows = resilience_rows(&rc, Scale::Test);
    for r in &rows {
        println!(
            "{:<17}| {} | {}",
            r.class.name(),
            cell(&r.workloads),
            cell(&r.juliet)
        );
    }
    let bad = resilience_guarantee_violations(&rows);
    if bad.is_empty() {
        println!("guarantee: lock/shadow corruption never silent on clean workloads — PASS");
    } else {
        for r in &bad {
            println!(
                "guarantee VIOLATED: {} silent={} on clean workloads",
                r.class.name(),
                r.workloads.silent
            );
        }
        std::process::exit(1);
    }
}
