//! Regenerates R1: metadata-path fault-injection campaigns under
//! HWST128_tchk, AVF-style (detected / masked / silent / machine-fault
//! per fault class, split by target group).
//!
//! `--smoke` runs the reduced CI configuration; the default is the full
//! deterministic campaign from EXPERIMENTS.md. Campaign cells (fault
//! class × target) run on the `hwst-harness` pool — `--jobs N`,
//! `--json PATH`, `--progress` (see `hwst_bench::cli`); per-class
//! counters are merged in job-ID order so any worker count reproduces
//! the serial table exactly.

use hwst128::sim::inject::OutcomeCounts;
use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::resilience_results;
use hwst_bench::summary::{resilience_summary, write_json};
use hwst_bench::{resilience_guarantee_violations, ResilienceConfig};
use std::time::Instant;

fn cell(c: &OutcomeCounts) -> String {
    format!(
        "{:>5} {:>5} {:>6} {:>6} {:>4} {:>7.3}",
        c.detected,
        c.masked,
        c.silent,
        c.machine_fault,
        c.not_applied,
        c.silent_fraction()
    )
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let scale = args.scale();
    let pool = args.pool();
    let rc = if smoke {
        ResilienceConfig::smoke()
    } else {
        ResilienceConfig::default()
    };
    println!(
        "R1 — metadata-path fault injection (HWST128_tchk){}, {} worker(s)",
        if smoke { " [smoke]" } else { "" },
        pool.workers
    );
    println!(
        "targets: {} (Fig. 4 subset) + Juliet sample ({} reachable case(s)/CWE)",
        rc.workloads.join(", "),
        rc.juliet_per_cwe
    );
    println!(
        "seeds/target: {}  master seed: {:#x}",
        rc.seeds_per_target, rc.master_seed
    );
    let start = Instant::now();
    let (rows, failed) = resilience_results(&rc, scale, &pool, args.sink().as_mut())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
    let wall = start.elapsed();
    let hdr = "  det  mask silent mfault  n/a     avf";
    println!("{:<17}|{:^39}|{:^39}", "fault class", "workloads", "juliet");
    println!("{:<17}|{hdr} |{hdr}", "");
    for r in &rows {
        println!(
            "{:<17}| {} | {}",
            r.class.name(),
            cell(&r.workloads),
            cell(&r.juliet)
        );
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!(
        "wall {:.1} ms on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        pool.workers
    );
    let bad = resilience_guarantee_violations(&rows);
    let guarantee_holds = bad.is_empty() && failed.is_empty();
    if let Some(path) = args.json_path() {
        let doc = resilience_summary(
            &rc,
            scale,
            pool.workers,
            &rows,
            wall,
            &failed,
            guarantee_holds,
        );
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if bad.is_empty() {
        println!("guarantee: lock/shadow corruption never silent on clean workloads — PASS");
    } else {
        for r in &bad {
            println!(
                "guarantee VIOLATED: {} silent={} on clean workloads",
                r.class.name(),
                r.workloads.silent
            );
        }
        std::process::exit(1);
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
