//! Regenerates Fig. 4: performance overhead of MiBench, Olden and
//! SPEC2006 under SBCETS, HWST128 and HWST128_tchk (Eq. 7).

use hwst128::workloads::Scale;
use hwst_bench::{fig4_geomean, fig4_rows, pct};

fn main() {
    let scale = if std::env::args().any(|a| a == "--bench-scale") {
        Scale::Bench
    } else {
        Scale::Test
    };
    println!("Fig. 4 — performance overhead (Eq. 7), scale {scale:?}");
    println!(
        "{:<12} {:<8} {:>12} {:>9} {:>9} {:>9}",
        "workload", "suite", "base cycles", "SBCETS", "HWST128", "_tchk"
    );
    let rows = fig4_rows(scale);
    for r in &rows {
        println!(
            "{:<12} {:<8} {:>12} {} {} {}",
            r.name,
            r.suite.to_string(),
            r.baseline_cycles,
            pct(r.overhead_pct[0]),
            pct(r.overhead_pct[1]),
            pct(r.overhead_pct[2]),
        );
    }
    for suite in [
        hwst128::workloads::Suite::MiBench,
        hwst128::workloads::Suite::Olden,
        hwst128::workloads::Suite::Spec,
    ] {
        let sub: Vec<_> = rows.iter().filter(|r| r.suite == suite).cloned().collect();
        let g = fig4_geomean(&sub);
        println!(
            "{:<12} {:<8} {:>12} {} {} {}",
            "(geomean)",
            suite.to_string(),
            "",
            pct(g[0]),
            pct(g[1]),
            pct(g[2])
        );
    }
    let g = fig4_geomean(&rows);
    println!(
        "{:<12} {:<8} {:>12} {} {} {}",
        "Geo. mean",
        "",
        "",
        pct(g[0]),
        pct(g[1]),
        pct(g[2])
    );
    println!("paper      : SBCETS 441.4%  HWST128 152.9%  HWST128_tchk 94.9%");
}
