//! Regenerates Fig. 4: performance overhead of MiBench, Olden and
//! SPEC2006 under SBCETS, HWST128 and HWST128_tchk (Eq. 7).
//!
//! Runs the workload × scheme matrix on the `hwst-harness` pool:
//! `--jobs N` (env `HWST_JOBS`) sizes the pool, `--json PATH` writes
//! the machine-readable summary, `--timeout-secs N` arms the per-job
//! watchdog, `--progress` streams per-job lines to stderr. A workload
//! that fails prints as a FAILED row and flips the exit code; it no
//! longer aborts the rest of the table.

use hwst_bench::cli::BenchArgs;
use hwst_bench::runs::{fig4_results_with, serial_wall};
use hwst_bench::summary::{fig4_summary, write_json};
use hwst_bench::{fig4_geomean, pct, Fig4Row};
use hwst_harness::collect_ok;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let scale = args.scale();
    let pool = args.pool();
    let engine = args.engine();
    println!(
        "Fig. 4 — performance overhead (Eq. 7), scale {scale:?}, {} worker(s), {engine} engine",
        pool.workers
    );
    println!(
        "{:<12} {:<8} {:>12} {:>9} {:>9} {:>9}",
        "workload", "suite", "base cycles", "SBCETS", "HWST128", "_tchk"
    );
    let start = Instant::now();
    let results = fig4_results_with(scale, engine, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let serial = serial_wall(&results);
    let (rows, failed) = collect_ok(results.clone());
    for r in &rows {
        println!(
            "{:<12} {:<8} {:>12} {} {} {}",
            r.name,
            r.suite.to_string(),
            r.baseline_cycles,
            pct(r.overhead_pct[0]),
            pct(r.overhead_pct[1]),
            pct(r.overhead_pct[2]),
        );
    }
    for f in &failed {
        println!("{:<12} FAILED   {}", f.label, f.error);
    }
    for suite in [
        hwst128::workloads::Suite::MiBench,
        hwst128::workloads::Suite::Olden,
        hwst128::workloads::Suite::Spec,
    ] {
        let sub: Vec<Fig4Row> = rows.iter().filter(|r| r.suite == suite).cloned().collect();
        if sub.is_empty() {
            continue;
        }
        let g = fig4_geomean(&sub);
        println!(
            "{:<12} {:<8} {:>12} {} {} {}",
            "(geomean)",
            suite.to_string(),
            "",
            pct(g[0]),
            pct(g[1]),
            pct(g[2])
        );
    }
    let g = fig4_geomean(&rows);
    println!(
        "{:<12} {:<8} {:>12} {} {} {}",
        "Geo. mean",
        "",
        "",
        pct(g[0]),
        pct(g[1]),
        pct(g[2])
    );
    println!("paper      : SBCETS 441.4%  HWST128 152.9%  HWST128_tchk 94.9%");
    println!(
        "wall {:.1} ms on {} worker(s); serial-equivalent {:.1} ms ({:.2}x)",
        wall.as_secs_f64() * 1e3,
        pool.workers,
        serial.as_secs_f64() * 1e3,
        serial.as_secs_f64() / wall.as_secs_f64().max(1e-9)
    );
    if let Some(path) = args.json_path() {
        let doc = fig4_summary(scale, pool.workers, &results, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
