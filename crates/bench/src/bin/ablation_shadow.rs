//! A3 ablation: linear-mapped shadow memory vs the shadow trie
//! (paper §2 — the trie utilises address space better; the linear map is
//! hardware-friendly with zero-indirection lookups).

use hwst128::compiler::{compile, Scheme};
use hwst128::mem::{LinearShadow, ShadowTrie};
use hwst128::pipeline::ShadowLayout;
use hwst128::sim::{Machine, SafetyConfig};
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{require, require_some};

fn cycles_with_layout(wl: &Workload, layout: ShadowLayout) -> u64 {
    let prog = require(
        wl.name,
        compile(&wl.module(Scale::Test), Scheme::Hwst128Tchk),
    );
    let mut cfg = SafetyConfig::default();
    cfg.pipeline.shadow_layout = layout;
    require(wl.name, Machine::new(prog, cfg).run(wl.fuel(Scale::Test)))
        .stats
        .total_cycles()
}

fn main() {
    println!("A3 — shadow layout: lookup cost and address-space footprint");
    let linear = LinearShadow::new(0x1_0000_0000);
    let mut trie = ShadowTrie::new();

    // A pointer-dense working set: 4096 containers over a 1 MiB heap,
    // plus a distant stack page (sparse address-space usage).
    let mut containers: Vec<u64> = (0..4096u64).map(|i| 0x0100_0000 + i * 256).collect();
    containers.extend((0..64u64).map(|i| 0x07ff_0000 + i * 8));
    for &c in &containers {
        trie.store(c, c, c ^ 0xffff);
    }

    // Lookup cost (dependent memory accesses per metadata access).
    println!(
        "{:<22} {:>24} {:>20}",
        "layout", "lookup mem accesses", "addr-space reserved"
    );
    println!(
        "{:<22} {:>24} {:>20}",
        "linear map (HWST128)", "0 (address arithmetic)", "2/3 of user space"
    );
    println!(
        "{:<22} {:>24} {:>20}",
        "trie (SBCETS)",
        format!("{} (dir + leaf)", ShadowTrie::LOOKUP_MEM_OPS),
        format!("{} leaf tables", trie.leaf_tables())
    );

    // Shadow addresses of the working set under the linear map span:
    let shadow_addrs = containers.iter().map(|&c| linear.shadow_addr(c));
    let lo = require_some("working set is nonempty", shadow_addrs.clone().min());
    let hi = require_some("working set is nonempty", shadow_addrs.max());
    println!();
    println!(
        "linear map shadow span for this working set: {:.1} MiB",
        (hi - lo) as f64 / (1 << 20) as f64
    );
    println!(
        "trie leaf storage for the same set:          {:.1} KiB",
        (trie.leaf_tables() * (1 << 14) * 16) as f64 / 1024.0
    );
    println!();
    println!("-> the linear map trades address space for zero-latency SMAC");
    println!("   address computation; the trie pays two dependent loads per");
    println!("   metadata access (what the SBCETS helpers model).");

    // Measured: HWST128_tchk cycles if the hardware used a trie instead.
    println!();
    println!("measured HWST128_tchk cycles, linear vs trie shadow:");
    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "workload", "linear", "trie", "slowdown"
    );
    for name in ["treeadd", "em3d", "bzip2"] {
        let wl = require_some(name, Workload::by_name(name));
        let lin = cycles_with_layout(&wl, ShadowLayout::Linear);
        let trie = cycles_with_layout(&wl, ShadowLayout::Trie);
        println!(
            "{:<12} {:>12} {:>12} {:>8.2}x",
            name,
            lin,
            trie,
            trie as f64 / lin as f64
        );
    }
    println!("-> the paper's choice of the linear map buys this back for free.");
}
