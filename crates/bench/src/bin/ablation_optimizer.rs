//! A5 ablation (extension): what the paper's `-O0` choice means.
//!
//! The evaluation compiles everything without optimization (§4). This
//! ablation reruns representative workloads with a light optimizer
//! (constant folding + copy propagation + DCE) applied *before*
//! instrumentation and compares the Eq. 7 overheads: the baseline gets
//! faster, the per-pointer check work does not, so relative overheads
//! rise — quantifying how much the `-O0` setting flatters (or not) each
//! scheme.

use hwst128::compiler::{compile, ir::Module, opt::optimize, Scheme};
use hwst128::config_for;
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Workload};
use hwst_bench::{require, require_some};

fn overheads(module: &Module, fuel: u64) -> [f64; 4] {
    let mut cycles = [0f64; 4];
    for (i, &scheme) in Scheme::ALL.iter().enumerate() {
        let prog = require("compile", compile(module, scheme));
        cycles[i] = require("run", Machine::new(prog, config_for(scheme)).run(fuel))
            .stats
            .total_cycles() as f64;
    }
    [
        cycles[0],
        (cycles[1] / cycles[0] - 1.0) * 100.0,
        (cycles[2] / cycles[0] - 1.0) * 100.0,
        (cycles[3] / cycles[0] - 1.0) * 100.0,
    ]
}

fn main() {
    println!("A5 — optimizer ablation (Eq. 7 overhead, -O0 vs optimized)");
    println!(
        "{:<11} {:<6} {:>11} {:>9} {:>9} {:>9}",
        "workload", "mode", "base cyc", "SBCETS", "HWST128", "_tchk"
    );
    for name in ["sha", "dijkstra", "treeadd", "bzip2"] {
        let wl = require_some(name, Workload::by_name(name));
        let fuel = wl.fuel(Scale::Test);
        let plain = overheads(&wl.module(Scale::Test), fuel);
        let opt = overheads(&optimize(wl.module(Scale::Test)), fuel);
        for (mode, o) in [("-O0", plain), ("opt", opt)] {
            println!(
                "{:<11} {:<6} {:>11.0} {:>8.1}% {:>8.1}% {:>8.1}%",
                name, mode, o[0], o[1], o[2], o[3]
            );
        }
    }
    println!();
    println!("-> optimization shrinks the baseline more than the checks, so");
    println!("   relative overheads rise; the *ordering* between schemes is");
    println!("   unchanged — the paper's conclusions do not hinge on -O0.");
}
