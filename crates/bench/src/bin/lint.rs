//! `hwst-lint` — the IR-level static safety linter as a CLI.
//!
//! Runs `hwst_compiler::lint` over workload modules (all of them by
//! default, or the names given as positional arguments) and prints the
//! structured diagnostics. `--json PATH` writes the machine-readable
//! report via the `hwst-harness` JSON writer.
//!
//! Exit codes (stable, documented in README): `0` — no diagnostics;
//! `1` — at least one diagnostic; `2` — usage error (unknown
//! workload) or I/O error.

use hwst128::compiler::lint::lint;
use hwst128::workloads::{all, Workload};
use hwst_bench::cli::BenchArgs;
use hwst_bench::summary::write_json;
use hwst_harness::Json;
use std::path::Path;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = BenchArgs::from_vec(raw.clone());
    let scale = args.scale();
    // Positional (non-flag) arguments name workloads; flags with a
    // value consume the following token.
    let mut names = Vec::new();
    let mut skip = false;
    for a in &raw {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = matches!(a.as_str(), "--jobs" | "--json" | "--timeout-secs");
            continue;
        }
        names.push(a.clone());
    }
    let targets: Vec<Workload> = if names.is_empty() {
        all()
    } else {
        names
            .iter()
            .map(|n| {
                Workload::by_name(n).unwrap_or_else(|| {
                    eprintln!("error: unknown workload `{n}`");
                    std::process::exit(2)
                })
            })
            .collect()
    };
    let mut total = 0usize;
    let mut rows = Vec::new();
    for wl in &targets {
        let diags = lint(&wl.module(scale));
        for d in &diags {
            println!("{}: {d}", wl.name);
        }
        total += diags.len();
        rows.push(
            Json::obj().set("name", wl.name).set(
                "diagnostics",
                Json::Arr(
                    diags
                        .iter()
                        .map(|d| {
                            Json::obj()
                                .set("func", d.func.as_str())
                                .set("block", d.block)
                                .set("inst", d.inst)
                                .set("severity", d.severity.to_string())
                                .set("cwe", d.cwe)
                                .set("message", d.message.as_str())
                        })
                        .collect(),
                ),
            ),
        );
    }
    println!("{total} diagnostic(s) across {} workload(s)", targets.len());
    if let Some(path) = args.json_path().map(Path::to_path_buf) {
        let doc = Json::obj()
            .set("schema", "hwst-bench/lint")
            .set("version", hwst_bench::summary::SCHEMA_VERSION)
            .set("scale", format!("{scale:?}"))
            .set("total", total)
            .set("rows", Json::Arr(rows));
        write_json(&path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if total > 0 {
        std::process::exit(1);
    }
}
