//! `hwst-profile` — experiment P1: per-function overhead attribution.
//!
//! Runs every workload (or the `--smoke` subset) under `HWST128_tchk`
//! with per-PC cycle attribution, folds the profile through the
//! compiler's symbol ranges, and prints the overhead-attribution table:
//! whole-run cycles split into base / check / shadow / keybuffer /
//! runtime, the attributed fraction, and the hottest function.
//!
//! Flags: the harness family (`--jobs`, `--json PATH`, `--progress`,
//! `--timeout-secs`, `--bench-scale`) plus:
//!
//! * `--smoke` — the 4-workload CI subset instead of all 23,
//! * `--trace WL` — write `TRACE_WL.json` (Chrome trace-event JSON,
//!   Perfetto-loadable) for workload `WL`,
//! * `--collapse WL` — write `FLAME_WL.txt` (collapsed stacks) for
//!   workload `WL`.
//!
//! Determinism: the table on stdout is byte-identical for any `--jobs`
//! value; timing/worker information goes to stderr only.
//!
//! Exit codes (stable, documented in README): `0` — every workload
//! profiled; `1` — any failed workload; `2` — usage or I/O error.

use hwst128::telemetry::Breakdown;
use hwst128::workloads::Workload;
use hwst_bench::cli::BenchArgs;
use hwst_bench::profile::{profile_mean_fractions, try_profile_trace};
use hwst_bench::runs::{profile_names, profile_results_with, serial_wall};
use hwst_bench::summary::{profile_summary, write_json};
use hwst_harness::collect_ok;
use std::time::Instant;

fn export_traces(args: &BenchArgs) {
    for (flag, prefix, ext) in [("--trace", "TRACE", "json"), ("--collapse", "FLAME", "txt")] {
        let Some(name) = args.value(flag) else {
            continue;
        };
        let Some(wl) = Workload::by_name(name) else {
            eprintln!("error: `{flag} {name}`: unknown workload");
            std::process::exit(2)
        };
        let t = try_profile_trace(&wl, args.scale()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
        let path = format!("{prefix}_{name}.{ext}");
        let body = if flag == "--trace" {
            format!("{}\n", t.chrome)
        } else {
            t.collapsed.clone()
        };
        std::fs::write(&path, body).unwrap_or_else(|e| {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(2)
        });
        if t.dropped > 0 {
            eprintln!("note: {path}: ring recorder dropped {} span(s)", t.dropped);
        }
        println!("wrote {path}");
    }
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let scale = args.scale();
    let pool = args.pool();
    let names = profile_names(smoke);
    let engine = args.engine();
    println!(
        "P1 — per-function overhead attribution{} ({} workloads, {engine} engine)",
        if smoke { " [smoke]" } else { "" },
        names.len()
    );
    let start = Instant::now();
    let results = profile_results_with(&names, scale, engine, &pool, args.sink().as_mut());
    let wall = start.elapsed();
    let (rows, failed) = collect_ok(results.clone());
    println!(
        "{:<10} {:>12} {:>9} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}  hottest",
        "workload", "cycles", "overhead", "base%", "check%", "shad%", "keyb%", "runt%", "attr%",
    );
    for r in &rows {
        let total = r.total.total().max(1) as f64;
        let pct = |c: u64| 100.0 * c as f64 / total;
        println!(
            "{:<10} {:>12} {:>8.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%  {}",
            r.name,
            r.total.total(),
            r.overhead_pct(),
            pct(r.total.base),
            pct(r.total.check),
            pct(r.total.shadow),
            pct(r.total.keybuffer),
            pct(r.total.runtime),
            r.attributed_fraction * 100.0,
            r.hot.first().map_or("-", |h| h.name.as_str())
        );
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    let mean = profile_mean_fractions(&rows);
    let mean_str: Vec<String> = Breakdown::CATEGORIES
        .iter()
        .zip(mean)
        .map(|(cat, f)| format!("{cat} {:.1}%", f * 100.0))
        .collect();
    println!("mean fraction: {}", mean_str.join(", "));
    export_traces(&args);
    eprintln!(
        "wall {:.1} ms (serial {:.1} ms) on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        serial_wall(&results).as_secs_f64() * 1e3,
        pool.workers
    );
    if let Some(path) = args.json_path() {
        let doc = profile_summary(scale, pool.workers, &results, wall, &failed);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
