//! Tiny shared argument parsing for the bench binaries.
//!
//! Every bin accepts the harness family of flags:
//!
//! * `--jobs N` — worker count (env fallback `HWST_JOBS`, default
//!   [`std::thread::available_parallelism`]),
//! * `--json PATH` — write the machine-readable summary there,
//! * `--timeout-secs N` — per-job watchdog,
//! * `--progress` — per-job progress lines on stderr (failures are
//!   always printed),
//! * `--bench-scale` — full-size workloads instead of `Scale::Test`.
//!
//! Bin-specific flags (`--smoke`, `--stride N`, `--model`) go through
//! [`BenchArgs::flag`] / [`BenchArgs::value`].

use hwst128::compiler::Scheme;
use hwst128::exec::Engine;
use hwst128::workloads::Scale;
use hwst_harness::{ConsoleSink, NullSink, PoolConfig, Sink};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Parsed command line of a bench bin.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Parses [`std::env::args`] (the program name is skipped).
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Builds from an explicit vector (for tests).
    pub fn from_vec(args: Vec<String>) -> Self {
        BenchArgs { args }
    }

    /// Is the bare flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The value following `name`, if both are present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// The value following `name`, parsed; malformed values abort with
    /// a clear message rather than being silently ignored.
    pub fn parsed_value<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.value(name).map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("error: `{name} {raw}` is not a valid value");
                std::process::exit(2)
            })
        })
    }

    /// The execution engine: `--engine fast|cycle`, default `fast`
    /// (bit-identical to `cycle`; only wall-clock differs).
    pub fn engine(&self) -> Engine {
        self.parsed_value::<Engine>("--engine").unwrap_or_default()
    }

    /// `Scale::Bench` when `--bench-scale` is given, else `Scale::Test`.
    pub fn scale(&self) -> Scale {
        if self.flag("--bench-scale") {
            Scale::Bench
        } else {
            Scale::Test
        }
    }

    /// Worker count: `--jobs N`, else `HWST_JOBS`, else the machine's
    /// available parallelism.
    pub fn jobs(&self) -> usize {
        self.parsed_value::<usize>("--jobs")
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| PoolConfig::from_env().workers)
    }

    /// The pool configuration implied by `--jobs`/`--timeout-secs`.
    pub fn pool(&self) -> PoolConfig {
        let mut cfg = PoolConfig::parallel(self.jobs());
        if let Some(secs) = self.parsed_value::<u64>("--timeout-secs") {
            cfg = cfg.with_timeout(Duration::from_secs(secs));
        }
        cfg
    }

    /// Target of `--json`, if requested.
    pub fn json_path(&self) -> Option<&Path> {
        self.value("--json").map(Path::new)
    }

    /// Target of `--json`, owned.
    pub fn json_path_buf(&self) -> Option<PathBuf> {
        self.json_path().map(Path::to_path_buf)
    }

    /// The scheme/design filter shared by the sweeping bins:
    /// `--scheme A,B,...` (repeatable), matched against
    /// [`Scheme::label`] case-insensitively, `none` accepted as an
    /// alias for `baseline`. Absent flags yield `default`; unknown
    /// labels abort with the known list rather than being silently
    /// dropped.
    pub fn schemes(&self, default: &[Scheme]) -> Vec<Scheme> {
        let mut picked = Vec::new();
        let mut explicit = false;
        for (i, a) in self.args.iter().enumerate() {
            if a != "--scheme" {
                continue;
            }
            explicit = true;
            let raw = self.args.get(i + 1).map(String::as_str).unwrap_or_default();
            for label in raw.split(',').filter(|l| !l.is_empty()) {
                let scheme = scheme_by_label(label).unwrap_or_else(|| {
                    let known: Vec<&str> = ALL_SCHEMES.iter().map(|s| s.label()).collect();
                    eprintln!(
                        "error: unknown scheme `{label}` (known: {})",
                        known.join(", ")
                    );
                    std::process::exit(2)
                });
                if !picked.contains(&scheme) {
                    picked.push(scheme);
                }
            }
        }
        if explicit {
            picked
        } else {
            default.to_vec()
        }
    }

    /// The progress sink: verbose per-job lines with `--progress`,
    /// failures-only otherwise.
    pub fn sink(&self) -> Box<dyn Sink> {
        if self.flag("--quiet") {
            Box::new(NullSink)
        } else {
            Box::new(ConsoleSink {
                verbose: self.flag("--progress"),
            })
        }
    }
}

/// Every scheme the compiler knows, in declaration order — the
/// `--scheme` match domain.
pub const ALL_SCHEMES: [Scheme; 9] = [
    Scheme::None,
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
    Scheme::RvCure,
    Scheme::L4Pointer,
    Scheme::CryptSan,
    Scheme::HeapSafe,
];

/// Resolves a scheme from its [`Scheme::label`] (case-insensitive);
/// `none` is accepted as an alias for `baseline`.
pub fn scheme_by_label(raw: &str) -> Option<Scheme> {
    if raw.eq_ignore_ascii_case("none") {
        return Some(Scheme::None);
    }
    ALL_SCHEMES
        .iter()
        .copied()
        .find(|s| s.label().eq_ignore_ascii_case(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_harness_flags() {
        let a = BenchArgs::from_vec(
            ["--jobs", "4", "--json", "out.json", "--timeout-secs", "9"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(a.jobs(), 4);
        assert_eq!(a.pool().workers, 4);
        assert_eq!(a.pool().timeout, Some(Duration::from_secs(9)));
        assert_eq!(a.json_path(), Some(Path::new("out.json")));
        assert_eq!(a.scale(), Scale::Test);
        assert!(!a.flag("--smoke"));
        assert_eq!(a.engine(), Engine::Fast);
    }

    #[test]
    fn parses_engine_flag() {
        let cycle = BenchArgs::from_vec(vec!["--engine".into(), "cycle".into()]);
        assert_eq!(cycle.engine(), Engine::Cycle);
        let fast = BenchArgs::from_vec(vec!["--engine".into(), "fast".into()]);
        assert_eq!(fast.engine(), Engine::Fast);
    }

    #[test]
    fn parses_scheme_lists() {
        let args = |v: &[&str]| BenchArgs::from_vec(v.iter().map(|s| s.to_string()).collect());
        let default = [Scheme::Hwst128Tchk];
        assert_eq!(args(&[]).schemes(&default), vec![Scheme::Hwst128Tchk]);
        assert_eq!(
            args(&["--scheme", "SBCETS,HWST128_tchk"]).schemes(&default),
            vec![Scheme::Sbcets, Scheme::Hwst128Tchk]
        );
        // Repeatable, case-insensitive, deduplicated, `none` aliased.
        assert_eq!(
            args(&["--scheme", "rv-cure", "--scheme", "none,RV-CURE"]).schemes(&default),
            vec![Scheme::RvCure, Scheme::None]
        );
        assert_eq!(scheme_by_label("heapsafe"), Some(Scheme::HeapSafe));
        assert_eq!(scheme_by_label("no-such"), None);
    }

    #[test]
    fn defaults_are_sane() {
        let a = BenchArgs::from_vec(vec!["--bench-scale".into(), "--smoke".into()]);
        assert!(a.jobs() >= 1);
        assert_eq!(a.pool().timeout, None);
        assert_eq!(a.json_path(), None);
        assert_eq!(a.scale(), Scale::Bench);
        assert!(a.flag("--smoke"));
    }
}
