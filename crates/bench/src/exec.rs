//! Experiment X1: host-side throughput of the decoded-block fast
//! engine against the reference cycle interpreter.
//!
//! Each workload is compiled once for `HWST128_tchk`, executed under
//! both engines, and timed on the host clock. The fast run starts from
//! a **cold** block cache, so its time includes decode and fusion — the
//! honest end-to-end cost a sweep pays. Before any number is reported
//! the two [`hwst128::sim::ExitStatus`] values are compared; a
//! divergence is a hard row failure, so the speedup table doubles as a
//! differential gate.
//!
//! Host wall-clock numbers vary run to run; the *simulated* quantities
//! (`instret`, exit status) are deterministic and are what the
//! correctness gates key on.

use hwst128::compiler::{compile_with_options, CompileOptions, OptLevel, Scheme};
use hwst128::config_for;
use hwst128::exec::{run_fast, BlockCache};
use hwst128::sim::Machine;
use hwst128::workloads::{Scale, Suite, Workload};
use std::time::Instant;

/// One X1 row: both engines' host times over one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecRow {
    /// Workload name.
    pub name: String,
    /// Its suite.
    pub suite: Suite,
    /// Instructions retired (identical in both engines, asserted).
    pub instret: u64,
    /// Host nanoseconds of the cycle-engine run.
    pub cycle_ns: u64,
    /// Host nanoseconds of the fast-engine run (cold cache: includes
    /// block decode and fusion).
    pub fast_ns: u64,
    /// Basic blocks decoded by the fast run.
    pub decoded_blocks: u64,
}

impl ExecRow {
    /// Fast-engine speedup over the cycle engine.
    pub fn speedup(&self) -> f64 {
        self.cycle_ns as f64 / self.fast_ns.max(1) as f64
    }

    /// Cycle-engine throughput in simulated instructions per host
    /// second.
    pub fn cycle_ips(&self) -> f64 {
        self.instret as f64 * 1e9 / self.cycle_ns.max(1) as f64
    }

    /// Fast-engine throughput in simulated instructions per host
    /// second.
    pub fn fast_ips(&self) -> f64 {
        self.instret as f64 * 1e9 / self.fast_ns.max(1) as f64
    }
}

/// Measures one X1 row (fail-fast wrapper around [`try_exec_row`]).
pub fn exec_row(wl: &Workload, scale: Scale) -> ExecRow {
    try_exec_row(wl, scale).unwrap_or_else(|e| panic!("{e}"))
}

/// [`exec_row`] with structured errors.
///
/// # Errors
///
/// Returns the compile error, the trap from either engine, or a
/// description of a result divergence (which would be a fast-engine
/// bug — the differential gates exist to keep this unreachable).
pub fn try_exec_row(wl: &Workload, scale: Scale) -> Result<ExecRow, String> {
    try_exec_row_opt(wl, scale, OptLevel::O0)
}

/// [`try_exec_row`] with the image built at a caller-chosen back-end
/// tier — `-O1` measures the fast engine over the optimized image the
/// production path now ships.
///
/// # Errors
///
/// Same as [`try_exec_row`].
pub fn try_exec_row_opt(wl: &Workload, scale: Scale, opt: OptLevel) -> Result<ExecRow, String> {
    let module = wl.module(scale);
    let opts = CompileOptions::new(Scheme::Hwst128Tchk).with_opt(opt);
    let prog = compile_with_options(&module, opts)
        .map_err(|e| format!("{} (Hwst128Tchk, -{}): {e}", wl.name, opt.label()))?
        .program;
    let fuel = wl.fuel(scale);
    let cfg = config_for(Scheme::Hwst128Tchk);

    let mut cycle_m = Machine::new(prog.clone(), cfg);
    let t = Instant::now();
    let cycle = cycle_m
        .run(fuel)
        .map_err(|e| format!("{} (cycle): {e}", wl.name))?;
    let cycle_ns = t.elapsed().as_nanos() as u64;

    let mut cache = BlockCache::new();
    let mut fast_m = Machine::new(prog, cfg);
    let t = Instant::now();
    let fast =
        run_fast(&mut fast_m, fuel, &mut cache).map_err(|e| format!("{} (fast): {e}", wl.name))?;
    let fast_ns = t.elapsed().as_nanos() as u64;

    if cycle != fast {
        return Err(format!(
            "{}: engines diverged — cycle exit {} / {} cycles vs fast exit {} / {} cycles",
            wl.name,
            cycle.code,
            cycle.stats.total_cycles(),
            fast.code,
            fast.stats.total_cycles(),
        ));
    }
    Ok(ExecRow {
        name: wl.name.to_string(),
        suite: wl.suite,
        instret: cycle.stats.instret,
        cycle_ns,
        fast_ns,
        decoded_blocks: cache.decodes(),
    })
}

/// Geometric-mean speedup over the rows (0.0 for an empty slice).
pub fn exec_geomean(rows: &[ExecRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let logsum: f64 = rows.iter().map(|r| r.speedup().ln()).sum();
    (logsum / rows.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_row_is_a_differential_check() {
        let wl = Workload::by_name("math").unwrap();
        let r = try_exec_row(&wl, Scale::Test).unwrap();
        assert!(r.instret > 0);
        assert!(r.decoded_blocks > 0);
        assert!(r.cycle_ns > 0 && r.fast_ns > 0);
    }

    #[test]
    fn geomean_of_identical_speedups_is_identity() {
        let row = |ns: u64| ExecRow {
            name: "x".into(),
            suite: Suite::MiBench,
            instret: 100,
            cycle_ns: 4 * ns,
            fast_ns: ns,
            decoded_blocks: 1,
        };
        let g = exec_geomean(&[row(100), row(1000)]);
        assert!((g - 4.0).abs() < 1e-9, "{g}");
    }
}
