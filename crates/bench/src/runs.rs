//! Harness-driven sweeps: every figure/ablation matrix expressed as
//! [`hwst_harness::Job`] vectors and executed on the worker pool.
//!
//! Determinism contract: each function enumerates its jobs in the same
//! nested order the historical serial loops used, and the harness
//! returns results in job-ID order — so a `--jobs 16` run produces the
//! same rows, in the same order, with the same aggregates as
//! `--jobs 1` (see `tests/harness_e2e.rs` and `crates/harness`'s own
//! determinism test).

use crate::{
    try_cycles_with_keybuffer, try_fig4_o1_row, try_fig4_row_with, try_fig5_row, Fig4O1Row,
    Fig4Row, Fig5Row, ResilienceConfig, ResilienceRow,
};
use hwst128::compiler::binval;
use hwst128::compiler::{compile, OptLevel, Scheme};
use hwst128::exec::Engine;
use hwst128::isa::Program;
use hwst128::juliet::{measure_case, CoverageReport};
use hwst128::sim::inject::{campaign, FaultClass, OutcomeCounts};
use hwst128::sim::Machine;
use hwst128::workloads::{all, spec_suite, Scale, Workload};
use hwst_harness::{collect_ok, run, FailedJob, Job, JobResult, PoolConfig, Sink};

/// One job per Fig. 4 workload, in the paper's row order, under the
/// sweep-default fast engine.
pub fn fig4_jobs(scale: Scale) -> Vec<Job<Fig4Row>> {
    fig4_jobs_with(scale, Engine::Fast)
}

/// [`fig4_jobs`] under an explicit execution engine.
pub fn fig4_jobs_with(scale: Scale, engine: Engine) -> Vec<Job<Fig4Row>> {
    all()
        .into_iter()
        .map(|wl| {
            Job::new(format!("fig4/{}", wl.name), move || {
                try_fig4_row_with(&wl, scale, engine)
            })
        })
        .collect()
}

/// Runs the Fig. 4 sweep on the pool; results in row order.
pub fn fig4_results(
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<Fig4Row>> {
    run(fig4_jobs(scale), cfg, sink)
}

/// [`fig4_results`] under an explicit execution engine.
pub fn fig4_results_with(
    scale: Scale,
    engine: Engine,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<Fig4Row>> {
    run(fig4_jobs_with(scale, engine), cfg, sink)
}

/// One job per O1-experiment workload, in `names` order. Unknown names
/// become failing jobs (structured failures, not panics).
pub fn fig4_o1_jobs(names: &[&str], scale: Scale, engine: Engine) -> Vec<Job<Fig4O1Row>> {
    names
        .iter()
        .map(|name| match Workload::by_name(name) {
            Some(wl) => Job::new(format!("fig4_o1/{}", wl.name), move || {
                try_fig4_o1_row(&wl, scale, engine)
            }),
            None => {
                let name = name.to_string();
                Job::new(format!("fig4_o1/{name}"), move || {
                    Err(format!("unknown workload `{name}`"))
                })
            }
        })
        .collect()
}

/// Runs the O1 experiment on the pool; results in `names` order.
pub fn fig4_o1_results(
    names: &[&str],
    scale: Scale,
    engine: Engine,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<Fig4O1Row>> {
    run(fig4_o1_jobs(names, scale, engine), cfg, sink)
}

/// One job per Fig. 5 SPEC workload, in the paper's row order.
pub fn fig5_jobs(scale: Scale) -> Vec<Job<Fig5Row>> {
    spec_suite()
        .into_iter()
        .map(|wl| {
            Job::new(format!("fig5/{}", wl.name), move || {
                try_fig5_row(&wl, scale)
            })
        })
        .collect()
}

/// Runs the Fig. 5 sweep on the pool; results in row order.
pub fn fig5_results(
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<Fig5Row>> {
    run(fig5_jobs(scale), cfg, sink)
}

/// Cases per Fig. 6 job: small enough to spread the 8366-case suite
/// over any worker count, large enough to amortise job overhead.
pub const FIG6_CHUNK: usize = 64;

/// Runs the measured Fig. 6 Juliet sweep (`1/stride` of the suite) on
/// the pool. Per-case verdicts are folded into the report in job-ID
/// (i.e. suite) order; a failed chunk surfaces as [`FailedJob`]s and
/// its cases are excluded from `total_cases`.
pub fn fig6_results(
    stride: usize,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> (CoverageReport, Vec<FailedJob>) {
    let cases: Vec<_> = hwst128::juliet::suite()
        .into_iter()
        .step_by(stride.max(1))
        .collect();
    let jobs: Vec<Job<Vec<hwst128::juliet::CaseDetections>>> = cases
        .chunks(FIG6_CHUNK)
        .enumerate()
        .map(|(i, chunk)| {
            let chunk = chunk.to_vec();
            Job::new(format!("fig6/chunk{i:03}"), move || {
                Ok(chunk.iter().map(measure_case).collect())
            })
        })
        .collect();
    let (batches, failed) = collect_ok(run(jobs, cfg, sink));
    let mut report = CoverageReport::default();
    for batch in batches {
        for d in &batch {
            report.absorb(d);
        }
    }
    (report, failed)
}

/// One A1 keybuffer-ablation row: cycles per swept size, in `sizes`
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeybufferRow {
    /// Workload name.
    pub name: String,
    /// `HWST128_tchk` cycles at each swept keybuffer size.
    pub cycles: Vec<u64>,
}

/// Runs the A1 keybuffer grid (one job per `(workload, size)` cell) on
/// the pool. Rows are only assembled when every cell of the workload
/// succeeded; failed cells are reported individually.
pub fn keybuffer_results(
    names: &[&str],
    sizes: &[usize],
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> (Vec<KeybufferRow>, Vec<FailedJob>) {
    let mut jobs = Vec::new();
    for name in names {
        let wl = match Workload::by_name(name) {
            Some(wl) => wl,
            None => {
                // One failing job per cell keeps the grid aligned for
                // the chunked row assembly below.
                for &entries in sizes {
                    let name = name.to_string();
                    jobs.push(Job::new(format!("a1/{name}/{entries}"), move || {
                        Err(format!("unknown workload `{name}`"))
                    }));
                }
                continue;
            }
        };
        for &entries in sizes {
            jobs.push(Job::new(format!("a1/{}/{entries}", wl.name), move || {
                try_cycles_with_keybuffer(&wl, scale, entries)
            }));
        }
    }
    let results = run(jobs, cfg, sink);
    let per_row = sizes.len().max(1);
    let mut rows = Vec::new();
    let mut failed = Vec::new();
    for (name, chunk) in names.iter().zip(results.chunks(per_row)) {
        let mut cycles = Vec::with_capacity(per_row);
        for r in chunk {
            match r.outcome.clone().into_result() {
                Ok(c) => cycles.push(c),
                Err(error) => failed.push(FailedJob {
                    id: r.id,
                    label: r.label.clone(),
                    error,
                }),
            }
        }
        if cycles.len() == per_row {
            rows.push(KeybufferRow {
                name: name.to_string(),
                cycles,
            });
        }
    }
    (rows, failed)
}

/// Runs the R1 fault-injection campaign on the pool: one job per
/// `(fault class, target)` cell, merged into per-class rows in job-ID
/// order (identical to the historical serial nesting).
///
/// # Errors
///
/// Returns `Err` when a target fails to *compile* — nothing has run at
/// that point. Per-cell campaign failures come back as [`FailedJob`]s
/// next to the (partial) rows.
#[allow(clippy::type_complexity)]
pub fn resilience_results(
    rc: &ResilienceConfig,
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Result<(Vec<ResilienceRow>, Vec<FailedJob>), String> {
    let safety = hwst128::config_for(Scheme::Hwst128Tchk);
    // Targets are compiled once, serially, and shared (cloned) into
    // every campaign cell; group 0 = Fig. 4 workloads, 1 = Juliet.
    let mut targets: Vec<(usize, String, Program, u64)> = Vec::new();
    for name in rc.workloads {
        let wl = Workload::by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
        let prog =
            compile(&wl.module(scale), Scheme::Hwst128Tchk).map_err(|e| format!("{name}: {e}"))?;
        targets.push((0, wl.name.to_string(), prog, wl.fuel(scale)));
    }
    for case in hwst128::juliet::sample_reachable(rc.juliet_per_cwe) {
        let module = hwst128::juliet::build_program(&case);
        let prog = compile(&module, Scheme::Hwst128Tchk)
            .map_err(|e| format!("juliet CWE{}: {e}", case.cwe.code()))?;
        targets.push((
            1,
            format!("CWE{}#{}", case.cwe.code(), case.index),
            prog,
            5_000_000,
        ));
    }
    let seeds = rc.seeds();
    let mut jobs = Vec::new();
    for (ci, &class) in FaultClass::ALL.iter().enumerate() {
        for (group, name, prog, fuel) in &targets {
            let (group, fuel) = (*group, *fuel);
            let prog = prog.clone();
            let seeds = seeds.clone();
            jobs.push(Job::new(format!("r1/{}/{name}", class.name()), move || {
                Ok((
                    ci,
                    group,
                    campaign(|| Machine::new(prog.clone(), safety), fuel, class, &seeds),
                ))
            }));
        }
    }
    let (cells, failed) = collect_ok(run(jobs, cfg, sink));
    let mut rows: Vec<ResilienceRow> = FaultClass::ALL
        .iter()
        .map(|&class| ResilienceRow {
            class,
            workloads: OutcomeCounts::default(),
            juliet: OutcomeCounts::default(),
        })
        .collect();
    for (ci, group, counts) in cells {
        if group == 0 {
            rows[ci].workloads.merge(counts);
        } else {
            rows[ci].juliet.merge(counts);
        }
    }
    Ok((rows, failed))
}

/// The schemes the binary validator gates, in report order.
pub const BINVAL_SCHEMES: [Scheme; 4] = [
    Scheme::Sbcets,
    Scheme::Hwst128,
    Scheme::Hwst128Tchk,
    Scheme::Shore,
];

/// Master seed of the deterministic mutation campaign (EXPERIMENTS.md
/// A9); per-mutant seeds are stretched from it with splitmix64 inside
/// `binval::mutation_campaign`.
pub const BINVAL_MASTER_SEED: u64 = 0xB17A_1000;

/// Mutation seeds for the given campaign width.
pub fn binval_seeds(per_scheme: u64) -> Vec<u64> {
    (0..per_scheme).map(|i| BINVAL_MASTER_SEED + i).collect()
}

/// One cell of the binval gate: a workload validated under one scheme,
/// with the A9 discharge counters and the mutation-campaign verdict.
#[derive(Debug, Clone)]
pub struct BinvalRow {
    /// Workload name.
    pub name: String,
    /// Scheme label (`{:?}` of [`Scheme`]).
    pub scheme: String,
    /// IR-level completeness verdict.
    pub ir_ok: bool,
    /// Binary-level validation verdict.
    pub bin_ok: bool,
    /// Statically-proven program bugs (informational; zero on the
    /// benign workload suite).
    pub static_bugs: usize,
    /// Checked machine accesses analysed.
    pub checked_ops: usize,
    /// IR-level checks removed by RCE (the A9 baseline).
    pub rce_removed: usize,
    /// Checks proven in-bounds at binary level.
    pub discharged_in_bounds: usize,
    /// Checks proven redundant at binary level.
    pub discharged_redundant: usize,
    /// Candidate mutation sites in the lowered image.
    pub mutation_candidates: usize,
    /// Mutants generated by the seeded campaign.
    pub mutants: usize,
    /// Mutants the validator rejected.
    pub mutants_killed: usize,
}

impl BinvalRow {
    /// Checks discharged at binary level beyond IR-level RCE.
    pub fn discharged(&self) -> usize {
        self.discharged_in_bounds + self.discharged_redundant
    }
}

/// Validates one workload under one scheme and runs the seeded mutation
/// campaign against it.
///
/// # Errors
///
/// Translation-validation divergence, lowering findings and surviving
/// mutants are all *hard errors* (the gate semantics ISSUE 4 asks for),
/// as are compile failures.
pub fn try_binval_row(
    wl: &Workload,
    scale: Scale,
    scheme: Scheme,
    seeds: &[u64],
) -> Result<BinvalRow, String> {
    try_binval_row_opt(wl, scale, scheme, seeds, OptLevel::O0)
}

/// [`try_binval_row`] at a caller-chosen back-end tier. At `-O0` the
/// classic metadata-plumbing mutation campaign runs (with IR-level RCE
/// for the A9 baseline); at `-O1` the register-allocation campaign
/// runs instead — its operators target the invariants only the
/// optimizer can break, and its sites are enumerated semantically so
/// the 100% kill bar is meaningful on optimized images.
///
/// # Errors
///
/// Same hard-error semantics as [`try_binval_row`].
pub fn try_binval_row_opt(
    wl: &Workload,
    scale: Scale,
    scheme: Scheme,
    seeds: &[u64],
    opt: OptLevel,
) -> Result<BinvalRow, String> {
    let module = wl.module(scale);
    let tv = match opt {
        OptLevel::O0 => binval::translation_validate_with(&module, scheme, true),
        OptLevel::O1 => binval::translation_validate_opt(&module, scheme, OptLevel::O1),
    }
    .map_err(|e| format!("{} ({scheme:?}): {e}", wl.name))?;
    if tv.diverged() {
        return Err(format!(
            "{} ({scheme:?}): translation validation diverged — IR verdict {}, binary \
             verdict {} ({})",
            wl.name,
            tv.ir_ok,
            tv.report.ok(),
            tv.ir_error.clone().unwrap_or_else(|| tv
                .report
                .findings
                .first()
                .map(|f| f.to_string())
                .unwrap_or_default()),
        ));
    }
    if !tv.report.ok() {
        let first = tv
            .report
            .findings
            .iter()
            .find(|f| f.class == binval::FindingClass::Lowering)
            .map(|f| f.to_string())
            .unwrap_or_default();
        return Err(format!(
            "{} ({scheme:?}): {} lowering finding(s), first: {first}",
            wl.name,
            tv.report.lowering_findings()
        ));
    }
    let mc = match opt {
        OptLevel::O0 => binval::mutation_campaign(&module, scheme, seeds),
        OptLevel::O1 => binval::reg_mutation_campaign(&module, scheme, OptLevel::O1, seeds),
    }
    .map_err(|e| format!("{} ({scheme:?}): {e}", wl.name))?;
    if !mc.all_killed() {
        let survivor = mc
            .outcomes
            .iter()
            .find(|o| !o.killed)
            .map(|o| {
                format!(
                    "{} seed={:#x} in {} (pc {:#x})",
                    o.mutation, o.seed, o.func, o.pc
                )
            })
            .unwrap_or_default();
        return Err(format!(
            "{} ({scheme:?}): {}/{} mutants survived, e.g. {survivor}",
            wl.name,
            mc.total() - mc.killed(),
            mc.total()
        ));
    }
    let rce = &tv.rce;
    Ok(BinvalRow {
        name: wl.name.to_string(),
        scheme: format!("{scheme:?}"),
        ir_ok: tv.ir_ok,
        bin_ok: tv.report.ok(),
        static_bugs: tv.report.static_bugs(),
        checked_ops: tv.report.checked_ops(),
        rce_removed: rce.tchk_removed
            + rce.spatial_removed
            + rce.temporal_removed
            + rce.patterns_removed,
        discharged_in_bounds: tv.report.funcs.iter().map(|f| f.discharged_in_bounds).sum(),
        discharged_redundant: tv.report.funcs.iter().map(|f| f.discharged_redundant).sum(),
        mutation_candidates: mc.candidates,
        mutants: mc.total(),
        mutants_killed: mc.killed(),
    })
}

/// One job per (workload × scheme) binval cell, workloads outermost —
/// the same nesting the serial gate would use.
pub fn binval_jobs(scale: Scale, seeds_per_scheme: u64) -> Vec<Job<BinvalRow>> {
    binval_jobs_opt(scale, seeds_per_scheme, OptLevel::O0)
}

/// [`binval_jobs`] at a caller-chosen back-end tier.
pub fn binval_jobs_opt(scale: Scale, seeds_per_scheme: u64, opt: OptLevel) -> Vec<Job<BinvalRow>> {
    let seeds = binval_seeds(seeds_per_scheme);
    let mut jobs = Vec::new();
    for wl in all() {
        for scheme in BINVAL_SCHEMES {
            let seeds = seeds.clone();
            jobs.push(Job::new(
                format!("binval/{}/{scheme:?}", wl.name),
                move || try_binval_row_opt(&wl, scale, scheme, &seeds, opt),
            ));
        }
    }
    jobs
}

/// Runs the binval gate on the pool; results in job order.
pub fn binval_results(
    scale: Scale,
    seeds_per_scheme: u64,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<BinvalRow>> {
    binval_results_opt(scale, seeds_per_scheme, OptLevel::O0, cfg, sink)
}

/// [`binval_results`] at a caller-chosen back-end tier.
pub fn binval_results_opt(
    scale: Scale,
    seeds_per_scheme: u64,
    opt: OptLevel,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<BinvalRow>> {
    run(binval_jobs_opt(scale, seeds_per_scheme, opt), cfg, sink)
}

/// The P1 smoke subset: one workload per suite flavour (string-heavy,
/// arithmetic, pointer-chasing, temporal-heavy) — the CI configuration.
pub const PROFILE_SMOKE_WORKLOADS: [&str; 4] = ["string", "math", "treeadd", "bzip2"];

/// Workload names of the P1 sweep: the smoke subset, or every Fig. 4
/// workload in the paper's row order.
pub fn profile_names(smoke: bool) -> Vec<&'static str> {
    if smoke {
        PROFILE_SMOKE_WORKLOADS.to_vec()
    } else {
        all().iter().map(|wl| wl.name).collect()
    }
}

/// One job per P1 workload, in `names` order, under the sweep-default
/// fast engine. Unknown names become failing jobs (structured failures,
/// not panics).
pub fn profile_jobs(names: &[&str], scale: Scale) -> Vec<Job<crate::profile::ProfileRow>> {
    profile_jobs_with(names, scale, Engine::Fast)
}

/// [`profile_jobs`] under an explicit execution engine.
pub fn profile_jobs_with(
    names: &[&str],
    scale: Scale,
    engine: Engine,
) -> Vec<Job<crate::profile::ProfileRow>> {
    names
        .iter()
        .map(|name| match Workload::by_name(name) {
            Some(wl) => Job::new(format!("profile/{}", wl.name), move || {
                crate::profile::try_profile_row_with(&wl, scale, engine)
            }),
            None => {
                let name = name.to_string();
                Job::new(format!("profile/{name}"), move || {
                    Err(format!("unknown workload `{name}`"))
                })
            }
        })
        .collect()
}

/// Runs the P1 sweep on the pool; results in `names` order.
pub fn profile_results(
    names: &[&str],
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<crate::profile::ProfileRow>> {
    run(profile_jobs(names, scale), cfg, sink)
}

/// [`profile_results`] under an explicit execution engine.
pub fn profile_results_with(
    names: &[&str],
    scale: Scale,
    engine: Engine,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<crate::profile::ProfileRow>> {
    run(profile_jobs_with(names, scale, engine), cfg, sink)
}

/// One job per X1 workload, in `names` order: both engines timed, the
/// results differentially compared. Unknown names become failing jobs.
pub fn exec_jobs(names: &[&str], scale: Scale) -> Vec<Job<crate::exec::ExecRow>> {
    exec_jobs_opt(names, scale, OptLevel::O0)
}

/// [`exec_jobs`] with the images built at a caller-chosen back-end
/// tier.
pub fn exec_jobs_opt(
    names: &[&str],
    scale: Scale,
    opt: OptLevel,
) -> Vec<Job<crate::exec::ExecRow>> {
    names
        .iter()
        .map(|name| match Workload::by_name(name) {
            Some(wl) => Job::new(format!("exec/{}", wl.name), move || {
                crate::exec::try_exec_row_opt(&wl, scale, opt)
            }),
            None => {
                let name = name.to_string();
                Job::new(format!("exec/{name}"), move || {
                    Err(format!("unknown workload `{name}`"))
                })
            }
        })
        .collect()
}

/// Runs the X1 sweep on the pool; results in `names` order.
pub fn exec_results(
    names: &[&str],
    scale: Scale,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<crate::exec::ExecRow>> {
    exec_results_opt(names, scale, OptLevel::O0, cfg, sink)
}

/// [`exec_results`] at a caller-chosen back-end tier.
pub fn exec_results_opt(
    names: &[&str],
    scale: Scale,
    opt: OptLevel,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<crate::exec::ExecRow>> {
    run(exec_jobs_opt(names, scale, opt), cfg, sink)
}

/// One build configuration of the A10 bounds ablation: a workload
/// compiled with a given scheme/pass combination and executed once.
#[derive(Debug, Clone, Copy)]
pub struct BoundsRun {
    /// Static check sites surviving in the instrumented IR.
    pub static_checks: usize,
    /// Sites the bounds pass proved in-bounds (zero when it was off).
    pub proven: usize,
    /// Total cycles.
    pub cycles: u64,
    /// Dynamic `tchk` executions (keybuffer hits + misses; zero for
    /// schemes without the hardware temporal path).
    pub dynamic_tchks: u64,
}

/// One workload of the A10 bounds ablation: baseline cycles plus the
/// `[plain, rce, rce+bounds]` triple per instrumented scheme, and the
/// witness-forging campaign verdict.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// Workload name.
    pub name: String,
    /// Its suite.
    pub suite: hwst128::workloads::Suite,
    /// Uninstrumented (`Scheme::None`) cycles — the Eq. 7 denominator.
    pub baseline_cycles: u64,
    /// `(scheme label, [plain, rce, rce+bounds])` per scheme.
    pub runs: Vec<(String, [BoundsRun; 3])>,
    /// Witnessed skips in the campaign image.
    pub campaign_skips: usize,
    /// Witness forgeries applied.
    pub campaign_mutants: usize,
    /// Forgeries the binary validator rejected.
    pub campaign_killed: usize,
}

impl BoundsRow {
    /// The `HWST128_tchk` triple (the headline row of the A10 table).
    pub fn tchk(&self) -> &[BoundsRun; 3] {
        self.runs
            .iter()
            .find(|(label, _)| label == Scheme::Hwst128Tchk.label())
            .map(|(_, runs)| runs)
            .unwrap_or_else(|| panic!("{}: no HWST128_tchk runs", self.name))
    }
}

/// Sum of per-job wall times: what the sweep would have cost serially.
/// Paired with the observed wall clock it demonstrates the measured
/// speedup (`serial_wall / wall`).
pub fn serial_wall<T>(results: &[JobResult<T>]) -> std::time::Duration {
    results.iter().map(|r| r.wall).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::try_fig4_row;
    use hwst_harness::NullSink;

    /// The parallel fig4 path produces rows identical to the direct
    /// serial computation, regardless of worker count.
    #[test]
    fn fig4_parallel_matches_serial_rows() {
        let wl = Workload::by_name("math").unwrap();
        let serial = crate::fig4_row(&wl, Scale::Test);
        let jobs = vec![Job::new("fig4/math", move || {
            try_fig4_row(&wl, Scale::Test)
        })];
        let results = run(jobs, &PoolConfig::parallel(4), &mut NullSink);
        let row = results[0].outcome.ok().expect("row computed");
        assert_eq!(row.name, serial.name);
        assert_eq!(row.baseline_cycles, serial.baseline_cycles);
        assert_eq!(row.overhead_pct, serial.overhead_pct);
    }

    /// The A1 grid assembles rows in name × size order and matches the
    /// direct per-cell computation.
    #[test]
    fn keybuffer_grid_matches_direct_cells() {
        let sizes = [0usize, 1];
        let (rows, failed) = keybuffer_results(
            &["bzip2"],
            &sizes,
            Scale::Test,
            &PoolConfig::parallel(2),
            &mut NullSink,
        );
        assert!(failed.is_empty(), "{failed:?}");
        let wl = Workload::by_name("bzip2").unwrap();
        assert_eq!(
            rows[0].cycles[0],
            crate::cycles_with_keybuffer(&wl, Scale::Test, 0)
        );
        assert_eq!(
            rows[0].cycles[1],
            crate::cycles_with_keybuffer(&wl, Scale::Test, 1)
        );
    }

    /// Engine choice never changes a Fig. 4 row — the hwst-exec
    /// bit-identity contract seen from the sweep level.
    #[test]
    fn fig4_rows_are_engine_independent() {
        let wl = Workload::by_name("math").unwrap();
        let cycle = try_fig4_row_with(&wl, Scale::Test, Engine::Cycle).unwrap();
        let fast = try_fig4_row_with(&wl, Scale::Test, Engine::Fast).unwrap();
        assert_eq!(cycle, fast);
    }

    /// An unknown workload in the A1 grid is a structured failure, not
    /// a panic.
    #[test]
    fn keybuffer_grid_reports_unknown_workload() {
        let (rows, failed) = keybuffer_results(
            &["no-such-workload"],
            &[0],
            Scale::Test,
            &PoolConfig::serial(),
            &mut NullSink,
        );
        assert!(rows.is_empty());
        assert_eq!(failed.len(), 1);
        assert!(failed[0].error.contains("unknown workload"));
    }
}
