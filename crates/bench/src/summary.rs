//! Schema-stable JSON summaries (`BENCH_*.json`) — the machine-readable
//! output that lets the perf trajectory be tracked across PRs.
//!
//! Schemas are documented in EXPERIMENTS.md ("Machine-readable
//! summaries"); bump [`SCHEMA_VERSION`] on any breaking change. All
//! object keys are emitted in a fixed order so summaries diff cleanly.

use crate::runs::serial_wall;
use crate::{
    fig4_geomean, fig4_o1_geomean, fig4_o1_geomean_speedup, fig5_geomean, Fig4O1Row, Fig4Row,
    Fig5Row, ResilienceConfig, ResilienceRow,
};
use hwst128::juliet::{CoverageReport, Cwe, Detector};
use hwst128::sim::inject::OutcomeCounts;
use hwst128::workloads::{Scale, Suite};
use hwst_harness::{FailedJob, JobResult, Json};
use std::path::Path;
use std::time::Duration;

/// Version stamp carried by every summary.
pub const SCHEMA_VERSION: i64 = 1;

fn header(schema: &str, scale: Scale, workers: usize) -> Json {
    Json::obj()
        .set("schema", schema)
        .set("version", SCHEMA_VERSION)
        .set("scale", format!("{scale:?}"))
        .set("workers", workers)
}

fn timing(doc: Json, wall: Duration, serial: Duration) -> Json {
    doc.set("wall_ms", wall.as_secs_f64() * 1e3)
        .set("serial_wall_ms", serial.as_secs_f64() * 1e3)
}

fn failures(failed: &[FailedJob]) -> Json {
    Json::Arr(
        failed
            .iter()
            .map(|f| {
                Json::obj()
                    .set("label", f.label.as_str())
                    .set("error", f.error.as_str())
            })
            .collect(),
    )
}

fn overhead_triple(o: &[f64; 3]) -> Json {
    Json::obj()
        .set("sbcets", o[0])
        .set("hwst128", o[1])
        .set("hwst128_tchk", o[2])
}

/// The `BENCH_fig4.json` document.
pub fn fig4_summary(
    scale: Scale,
    workers: usize,
    results: &[JobResult<Fig4Row>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let rows: Vec<&Fig4Row> = results.iter().filter_map(|r| r.outcome.ok()).collect();
    let owned: Vec<Fig4Row> = rows.iter().map(|r| (*r).clone()).collect();
    let mut suites = Json::obj();
    for suite in [Suite::MiBench, Suite::Olden, Suite::Spec] {
        let sub: Vec<Fig4Row> = owned.iter().filter(|r| r.suite == suite).cloned().collect();
        if !sub.is_empty() {
            suites = suites.set(&suite.to_string(), overhead_triple(&fig4_geomean(&sub)));
        }
    }
    timing(
        header("hwst-bench/fig4", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("suite", r.suite.to_string())
                        .set("baseline_cycles", r.baseline_cycles)
                        .set("overhead_pct", overhead_triple(&r.overhead_pct))
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set("geomean", overhead_triple(&fig4_geomean(&owned)))
    .set("suite_geomean", suites)
}

/// The `BENCH_fig4_o1.json` document. `meets_target` reports the
/// geomean baseline speedup against `target_speedup` (1.3×) honestly.
pub fn fig4_o1_summary(
    scale: Scale,
    workers: usize,
    results: &[JobResult<Fig4O1Row>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let rows: Vec<Fig4O1Row> = results
        .iter()
        .filter_map(|r| r.outcome.ok())
        .cloned()
        .collect();
    let target = 1.3;
    let geomean = fig4_o1_geomean_speedup(&rows);
    timing(
        header("hwst-bench/fig4_o1", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("suite", r.suite.to_string())
                        .set("o0_baseline_cycles", r.o0_baseline_cycles)
                        .set("o1_baseline_cycles", r.o1_baseline_cycles)
                        .set("baseline_speedup", r.baseline_speedup())
                        .set("o0_overhead_pct", overhead_triple(&r.o0_overhead_pct))
                        .set("o1_overhead_pct", overhead_triple(&r.o1_overhead_pct))
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set("geomean_baseline_speedup", geomean)
    .set("target_speedup", target)
    .set("meets_target", geomean >= target)
    .set(
        "o0_geomean",
        overhead_triple(&fig4_geomean(
            &rows
                .iter()
                .map(|r| Fig4Row {
                    name: r.name.clone(),
                    suite: r.suite,
                    baseline_cycles: r.o0_baseline_cycles,
                    overhead_pct: r.o0_overhead_pct,
                })
                .collect::<Vec<_>>(),
        )),
    )
    .set("o1_geomean", overhead_triple(&fig4_o1_geomean(&rows)))
}

/// The `BENCH_fig5.json` document.
pub fn fig5_summary(
    scale: Scale,
    workers: usize,
    results: &[JobResult<Fig5Row>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let speedups = |s: &[f64; 4]| {
        Json::obj()
            .set("bogo", s[0])
            .set("wdl_narrow", s[1])
            .set("wdl_wide", s[2])
            .set("hwst128", s[3])
    };
    let rows: Vec<Fig5Row> = results
        .iter()
        .filter_map(|r| r.outcome.ok())
        .cloned()
        .collect();
    timing(
        header("hwst-bench/fig5", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("speedup", speedups(&r.speedup))
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set("geomean", speedups(&fig5_geomean(&rows)))
}

/// The `BENCH_fig6.json` document.
pub fn fig6_summary(
    stride: usize,
    workers: usize,
    report: &CoverageReport,
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let detectors = Json::Arr(
        Detector::ALL
            .iter()
            .map(|d| {
                let mut per_cwe = Json::obj();
                for cwe in Cwe::ALL {
                    per_cwe = per_cwe.set(&cwe.to_string(), report.count(d.label(), cwe));
                }
                Json::obj()
                    .set("name", d.label())
                    .set("detected", report.total(d.label()))
                    .set("coverage_pct", report.coverage(d.label()) * 100.0)
                    .set("per_cwe", per_cwe)
            })
            .collect(),
    );
    Json::obj()
        .set("schema", "hwst-bench/fig6")
        .set("version", SCHEMA_VERSION)
        .set("stride", stride)
        .set("workers", workers)
        .set("wall_ms", wall.as_secs_f64() * 1e3)
        .set("total_cases", u64::from(report.total_cases))
        .set("detectors", detectors)
        .set("failed", failures(failed))
}

fn counts(c: &OutcomeCounts) -> Json {
    Json::obj()
        .set("detected", c.detected)
        .set("masked", c.masked)
        .set("silent", c.silent)
        .set("machine_fault", c.machine_fault)
        .set("not_applied", c.not_applied)
        .set("avf", c.silent_fraction())
}

/// The `BENCH_resilience.json` document.
pub fn resilience_summary(
    rc: &ResilienceConfig,
    scale: Scale,
    workers: usize,
    rows: &[ResilienceRow],
    wall: Duration,
    failed: &[FailedJob],
    guarantee_holds: bool,
) -> Json {
    header("hwst-bench/resilience", scale, workers)
        .set("wall_ms", wall.as_secs_f64() * 1e3)
        .set(
            "config",
            Json::obj()
                .set("seeds_per_target", rc.seeds_per_target)
                .set("juliet_per_cwe", u64::from(rc.juliet_per_cwe))
                .set("master_seed", format!("{:#x}", rc.master_seed))
                .set(
                    "workloads",
                    Json::Arr(rc.workloads.iter().map(|w| Json::from(*w)).collect()),
                ),
        )
        .set(
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj()
                            .set("class", r.class.name())
                            .set("workloads", counts(&r.workloads))
                            .set("juliet", counts(&r.juliet))
                    })
                    .collect(),
            ),
        )
        .set("failed", failures(failed))
        .set(
            "guarantee",
            if guarantee_holds { "pass" } else { "violated" },
        )
}

/// The `BENCH_binval.json` document (A9 + the translation-validation
/// gate).
pub fn binval_summary(
    scale: Scale,
    workers: usize,
    seeds_per_scheme: u64,
    opt: hwst128::compiler::OptLevel,
    results: &[JobResult<crate::runs::BinvalRow>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let rows: Vec<&crate::runs::BinvalRow> =
        results.iter().filter_map(|r| r.outcome.ok()).collect();
    let sum =
        |f: fn(&crate::runs::BinvalRow) -> usize| -> u64 { rows.iter().map(|r| f(r) as u64).sum() };
    timing(
        header("hwst-bench/binval", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "master_seed",
        format!("{:#x}", crate::runs::BINVAL_MASTER_SEED),
    )
    .set("seeds_per_scheme", seeds_per_scheme)
    .set("opt", opt.label())
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("scheme", r.scheme.as_str())
                        .set("ir_ok", r.ir_ok)
                        .set("bin_ok", r.bin_ok)
                        .set("static_bugs", r.static_bugs as u64)
                        .set("checked_ops", r.checked_ops as u64)
                        .set("rce_removed", r.rce_removed as u64)
                        .set("discharged_in_bounds", r.discharged_in_bounds as u64)
                        .set("discharged_redundant", r.discharged_redundant as u64)
                        .set("mutation_candidates", r.mutation_candidates as u64)
                        .set("mutants", r.mutants as u64)
                        .set("mutants_killed", r.mutants_killed as u64)
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set(
        "a9",
        Json::obj()
            .set("checked_ops", sum(|r| r.checked_ops))
            .set("rce_removed", sum(|r| r.rce_removed))
            .set("binval_discharged", sum(crate::runs::BinvalRow::discharged))
            .set("binval_in_bounds", sum(|r| r.discharged_in_bounds))
            .set("binval_redundant", sum(|r| r.discharged_redundant)),
    )
    .set(
        "mutation",
        Json::obj()
            .set("total", sum(|r| r.mutants))
            .set("killed", sum(|r| r.mutants_killed))
            .set(
                "all_killed",
                rows.iter().all(|r| r.mutants == r.mutants_killed),
            ),
    )
}

fn breakdown(b: &crate::profile::ProfileRow) -> Json {
    cycles_obj(&b.total)
}

fn cycles_obj(b: &hwst128::telemetry::Breakdown) -> Json {
    let mut obj = Json::obj();
    for (cat, cycles) in b.iter() {
        obj = obj.set(cat, cycles);
    }
    obj
}

/// The `BENCH_profile.json` document (experiment P1).
pub fn profile_summary(
    scale: Scale,
    workers: usize,
    results: &[JobResult<crate::profile::ProfileRow>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let rows: Vec<&crate::profile::ProfileRow> =
        results.iter().filter_map(|r| r.outcome.ok()).collect();
    let owned: Vec<crate::profile::ProfileRow> = rows.iter().map(|r| (*r).clone()).collect();
    let fractions = crate::profile::profile_mean_fractions(&owned);
    let mut mean = Json::obj();
    for (cat, f) in hwst128::telemetry::Breakdown::CATEGORIES
        .iter()
        .zip(fractions)
    {
        mean = mean.set(cat, f);
    }
    timing(
        header("hwst-bench/profile", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("total_cycles", r.total.total())
                        .set("baseline_cycles", r.baseline_cycles)
                        .set("overhead_pct", r.overhead_pct())
                        .set("attributed_pct", r.attributed_fraction * 100.0)
                        .set("cycles", breakdown(r))
                        .set(
                            "hot",
                            Json::Arr(
                                r.hot
                                    .iter()
                                    .map(|h| {
                                        Json::obj()
                                            .set("name", h.name.as_str())
                                            .set("total_cycles", h.cycles.total())
                                            .set("cycles", cycles_obj(&h.cycles))
                                    })
                                    .collect(),
                            ),
                        )
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set("mean_fraction", mean)
}

/// The `BENCH_exec.json` document (experiment X1 — fast-engine
/// speedup). Host times vary between machines and runs; `instret` and
/// the divergence-free row set are the deterministic parts.
pub fn exec_summary(
    scale: Scale,
    workers: usize,
    opt: hwst128::compiler::OptLevel,
    results: &[JobResult<crate::exec::ExecRow>],
    wall: Duration,
    failed: &[FailedJob],
) -> Json {
    let rows: Vec<&crate::exec::ExecRow> = results.iter().filter_map(|r| r.outcome.ok()).collect();
    let owned: Vec<crate::exec::ExecRow> = rows.iter().map(|r| (*r).clone()).collect();
    let geomean = crate::exec::exec_geomean(&owned);
    timing(
        header("hwst-bench/exec", scale, workers),
        wall,
        serial_wall(results),
    )
    .set("opt", opt.label())
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("suite", r.suite.to_string())
                        .set("instret", r.instret)
                        .set("decoded_blocks", r.decoded_blocks)
                        .set("cycle_ns", r.cycle_ns)
                        .set("fast_ns", r.fast_ns)
                        .set("cycle_ips", r.cycle_ips())
                        .set("fast_ips", r.fast_ips())
                        .set("speedup", r.speedup())
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set("geomean_speedup", geomean)
    .set("target_speedup", 10.0)
    .set("meets_target", geomean >= 10.0)
}

/// The `BENCH_boundscheck.json` document (experiment A10).
///
/// `improved` is the number of workloads that executed strictly fewer
/// dynamic `tchk`s with the bounds pass than with RCE alone; `juliet`
/// is the sampled detection gate as `(detected_with_rce,
/// lost_with_bounds)` — the second component must be zero.
pub fn boundscheck_summary(
    scale: Scale,
    workers: usize,
    results: &[JobResult<crate::runs::BoundsRow>],
    wall: Duration,
    failed: &[FailedJob],
    improved: usize,
    juliet: (usize, usize),
) -> Json {
    let rows: Vec<&crate::runs::BoundsRow> =
        results.iter().filter_map(|r| r.outcome.ok()).collect();
    let run_obj = |baseline: u64, r: &crate::runs::BoundsRun| {
        Json::obj()
            .set("static_checks", r.static_checks as u64)
            .set("proven", r.proven as u64)
            .set("cycles", r.cycles)
            .set(
                "overhead_pct",
                100.0 * (r.cycles as f64 - baseline as f64) / baseline.max(1) as f64,
            )
            .set("dynamic_tchks", r.dynamic_tchks)
    };
    let sum =
        |f: fn(&crate::runs::BoundsRow) -> usize| -> u64 { rows.iter().map(|r| f(r) as u64).sum() };
    timing(
        header("hwst-bench/boundscheck", scale, workers),
        wall,
        serial_wall(results),
    )
    .set(
        "rows",
        Json::Arr(
            rows.iter()
                .map(|r| {
                    let mut schemes = Json::obj();
                    for (label, runs) in &r.runs {
                        schemes = schemes.set(
                            label,
                            Json::obj()
                                .set("plain", run_obj(r.baseline_cycles, &runs[0]))
                                .set("rce", run_obj(r.baseline_cycles, &runs[1]))
                                .set("rce_bounds", run_obj(r.baseline_cycles, &runs[2])),
                        );
                    }
                    Json::obj()
                        .set("name", r.name.as_str())
                        .set("suite", r.suite.to_string())
                        .set("baseline_cycles", r.baseline_cycles)
                        .set("schemes", schemes)
                        .set("proven", r.tchk()[2].proven as u64)
                        .set(
                            "improved",
                            r.tchk()[2].dynamic_tchks < r.tchk()[1].dynamic_tchks,
                        )
                })
                .collect(),
        ),
    )
    .set("failed", failures(failed))
    .set(
        "a10",
        Json::obj()
            .set("improved_workloads", improved as u64)
            .set("total_workloads", rows.len() as u64)
            .set("proven_sites", sum(|r| r.tchk()[2].proven)),
    )
    .set(
        "witness_campaign",
        Json::obj()
            .set("skips", sum(|r| r.campaign_skips))
            .set("mutants", sum(|r| r.campaign_mutants))
            .set("killed", sum(|r| r.campaign_killed))
            .set(
                "all_killed",
                rows.iter().all(|r| r.campaign_mutants == r.campaign_killed),
            ),
    )
    .set(
        "juliet_gate",
        Json::obj()
            .set("detected_with_rce", juliet.0 as u64)
            .set("lost_with_bounds", juliet.1 as u64)
            .set("zero_cost", juliet.1 == 0),
    )
}

/// The `BENCH_serve.json` document (S1 — service robustness under a
/// mixed hostile/benign workload). `categories` aligns with the
/// submission ids of `report.reports`.
pub fn serve_summary(
    workers: usize,
    mix: &hwst_serve::MixConfig,
    categories: &[hwst_serve::MixCategory],
    report: &hwst_serve::ServeReport,
    wall: Duration,
) -> Json {
    use hwst_serve::MixCategory;
    let cats = [
        MixCategory::Benign,
        MixCategory::Duplicate,
        MixCategory::Hostile,
        MixCategory::Chaos,
        MixCategory::Flood,
    ];
    let per_cat = Json::Arr(
        cats.iter()
            .map(|&cat| {
                let rows = report
                    .reports
                    .iter()
                    .zip(categories)
                    .filter(|(_, c)| **c == cat);
                let total = rows.clone().count();
                let rejected = rows
                    .clone()
                    .filter(|(r, _)| r.verdict.is_rejection())
                    .count();
                Json::obj()
                    .set("category", cat.name())
                    .set("total", total)
                    .set("rejected", rejected)
                    .set("served", total - rejected)
            })
            .collect(),
    );
    let hostile_total = categories
        .iter()
        .filter(|c| **c == MixCategory::Hostile)
        .count();
    let hostile_rejected = report
        .reports
        .iter()
        .zip(categories)
        .filter(|(r, c)| **c == MixCategory::Hostile && r.verdict.is_rejection())
        .count();
    let log = report.decision_log();
    header("hwst-bench/serve", Scale::Test, workers)
        .set("wall_ms", wall.as_secs_f64() * 1e3)
        .set(
            "mix",
            Json::obj()
                .set("benign", mix.benign)
                .set("duplicates", mix.duplicates)
                .set("hostile", mix.hostile)
                .set("bombs", mix.bombs)
                .set("chaos", mix.chaos)
                .set("flood", mix.flood)
                .set("seed", mix.seed)
                .set("total", mix.total()),
        )
        .set("categories", per_cat)
        .set(
            "hostile_rejection_rate",
            if hostile_total == 0 {
                1.0
            } else {
                hostile_rejected as f64 / hostile_total as f64
            },
        )
        .set(
            "decision_log_digest",
            format!("{:016x}", hwst_serve::cache_key(&[log.as_bytes()]).0),
        )
        .set("service", report.json())
}

/// The S1 acceptance bar, as a list of violations (empty = pass): every
/// hostile submission typed-rejected, every cooperative one served,
/// chaos probes recovered via retry, the cache and the circuit breaker
/// both demonstrably exercised, and no worker panics beyond the chaos
/// probes' induced ones.
pub fn serve_gate(
    categories: &[hwst_serve::MixCategory],
    report: &hwst_serve::ServeReport,
) -> Vec<String> {
    use hwst_serve::MixCategory;
    let mut violations = Vec::new();
    let chaos_jobs = categories
        .iter()
        .filter(|c| **c == MixCategory::Chaos)
        .count();
    for (r, cat) in report.reports.iter().zip(categories) {
        match cat {
            MixCategory::Hostile if !r.verdict.is_rejection() => violations.push(format!(
                "hostile job{} ({}) was not rejected: {}",
                r.id,
                r.label,
                r.verdict.slug()
            )),
            MixCategory::Benign | MixCategory::Duplicate | MixCategory::Chaos
                if r.verdict.is_rejection() =>
            {
                violations.push(format!(
                    "cooperative job{} ({}) was rejected: {}",
                    r.id,
                    r.label,
                    r.verdict.slug()
                ));
            }
            _ => {}
        }
    }
    let s = report.stats;
    if chaos_jobs == 0 && s.panics_isolated != 0 {
        violations.push(format!(
            "{} worker panic(s) with no chaos probes in the mix",
            s.panics_isolated
        ));
    }
    if chaos_jobs > 0 && s.retry_successes < 1 {
        violations.push("no successful retry-after-backoff case".to_string());
    }
    if categories.contains(&MixCategory::Duplicate) && s.cache_hits < 1 {
        violations.push("duplicate submissions produced no cache hit".to_string());
    }
    if s.circuit_opens < 1 && s.quota_trips >= 3 {
        violations.push(format!(
            "{} quota trips but the circuit never opened",
            s.quota_trips
        ));
    }
    violations
}

/// Writes a summary document to `path` (with a trailing newline).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_json(path: &Path, doc: &Json) -> std::io::Result<()> {
    std::fs::write(path, format!("{doc}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst128::workloads::Suite;
    use hwst_harness::{JobId, JobOutcome};

    fn fake_result(name: &str, suite: Suite, id: usize) -> JobResult<Fig4Row> {
        JobResult {
            id: JobId(id),
            label: format!("fig4/{name}"),
            outcome: JobOutcome::Ok(Fig4Row {
                name: name.into(),
                suite,
                baseline_cycles: 1000,
                overhead_pct: [400.0, 150.0, 90.0],
            }),
            wall: Duration::from_millis(5),
        }
    }

    #[test]
    fn fig4_summary_round_trips_and_matches_geomean() {
        let results = vec![
            fake_result("a", Suite::MiBench, 0),
            fake_result("b", Suite::Spec, 1),
        ];
        let doc = fig4_summary(Scale::Test, 2, &results, Duration::from_millis(6), &[]);
        let parsed = Json::parse(&doc.to_string()).expect("parses");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("hwst-bench/fig4")
        );
        let rows: Vec<Fig4Row> = results
            .iter()
            .filter_map(|r| r.outcome.ok())
            .cloned()
            .collect();
        let g = fig4_geomean(&rows);
        let got = parsed
            .get("geomean")
            .and_then(|o| o.get("sbcets"))
            .and_then(Json::as_f64)
            .expect("geomean.sbcets");
        assert_eq!(got, g[0], "JSON must carry the exact geomean");
        assert_eq!(
            parsed.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
}
