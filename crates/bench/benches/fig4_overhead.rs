//! Fig. 4 (E1) regeneration bench: simulates one representative workload
//! per suite under each scheme. The interesting output is the cycle
//! counts (printed by the `fig4` binary); this bench tracks the harness's
//! wall-clock cost so regressions in the simulator show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hwst128::compiler::Scheme;
use hwst128::run_scheme;
use hwst128::workloads::{Scale, Workload};

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_overhead");
    g.sample_size(10);
    for name in ["sha", "treeadd", "hmmer"] {
        let wl = Workload::by_name(name).expect("known workload");
        let module = wl.module(Scale::Test);
        for scheme in Scheme::ALL {
            g.bench_with_input(
                BenchmarkId::new(name, scheme.label()),
                &scheme,
                |b, &scheme| {
                    b.iter(|| {
                        run_scheme(&module, scheme, wl.fuel(Scale::Test))
                            .expect("runs clean")
                            .stats
                            .total_cycles()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
