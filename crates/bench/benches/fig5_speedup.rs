//! Fig. 5 (E2) regeneration bench: workload profiling + comparator
//! speedup computation for one SPEC workload.

use criterion::{criterion_group, criterion_main, Criterion};
use hwst128::baselines::{hwst_speedup, profile_workload, Comparator};
use hwst128::workloads::{Scale, Workload};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_speedup");
    g.sample_size(10);
    let wl = Workload::by_name("bzip2").expect("known workload");
    let module = wl.module(Scale::Test);
    g.bench_function("profile_bzip2", |b| {
        b.iter(|| profile_workload(&module, wl.fuel(Scale::Test)))
    });
    let p = profile_workload(&module, wl.fuel(Scale::Test));
    g.bench_function("comparator_models", |b| {
        b.iter(|| {
            (
                Comparator::Bogo.speedup(&p),
                Comparator::WdlNarrow.speedup(&p),
                Comparator::WdlWide.speedup(&p),
                hwst_speedup(&p),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
