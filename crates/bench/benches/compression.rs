//! Microbenchmarks of the metadata-compression core (Fig. 2 machinery):
//! COMP/DECOMP throughput, SMAC address math and keybuffer lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hwst128::mem::LinearShadow;
use hwst128::metadata::{CompressionConfig, Metadata, ShadowCodec};
use hwst128::pipeline::KeyBuffer;

fn bench_codec(c: &mut Criterion) {
    let codec = ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, 0x4000_0000);
    let md = Metadata {
        base: 0x10_0000,
        bound: 0x10_4000,
        key: 0xfeed,
        lock: 0x4000_0000 + 8 * 77,
    };
    let packed = codec.compress(md).expect("representable");
    c.bench_function("comp_unit_compress", |b| {
        b.iter(|| codec.compress(black_box(md)).unwrap())
    });
    c.bench_function("decomp_unit_decompress", |b| {
        b.iter(|| codec.decompress(black_box(packed)))
    });
}

fn bench_smac(c: &mut Criterion) {
    let smac = LinearShadow::new(0x1_0000_0000);
    c.bench_function("smac_shadow_addr", |b| {
        b.iter(|| smac.shadow_addr(black_box(0x0100_1234)))
    });
}

fn bench_keybuffer(c: &mut Criterion) {
    let mut kb = KeyBuffer::new(8);
    for i in 0..8 {
        kb.fill(0x9000 + i * 8, i);
    }
    c.bench_function("keybuffer_hit", |b| b.iter(|| kb.lookup(black_box(0x9000))));
    c.bench_function("keybuffer_miss", |b| {
        b.iter(|| kb.lookup(black_box(0x1234_5678)))
    });
}

criterion_group!(benches, bench_codec, bench_smac, bench_keybuffer);
criterion_main!(benches);
