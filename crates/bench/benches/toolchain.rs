//! Toolchain microbenchmarks: assembler, decoder, and the full
//! instrument+lower pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hwst128::compiler::{compile, Scheme};
use hwst128::isa::asm::assemble;
use hwst128::workloads::{Scale, Workload};

const ASM_SRC: &str = "
start:
    li   a0, 64
    li   a7, 1000
    ecall
    addi t0, a0, 64
    bndrs a0, a0, t0
    bndrt a0, a1, a2
loop:
    csd  t1, 56(a0)
    tchk a0
    cld  t1, 56(a0)
    addi t2, t2, -1
    bnez t2, loop
    li   a7, 93
    ecall
";

fn bench_assembler(c: &mut Criterion) {
    c.bench_function("assemble_hwst_listing", |b| {
        b.iter(|| assemble(0x1_0000, black_box(ASM_SRC)).unwrap())
    });
}

fn bench_decoder(c: &mut Criterion) {
    let prog = assemble(0, ASM_SRC).unwrap();
    let words: Vec<u32> = prog.instrs().iter().map(|i| i.encode()).collect();
    c.bench_function("decode_listing", |b| {
        b.iter(|| {
            words
                .iter()
                .filter(|&&w| hwst128::isa::decode(black_box(w)).is_ok())
                .count()
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let wl = Workload::by_name("sha").expect("known");
    let module = wl.module(Scale::Test);
    let mut g = c.benchmark_group("compile_sha");
    for scheme in Scheme::ALL {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| compile(black_box(&module), scheme).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_assembler, bench_decoder, bench_compile);
criterion_main!(benches);
