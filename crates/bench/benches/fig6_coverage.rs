//! Fig. 6 (E3) regeneration bench: executing Juliet-style cases on the
//! simulator under both pointer-based schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use hwst128::compiler::Scheme;
use hwst128::juliet::{execute_detects, model_coverage, suite};

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_coverage");
    g.sample_size(10);
    let cases = suite();
    let sample: Vec<_> = cases.iter().step_by(400).cloned().collect();
    g.bench_function("execute_case_sample", |b| {
        b.iter(|| {
            sample
                .iter()
                .filter(|case| execute_detects(case, Scheme::Hwst128Tchk))
                .count()
        })
    });
    g.bench_function("model_full_suite", |b| b.iter(model_coverage));
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
