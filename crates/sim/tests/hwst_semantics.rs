//! End-to-end tests of the HWST128 instruction semantics on the
//! simulator: metadata bind → propagate → check → trap (paper Fig. 1).

use hwst_isa::{AluImmOp, AluOp, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_sim::{syscall, Machine, SafetyConfig, Trap};

const BASE: u64 = 0x1_0000;

fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instr {
    Instr::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn li(rd: Reg, v: i64) -> Instr {
    addi(rd, Reg::Zero, v)
}

fn exit_seq() -> Vec<Instr> {
    vec![
        li(Reg::A7, syscall::EXIT as i64),
        li(Reg::A0, 0),
        Instr::Ecall,
    ]
}

fn run(mut body: Vec<Instr>) -> Result<hwst_sim::ExitStatus, Trap> {
    body.extend(exit_seq());
    let prog = Program::from_instrs(BASE, body);
    Machine::new(prog, SafetyConfig::default()).run(1_000_000)
}

/// a0 = heap pointer of `size` bytes with full metadata bound in SRF[a0].
/// Leaves bound in t0, key in a1, lock in a2.
fn malloc_and_bind(size: i64) -> Vec<Instr> {
    vec![
        li(Reg::A0, size),
        li(Reg::A7, syscall::MALLOC as i64),
        Instr::Ecall,
        // t0 = bound = a0 + size
        addi(Reg::T0, Reg::A0, size),
        Instr::Bndrs {
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::T0,
        },
        Instr::Bndrt {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        },
    ]
}

#[test]
fn in_bounds_checked_access_passes() {
    let mut body = malloc_and_bind(64);
    body.push(li(Reg::T1, 7));
    body.push(Instr::Store {
        width: StoreWidth::D,
        rs1: Reg::A0,
        rs2: Reg::T1,
        offset: 56,
        checked: true,
    });
    body.push(Instr::Load {
        width: LoadWidth::D,
        rd: Reg::T2,
        rs1: Reg::A0,
        offset: 56,
        checked: true,
    });
    assert!(run(body).is_ok());
}

#[test]
fn out_of_bounds_checked_store_traps() {
    let mut body = malloc_and_bind(64);
    body.push(li(Reg::T1, 7));
    body.push(Instr::Store {
        width: StoreWidth::D,
        rs1: Reg::A0,
        rs2: Reg::T1,
        offset: 64, // one past the end
        checked: true,
    });
    match run(body) {
        Err(Trap::SpatialViolation {
            addr, base, bound, ..
        }) => {
            assert_eq!(addr, base + 64);
            assert_eq!(bound, base + 64);
        }
        other => panic!("expected spatial violation, got {other:?}"),
    }
}

#[test]
fn underflow_checked_load_traps() {
    let mut body = malloc_and_bind(64);
    body.push(Instr::Load {
        width: LoadWidth::B,
        rd: Reg::T2,
        rs1: Reg::A0,
        offset: -1,
        checked: true,
    });
    assert!(matches!(run(body), Err(Trap::SpatialViolation { .. })));
}

#[test]
fn pointer_arithmetic_propagates_metadata() {
    // p2 = p + 32; checked access through p2 still sees the allocation's
    // bounds (in-pipeline propagation, Fig. 1-b4).
    let mut body = malloc_and_bind(64);
    body.push(addi(Reg::S1, Reg::A0, 32));
    body.push(Instr::Load {
        width: LoadWidth::D,
        rd: Reg::T2,
        rs1: Reg::S1,
        offset: 24, // 32+24 < 64: fine
        checked: true,
    });
    body.push(Instr::Load {
        width: LoadWidth::D,
        rd: Reg::T3,
        rs1: Reg::S1,
        offset: 32, // 32+32 = 64: out of bounds
        checked: true,
    });
    assert!(matches!(run(body), Err(Trap::SpatialViolation { .. })));
}

#[test]
fn through_memory_propagation_round_trips() {
    // Store pointer + metadata to memory, load both back into another
    // register, and check the metadata still guards accesses
    // (Fig. 1-c5/d6).
    let slot = 0x0010_0000i64; // static data area
    let mut body = malloc_and_bind(64);
    body.extend([
        li(Reg::S2, slot),
        // Store the pointer and its metadata.
        Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
            checked: false,
        },
        Instr::Sbdl {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
        Instr::Sbdu {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
        // Wipe a0's shadow entry and load the pointer back into s3.
        Instr::SrfClr { rd: Reg::A0 },
        Instr::Load {
            width: LoadWidth::D,
            rd: Reg::S3,
            rs1: Reg::S2,
            offset: 0,
            checked: false,
        },
        Instr::Lbdls {
            rd: Reg::S3,
            rs1: Reg::S2,
            offset: 0,
        },
        Instr::Lbdus {
            rd: Reg::S3,
            rs1: Reg::S2,
            offset: 0,
        },
        // In-bounds through s3 passes; out-of-bounds traps.
        Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::S3,
            offset: 0,
            checked: true,
        },
        Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::S3,
            offset: 64,
            checked: true,
        },
    ]);
    assert!(matches!(run(body), Err(Trap::SpatialViolation { .. })));
}

#[test]
fn metadata_loads_to_gprs_decompress() {
    // lbas/lbnd/lkey/lloc reconstruct the uncompressed fields (the
    // wrapper-function path, Fig. 1-d7).
    let slot = 0x0010_0000i64;
    let mut body = malloc_and_bind(64);
    body.extend([
        li(Reg::S2, slot),
        Instr::Sbdl {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
        Instr::Sbdu {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
        Instr::Lbas {
            rd: Reg::S4,
            rs1: Reg::S2,
            offset: 0,
        },
        Instr::Lbnd {
            rd: Reg::S5,
            rs1: Reg::S2,
            offset: 0,
        },
        // exit code = (bound - base): must equal 64.
        Instr::Alu {
            op: AluOp::Sub,
            rd: Reg::A0,
            rs1: Reg::S5,
            rs2: Reg::S4,
        },
        li(Reg::A7, syscall::EXIT as i64),
        Instr::Ecall,
    ]);
    let prog = Program::from_instrs(BASE, body);
    let exit = Machine::new(prog, SafetyConfig::default())
        .run(1_000_000)
        .expect("no trap");
    assert_eq!(exit.code, 64);
}

#[test]
fn tchk_passes_while_live_and_traps_after_free() {
    let mut live = malloc_and_bind(64);
    live.push(Instr::Tchk { rs1: Reg::A0 });
    assert!(run(live).is_ok(), "tchk on a live pointer must pass");

    let mut dangling = malloc_and_bind(64);
    dangling.extend([
        // Save pointer + lock, then free(ptr, lock).
        addi(Reg::S1, Reg::A0, 0), // s1 = ptr (metadata propagates)
        // free: a0 = ptr (already), a1 = lock (already in a2!) — move it.
        addi(Reg::A1, Reg::A2, 0),
        li(Reg::A7, syscall::FREE as i64),
        Instr::Ecall,
        // Use-after-free: temporal check on the stale pointer.
        Instr::Tchk { rs1: Reg::S1 },
    ]);
    match run(dangling) {
        Err(Trap::TemporalViolation {
            stored_key, key, ..
        }) => {
            assert_eq!(stored_key, 0, "free erases the key");
            assert_ne!(key, 0);
        }
        other => panic!("expected temporal violation, got {other:?}"),
    }
}

#[test]
fn reallocation_gets_fresh_key_so_stale_pointer_still_traps() {
    // free + malloc reusing the block: the stale pointer's key must not
    // match the new allocation's key (unique-key property, §3.4).
    let mut body = malloc_and_bind(64);
    body.extend([
        addi(Reg::S1, Reg::A0, 0), // stale pointer copy
        addi(Reg::A1, Reg::A2, 0),
        li(Reg::A7, syscall::FREE as i64),
        Instr::Ecall,
    ]);
    // Re-allocate the same size: allocator reuses the block, lock slot is
    // recycled, but the key differs.
    body.extend(malloc_and_bind(64));
    body.push(Instr::Tchk { rs1: Reg::S1 });
    match run(body) {
        Err(Trap::TemporalViolation {
            key, stored_key, ..
        }) => {
            assert_ne!(key, stored_key);
            assert_ne!(stored_key, 0, "lock slot is live again with a new key");
        }
        other => panic!("expected temporal violation, got {other:?}"),
    }
}

#[test]
fn unchecked_access_never_traps() {
    // The same out-of-bounds store, but with the plain store instruction:
    // the baseline core happily corrupts memory.
    let mut body = malloc_and_bind(64);
    body.push(li(Reg::T1, 7));
    body.push(Instr::Store {
        width: StoreWidth::D,
        rs1: Reg::A0,
        rs2: Reg::T1,
        offset: 64,
        checked: false,
    });
    assert!(run(body).is_ok());
}

#[test]
fn disarmed_spatial_checks_admit_violations() {
    let mut body = malloc_and_bind(64);
    body.push(Instr::Load {
        width: LoadWidth::D,
        rd: Reg::T2,
        rs1: Reg::A0,
        offset: 1000,
        checked: true,
    });
    body.extend(exit_seq());
    let prog = Program::from_instrs(BASE, body);
    let mut m = Machine::new(prog, SafetyConfig::baseline());
    assert!(m.run(1_000_000).is_ok(), "baseline config must not trap");
}

#[test]
fn software_abort_syscalls_raise_violations() {
    let body = vec![
        li(Reg::A0, 0x123),
        li(Reg::A1, 0x100),
        li(Reg::A2, 0x120),
        li(Reg::A7, syscall::ABORT_SPATIAL as i64),
        Instr::Ecall,
    ];
    assert!(matches!(
        run(body),
        Err(Trap::SpatialViolation { addr: 0x123, .. })
    ));
}

#[test]
fn double_free_is_counted_not_trapped() {
    let mut body = malloc_and_bind(64);
    body.extend([
        addi(Reg::S1, Reg::A0, 0),
        addi(Reg::A1, Reg::A2, 0),
        li(Reg::A7, syscall::FREE as i64),
        Instr::Ecall,
        addi(Reg::A0, Reg::S1, 0),
        li(Reg::A1, 0),
        li(Reg::A7, syscall::FREE as i64),
        Instr::Ecall,
    ]);
    body.extend(exit_seq());
    let prog = Program::from_instrs(BASE, body);
    let mut m = Machine::new(prog, SafetyConfig::default());
    m.run(1_000_000).expect("double free alone does not trap");
    assert_eq!(m.events().invalid_frees, 1);
    assert_eq!(m.events().frees, 1);
}

#[test]
fn keybuffer_accelerates_repeated_tchk() {
    let mut body = malloc_and_bind(64);
    for _ in 0..10 {
        body.push(Instr::Tchk { rs1: Reg::A0 });
    }
    body.extend(exit_seq());
    let prog = Program::from_instrs(BASE, body.clone());

    let with_kb = Machine::new(prog.clone(), SafetyConfig::default())
        .run(1_000_000)
        .unwrap();
    let without_kb = Machine::new(prog, SafetyConfig::hwst128_no_tchk())
        .run(1_000_000)
        .unwrap();
    assert!(with_kb.stats.keybuffer_hits >= 9);
    assert!(
        with_kb.stats.total_cycles() < without_kb.stats.total_cycles(),
        "keybuffer must save cycles on repeated temporal checks"
    );
}
