//! Robustness properties: the machine must never panic, whatever
//! instructions it executes — arbitrary (decodable) words, arbitrary
//! register values, arbitrary CSR writes. Traps are fine; panics are
//! bugs.

use hwst_isa::{decode, Instr, Program, Reg};
use hwst_sim::{Machine, SafetyConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random decodable instruction streams execute without panicking.
    #[test]
    fn random_words_never_panic(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let instrs: Vec<Instr> =
            words.iter().filter_map(|&w| decode(w).ok()).collect();
        if instrs.is_empty() {
            return Ok(());
        }
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::default());
        // Any outcome is legal; panics are not.
        let _ = m.run(10_000);
    }

    /// The same stream on the baseline config is equally panic-free.
    #[test]
    fn random_words_never_panic_baseline(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let instrs: Vec<Instr> =
            words.iter().filter_map(|&w| decode(w).ok()).collect();
        if instrs.is_empty() {
            return Ok(());
        }
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::baseline());
        let _ = m.run(10_000);
    }

    /// Arbitrary CSR writes (including garbage compression configs)
    /// never panic and never brick the machine.
    #[test]
    fn random_csr_writes_are_survivable(
        csr_addr in any::<u16>(),
        value64 in any::<u64>(),
    ) {
        use hwst_isa::{AluImmOp, CsrOp};
        let mut instrs = vec![
            // A small value into a0 (proptest value folded to 12 bits to
            // keep the program well-formed; the CSR gets the low bits).
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: (value64 & 0x7ff) as i64,
            },
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::A1,
                rs1: Reg::A0,
                csr: csr_addr & 0xfff,
            },
        ];
        // Then do a metadata op that consults the (possibly nonsense)
        // configuration.
        instrs.push(Instr::Bndrs { rd: Reg::A2, rs1: Reg::Zero, rs2: Reg::A0 });
        instrs.push(Instr::Tchk { rs1: Reg::A2 });
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::default());
        let _ = m.run(1_000);
    }
}

#[test]
fn image_round_trip_executes_identically() {
    use hwst_isa::AluImmOp;
    let prog = Program::from_instrs(
        0x1_0000,
        vec![
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 11,
            },
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A7,
                rs1: Reg::Zero,
                imm: 93,
            },
            Instr::Ecall,
        ],
    );
    let direct = Machine::new(prog.clone(), SafetyConfig::default())
        .run(100)
        .unwrap();
    let image = prog.to_image();
    let mut from_image = Machine::from_image(0x1_0000, &image, SafetyConfig::default())
        .expect("valid image decodes");
    let via_image = from_image.run(100).unwrap();
    assert_eq!(direct.code, via_image.code);
    assert_eq!(direct.stats, via_image.stats);
}

#[test]
fn bad_image_reports_decode_error() {
    let image = 0xffff_ffffu32.to_le_bytes();
    assert!(Machine::from_image(0, &image, SafetyConfig::default()).is_err());
}
