//! Robustness properties: the machine must never panic, whatever
//! instructions it executes — arbitrary (decodable) words, arbitrary
//! register values, arbitrary CSR writes. Traps are fine; panics are
//! bugs.

use hwst_exec::{run_fast, BlockCache};
use hwst_isa::{decode, Instr, Program, Reg};
use hwst_sim::inject::{run_with_plan, FaultClass, InjectionPlan};
use hwst_sim::{syscall, Machine, SafetyConfig};
use proptest::prelude::*;

/// A small malloc → bind → check → free churn program: every metadata
/// structure (SRF, shadow memory, lock words, keybuffer) is populated,
/// so arbitrary injection plans have real targets to corrupt.
fn churn_prog() -> Program {
    let addi = |rd, rs1, imm| Instr::AluImm {
        op: hwst_isa::AluImmOp::Addi,
        rd,
        rs1,
        imm,
    };
    let mut body = Vec::new();
    for _ in 0..3 {
        body.extend([
            addi(Reg::A0, Reg::Zero, 64),
            addi(Reg::A7, Reg::Zero, syscall::MALLOC as i64),
            Instr::Ecall,
            addi(Reg::T0, Reg::A0, 64),
            Instr::Bndrs {
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::T0,
            },
            Instr::Bndrt {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::Tchk { rs1: Reg::A0 },
            Instr::Store {
                width: hwst_isa::StoreWidth::D,
                rs1: Reg::A0,
                rs2: Reg::T0,
                offset: 0,
                checked: true,
            },
            addi(Reg::A1, Reg::A2, 0),
            addi(Reg::A0, Reg::A0, 0),
            addi(Reg::A7, Reg::Zero, syscall::FREE as i64),
            Instr::Ecall,
        ]);
    }
    body.extend([
        addi(Reg::A7, Reg::Zero, syscall::EXIT as i64),
        addi(Reg::A0, Reg::Zero, 0),
        Instr::Ecall,
    ]);
    Program::from_instrs(0x1_0000, body)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random decodable instruction streams execute without panicking.
    #[test]
    fn random_words_never_panic(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let instrs: Vec<Instr> =
            words.iter().filter_map(|&w| decode(w).ok()).collect();
        if instrs.is_empty() {
            return Ok(());
        }
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::default());
        // Any outcome is legal; panics are not.
        let _ = m.run(10_000);
    }

    /// The same stream on the baseline config is equally panic-free.
    #[test]
    fn random_words_never_panic_baseline(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let instrs: Vec<Instr> =
            words.iter().filter_map(|&w| decode(w).ok()).collect();
        if instrs.is_empty() {
            return Ok(());
        }
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::baseline());
        let _ = m.run(10_000);
    }

    /// Arbitrary CSR writes (including garbage compression configs)
    /// never panic and never brick the machine.
    #[test]
    fn random_csr_writes_are_survivable(
        csr_addr in any::<u16>(),
        value64 in any::<u64>(),
    ) {
        use hwst_isa::{AluImmOp, CsrOp};
        let mut instrs = vec![
            // A small value into a0 (proptest value folded to 12 bits to
            // keep the program well-formed; the CSR gets the low bits).
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: (value64 & 0x7ff) as i64,
            },
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::A1,
                rs1: Reg::A0,
                csr: csr_addr & 0xfff,
            },
        ];
        // Then do a metadata op that consults the (possibly nonsense)
        // configuration.
        instrs.push(Instr::Bndrs { rd: Reg::A2, rs1: Reg::Zero, rs2: Reg::A0 });
        instrs.push(Instr::Tchk { rs1: Reg::A2 });
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut m = Machine::new(prog, SafetyConfig::default());
        let _ = m.run(1_000);
    }

    /// Arbitrary byte images — ragged lengths, undecodable words, all of
    /// it — either load or return a structured error; loaded images run
    /// without panicking.
    #[test]
    fn random_images_never_panic(image in prop::collection::vec(any::<u8>(), 0..64)) {
        match Machine::from_image(0x1_0000, &image, SafetyConfig::default()) {
            Ok(mut m) => {
                let _ = m.run(1_000);
            }
            Err(e) => {
                // The error is structured and printable, never a panic.
                let _ = e.to_string();
            }
        }
    }

    /// Random decodable instruction streams execute **identically** on
    /// the cycle interpreter and the decoded-block fast engine, at any
    /// fuel budget: the same result (exit or trap), the same final PC
    /// and registers, the same cycle stats. This is the generative
    /// counterpart of the workload differential gate in
    /// `tests/exec.rs` — random streams reach decoder corners (jumps
    /// into fused pairs, blocks ending mid-idiom, traps at every
    /// offset) no workload exercises.
    #[test]
    fn random_words_execute_identically_on_both_engines(
        words in prop::collection::vec(any::<u32>(), 1..64),
        fuel in 1u64..5_000,
    ) {
        let instrs: Vec<Instr> =
            words.iter().filter_map(|&w| decode(w).ok()).collect();
        if instrs.is_empty() {
            return Ok(());
        }
        let prog = Program::from_instrs(0x1_0000, instrs);
        let mut cycle = Machine::new(prog.clone(), SafetyConfig::default());
        let cycle_result = cycle.run(fuel);
        let mut fast = Machine::new(prog, SafetyConfig::default());
        let fast_result = run_fast(&mut fast, fuel, &mut BlockCache::new());
        prop_assert_eq!(&cycle_result, &fast_result);
        prop_assert_eq!(cycle.pc(), fast.pc());
        for r in Reg::ALL {
            prop_assert_eq!(cycle.reg(r), fast.reg(r), "register {}", r.name());
        }
        prop_assert_eq!(cycle.stats(), fast.stats());
    }

    /// Every fault class × any seed × any trigger point: the machine
    /// degrades to a classified trap or exit status, never a panic.
    #[test]
    fn arbitrary_injection_plans_never_panic(
        seed in any::<u64>(),
        trigger in 0u64..64,
        class_index in 0usize..FaultClass::ALL.len(),
    ) {
        let plan = InjectionPlan {
            class: FaultClass::ALL[class_index],
            seed,
            trigger,
        };
        let mut m = Machine::new(churn_prog(), SafetyConfig::default());
        let (result, record) = run_with_plan(&mut m, &plan, 10_000);
        // Any classified outcome is legal; only a panic would fail this.
        let _ = (result, record.applied());
    }
}

#[test]
fn ragged_image_is_a_structured_load_error() {
    for len in [1usize, 2, 3, 5, 7, 9] {
        let image = vec![0x13u8; len]; // 0x13 = addi x0,x0,0 prefix bytes
        let Err(err) = Machine::from_image(0, &image, SafetyConfig::default()) else {
            panic!("ragged image of len {len} must be rejected");
        };
        assert!(
            err.to_string().contains("multiple of 4"),
            "unexpected error for len {len}: {err}"
        );
    }
}

#[test]
fn huge_malloc_degrades_to_null_not_panic() {
    // malloc(-1): the size rounding used to overflow in debug builds;
    // now it must degrade to a failed allocation (a0 = 0).
    let addi = |rd, rs1, imm| Instr::AluImm {
        op: hwst_isa::AluImmOp::Addi,
        rd,
        rs1,
        imm,
    };
    let prog = Program::from_instrs(
        0x1_0000,
        vec![
            addi(Reg::A0, Reg::Zero, -1),
            addi(Reg::A7, Reg::Zero, syscall::MALLOC as i64),
            Instr::Ecall,
            // exit(a0): a failed allocation exits 0.
            addi(Reg::A7, Reg::Zero, syscall::EXIT as i64),
            Instr::Ecall,
        ],
    );
    let mut m = Machine::new(prog, SafetyConfig::default());
    let exit = m.run(100).expect("absurd sizes must degrade gracefully");
    assert_eq!(exit.code, 0, "malloc(-1) must return the null block");
}

#[test]
fn image_round_trip_executes_identically() {
    use hwst_isa::AluImmOp;
    let prog = Program::from_instrs(
        0x1_0000,
        vec![
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 11,
            },
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A7,
                rs1: Reg::Zero,
                imm: 93,
            },
            Instr::Ecall,
        ],
    );
    let direct = Machine::new(prog.clone(), SafetyConfig::default())
        .run(100)
        .unwrap();
    let image = prog.to_image();
    let mut from_image = Machine::from_image(0x1_0000, &image, SafetyConfig::default())
        .expect("valid image decodes");
    let via_image = from_image.run(100).unwrap();
    assert_eq!(direct.code, via_image.code);
    assert_eq!(direct.stats, via_image.stats);
}

#[test]
fn bad_image_reports_decode_error() {
    let image = 0xffff_ffffu32.to_le_bytes();
    assert!(Machine::from_image(0, &image, SafetyConfig::default()).is_err());
}

#[test]
fn image_reload_flushes_the_block_cache() {
    // Run program A on the fast engine (populating the block cache),
    // reload program B over the same base, and rerun with the SAME
    // cache: the stale decoded blocks must not execute — the reload
    // bumps the program epoch, which is the cache's flush signal.
    use hwst_isa::AluImmOp;
    let exit_prog = |code: i64| {
        Program::from_instrs(
            0x1_0000,
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: code,
                },
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A7,
                    rs1: Reg::Zero,
                    imm: syscall::EXIT as i64,
                },
                Instr::Ecall,
            ],
        )
    };
    let mut m = Machine::new(exit_prog(7), SafetyConfig::default());
    let mut cache = BlockCache::new();
    let first = run_fast(&mut m, 1_000, &mut cache).expect("program A exits");
    assert_eq!(first.code, 7);
    assert!(cache.decodes() > 0, "the cold run populates the cache");

    let image_b = exit_prog(9).to_image();
    m.reload_image(0x1_0000, &image_b).expect("image B loads");
    let decodes_before = cache.decodes();
    let second = run_fast(&mut m, 1_000, &mut cache).expect("program B exits");
    assert_eq!(second.code, 9, "stale blocks must not execute");
    assert!(
        cache.decodes() > decodes_before,
        "the reload must force a re-decode, not serve stale blocks"
    );
}

#[test]
fn snapshot_restore_is_bit_identical() {
    // Fresh run vs run from a post-load snapshot: same exit, output,
    // stats — the warm-start guarantee the serve cache relies on.
    let prog = churn_prog();
    let fresh = Machine::new(prog.clone(), SafetyConfig::default())
        .run(100_000)
        .expect("churn program exits");
    let cold = Machine::new(prog, SafetyConfig::default());
    let snap = cold.snapshot();
    for _ in 0..3 {
        let warm = snap.restore().run(100_000).expect("restored run exits");
        assert_eq!(warm, fresh, "restored run diverged from fresh run");
    }
}

#[test]
fn mid_run_snapshot_resumes_identically() {
    // Step N instructions, snapshot, and the continuation from the
    // snapshot matches the uninterrupted machine exactly.
    let mut m = Machine::new(churn_prog(), SafetyConfig::default());
    for _ in 0..10 {
        m.step().expect("prefix steps are clean");
    }
    let snap = m.snapshot();
    assert_eq!(snap.pc(), m.pc());
    assert_eq!(snap.instret(), 10);
    let direct = m.run(100_000).expect("direct continuation exits");
    let resumed = snap.restore().run(100_000).expect("resumed run exits");
    assert_eq!(resumed, direct, "mid-run snapshot diverged on resume");
}
