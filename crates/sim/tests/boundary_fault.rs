//! Boundary-exactness and fault-injection tests: the checks must trip at
//! exactly the right byte, stale keybuffer state must never mask a
//! violation, and the threat-model assumption (metadata integrity) is
//! pinned down explicitly.

use hwst_isa::{AluImmOp, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_sim::{syscall, Machine, SafetyConfig, Trap};

const BASE: u64 = 0x1_0000;

fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instr {
    Instr::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn li(rd: Reg, v: i64) -> Instr {
    addi(rd, Reg::Zero, v)
}

/// malloc(64) bound into SRF[a0]; key in a1, lock in a2.
fn prologue() -> Vec<Instr> {
    vec![
        li(Reg::A0, 64),
        li(Reg::A7, syscall::MALLOC as i64),
        Instr::Ecall,
        addi(Reg::T0, Reg::A0, 64),
        Instr::Bndrs {
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::T0,
        },
        Instr::Bndrt {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        },
    ]
}

fn run(mut body: Vec<Instr>) -> Result<hwst_sim::ExitStatus, Trap> {
    body.extend([
        li(Reg::A7, syscall::EXIT as i64),
        li(Reg::A0, 0),
        Instr::Ecall,
    ]);
    Machine::new(Program::from_instrs(BASE, body), SafetyConfig::default()).run(1_000_000)
}

#[test]
fn every_width_is_exact_at_the_bound() {
    // For each access width, offset bound-width passes and
    // bound-width+1 traps.
    for (width, bytes) in [
        (LoadWidth::B, 1i64),
        (LoadWidth::H, 2),
        (LoadWidth::W, 4),
        (LoadWidth::D, 8),
    ] {
        let mut ok = prologue();
        ok.push(Instr::Load {
            width,
            rd: Reg::T2,
            rs1: Reg::A0,
            offset: 64 - bytes,
            checked: true,
        });
        assert!(run(ok).is_ok(), "width {bytes}: last valid access trapped");

        let mut bad = prologue();
        bad.push(Instr::Load {
            width,
            rd: Reg::T2,
            rs1: Reg::A0,
            offset: 64 - bytes + 1,
            checked: true,
        });
        assert!(
            matches!(run(bad), Err(Trap::SpatialViolation { .. })),
            "width {bytes}: straddling access must trap"
        );
    }
}

#[test]
fn store_widths_are_exact_too() {
    for (width, bytes) in [
        (StoreWidth::B, 1i64),
        (StoreWidth::H, 2),
        (StoreWidth::W, 4),
        (StoreWidth::D, 8),
    ] {
        let mut ok = prologue();
        ok.push(Instr::Store {
            width,
            rs1: Reg::A0,
            rs2: Reg::T0,
            offset: 64 - bytes,
            checked: true,
        });
        assert!(run(ok).is_ok(), "store width {bytes} at edge trapped");

        let mut bad = prologue();
        bad.push(Instr::Store {
            width,
            rs1: Reg::A0,
            rs2: Reg::T0,
            offset: 64 - bytes + 1,
            checked: true,
        });
        assert!(
            matches!(run(bad), Err(Trap::SpatialViolation { .. })),
            "store width {bytes} straddling must trap"
        );
    }
}

#[test]
fn first_byte_below_base_traps() {
    let mut bad = prologue();
    bad.push(Instr::Load {
        width: LoadWidth::B,
        rd: Reg::T2,
        rs1: Reg::A0,
        offset: -1,
        checked: true,
    });
    assert!(matches!(run(bad), Err(Trap::SpatialViolation { .. })));
}

#[test]
fn keybuffer_never_serves_a_stale_key() {
    // Fill the keybuffer with a hit, free (which must clear it), then
    // check the stale pointer: the trap must fire even though the
    // keybuffer held the old (valid) key moments earlier.
    let mut body = prologue();
    body.extend([
        Instr::Tchk { rs1: Reg::A0 }, // fills the keybuffer
        Instr::Tchk { rs1: Reg::A0 }, // hit
        addi(Reg::S1, Reg::A0, 0),    // stale copy (SRF propagates)
        addi(Reg::A1, Reg::A2, 0),
        li(Reg::A7, syscall::FREE as i64),
        Instr::Ecall,
        Instr::Tchk { rs1: Reg::S1 }, // must NOT hit stale state
    ]);
    match run(body) {
        Err(Trap::TemporalViolation { stored_key, .. }) => {
            assert_eq!(stored_key, 0)
        }
        other => panic!("expected temporal violation, got {other:?}"),
    }
}

#[test]
fn stale_keybuffer_entry_never_masks_an_overwritten_lock_word() {
    // Adversarial double fault: overwrite the live lock word AND plant
    // the old (now wrong) key in the keybuffer. The keybuffer is a
    // timing structure only — the semantic check must still read the
    // lock_location and trap with the *overwritten* value, proving a
    // stale hit can never turn a detection into a miss.
    let mut body = prologue();
    body.extend([
        Instr::Tchk { rs1: Reg::A0 }, // fills the keybuffer (valid hit)
        Instr::Tchk { rs1: Reg::A0 }, // final check, post-corruption
        li(Reg::A7, syscall::EXIT as i64),
        li(Reg::A0, 0),
        Instr::Ecall,
    ]);
    let prog = Program::from_instrs(BASE, body);
    let mut m = Machine::new(prog, SafetyConfig::default());
    // Execute the prologue plus the first tchk (7 instructions).
    for _ in 0..7 {
        m.step().expect("setup executes");
    }
    let key = m.reg(Reg::A1);
    let lock = m.reg(Reg::A2);
    assert_eq!(m.mem().read_u64(lock), key, "lock word holds the key");
    // Inject: clobber the lock word, then poison the keybuffer with the
    // stale-but-formerly-correct key for that lock.
    let clobbered = key ^ 0xDEAD;
    m.mem_mut().write_u64(lock, clobbered);
    m.pipeline_mut().poison_keybuffer(lock, key);
    match m.run(1_000) {
        Err(Trap::TemporalViolation {
            stored_key,
            lock: trapped_lock,
            ..
        }) => {
            assert_eq!(stored_key, clobbered, "trap reports the real word");
            assert_eq!(trapped_lock, lock);
        }
        other => panic!("stale keybuffer masked the overwrite: {other:?}"),
    }
}

#[test]
fn metadata_corruption_defeats_the_check_as_the_threat_model_assumes() {
    // Threat model (§3): "the adversary cannot corrupt the metadata".
    // Pin the assumption down: if shadow memory IS corrupted (which the
    // paper excludes), an out-of-bounds access sails through. This test
    // documents the boundary of the guarantee.
    let layout = hwst_sim::SafetyConfig::default().layout;
    let mut body = prologue();
    body.extend([
        // Store pointer + metadata to a container.
        li(Reg::S2, 0x0010_0000),
        Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
            checked: false,
        },
        Instr::Sbdl {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
        Instr::Sbdu {
            rs1: Reg::S2,
            rs2: Reg::A0,
            offset: 0,
        },
    ]);
    let prog_len_so_far = body.len();
    let _ = prog_len_so_far;
    body.extend([
        // Reload through the (soon to be corrupted) shadow.
        Instr::SrfClr { rd: Reg::A0 },
        Instr::Lbdls {
            rd: Reg::A0,
            rs1: Reg::S2,
            offset: 0,
        },
        // Out-of-bounds access through the reloaded metadata.
        Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::A0,
            offset: 4096,
            checked: true,
        },
    ]);
    body.extend([
        li(Reg::A7, syscall::EXIT as i64),
        li(Reg::A0, 0),
        Instr::Ecall,
    ]);
    let prog = Program::from_instrs(BASE, body);

    // Uncorrupted run: the OOB access traps.
    let mut clean = Machine::new(prog.clone(), SafetyConfig::default());
    assert!(matches!(
        clean.run(1_000_000),
        Err(Trap::SpatialViolation { .. })
    ));

    // Corrupted run: zero the shadow word (attacker wipes metadata)
    // before execution reaches the reload — violation goes undetected.
    let mut evil = Machine::new(prog, SafetyConfig::default());
    // Execute up to (and including) the sbdu, then corrupt.
    for _ in 0..10 {
        evil.step().expect("setup executes");
    }
    let shadow_addr = (0x0010_0000u64 << 2) + layout.shadow_offset;
    evil.mem_mut().write_u64(shadow_addr, 0);
    assert!(
        evil.run(1_000_000).is_ok(),
        "with corrupted (zeroed) metadata the access is unbound and passes"
    );
}

#[test]
fn zero_length_object_rejects_every_access() {
    let mut body = vec![
        li(Reg::A0, 0),
        li(Reg::A7, syscall::MALLOC as i64),
        Instr::Ecall,
        // Bind an empty region [p, p).
        addi(Reg::T0, Reg::A0, 0),
        Instr::Bndrs {
            rd: Reg::A0,
            rs1: Reg::A0,
            rs2: Reg::T0,
        },
    ];
    body.push(Instr::Load {
        width: LoadWidth::B,
        rd: Reg::T2,
        rs1: Reg::A0,
        offset: 0,
        checked: true,
    });
    assert!(matches!(run(body), Err(Trap::SpatialViolation { .. })));
}
