//! Exhaustive `Trap` taxonomy tests: every variant's Display string is
//! distinct and carries its key fields, `is_violation()` is true for
//! exactly the two memory-safety detections, and traps compare by value.

use hwst_sim::Trap;

/// One representative of every `Trap` variant, with distinctive field
/// values so Display strings can be checked for content.
fn all_variants() -> Vec<Trap> {
    vec![
        Trap::SpatialViolation {
            pc: 0x1111,
            addr: 0x2222,
            base: 0x3333,
            bound: 0x4444,
        },
        Trap::TemporalViolation {
            pc: 0x1111,
            key: 0x5555,
            lock: 0x6666,
            stored_key: 0x7777,
        },
        Trap::BadFetch { pc: 0x1111 },
        Trap::Breakpoint { pc: 0x1111 },
        Trap::OutOfFuel { executed: 99 },
        Trap::Environment {
            pc: 0x1111,
            what: "env cause",
        },
        Trap::MachineFault {
            pc: 0x1111,
            what: "fault cause",
        },
    ]
}

#[test]
fn is_violation_holds_for_exactly_the_two_detections() {
    for t in all_variants() {
        let expected = matches!(
            t,
            Trap::SpatialViolation { .. } | Trap::TemporalViolation { .. }
        );
        assert_eq!(
            t.is_violation(),
            expected,
            "{t}: machine faults and other non-detections must not count \
             as memory-safety violations"
        );
    }
}

#[test]
fn display_strings_are_distinct_and_nonempty() {
    let shown: Vec<String> = all_variants().iter().map(Trap::to_string).collect();
    for (i, a) in shown.iter().enumerate() {
        assert!(!a.is_empty());
        for b in shown.iter().skip(i + 1) {
            assert_ne!(a, b, "two variants render identically");
        }
    }
}

#[test]
fn display_carries_the_key_fields() {
    for t in all_variants() {
        let s = t.to_string();
        match t {
            Trap::SpatialViolation {
                addr, base, bound, ..
            } => {
                for v in [addr, base, bound] {
                    assert!(s.contains(&format!("{v:#x}")), "{s} missing {v:#x}");
                }
            }
            Trap::TemporalViolation {
                key,
                lock,
                stored_key,
                ..
            } => {
                for v in [key, lock, stored_key] {
                    assert!(s.contains(&format!("{v:#x}")), "{s} missing {v:#x}");
                }
            }
            Trap::BadFetch { pc } | Trap::Breakpoint { pc } => {
                assert!(s.contains(&format!("{pc:#x}")), "{s} missing pc");
            }
            Trap::OutOfFuel { executed } => {
                assert!(s.contains(&executed.to_string()), "{s} missing count");
            }
            Trap::Environment { what, .. } | Trap::MachineFault { what, .. } => {
                assert!(s.contains(what), "{s} missing cause '{what}'");
                assert!(s.contains("0x1111"), "{s} missing pc");
            }
        }
    }
}

#[test]
fn traps_compare_by_value_and_copy() {
    for t in all_variants() {
        let copy = t; // Copy, not move
        assert_eq!(t, copy);
    }
    // Field changes break equality.
    assert_ne!(
        Trap::MachineFault { pc: 1, what: "a" },
        Trap::MachineFault { pc: 2, what: "a" }
    );
    assert_ne!(
        Trap::MachineFault { pc: 1, what: "a" },
        Trap::MachineFault { pc: 1, what: "b" }
    );
    assert_ne!(Trap::BadFetch { pc: 1 }, Trap::Breakpoint { pc: 1 });
}

#[test]
fn traps_are_std_errors() {
    let t: Box<dyn std::error::Error> = Box::new(Trap::MachineFault {
        pc: 0,
        what: "boxed",
    });
    assert!(t.to_string().contains("boxed"));
}
