//! # hwst-sim
//!
//! The HWST128 instruction-set simulator: a SPIKE-like functional RV64IM
//! interpreter augmented with the HWST128 security hardware model, as the
//! paper's evaluation does for the Juliet suite ("The SPIKE simulator is
//! augmented with the HWST128 security operation hardware and metadata
//! compression", §4) — plus the pipeline timing model so the same run
//! yields the cycle counts of the FPGA experiments.
//!
//! * [`Machine`] — architectural state (GPRs, PC, CSRs, SRF, memory),
//!   the heap/lock allocator models and the proxy-kernel syscall layer.
//! * [`Trap`] — spatial/temporal violation traps and machine faults.
//! * [`ExitStatus`] — exit code, captured output and cycle statistics.
//! * [`SafetyConfig`] — which checks are armed (spatial/temporal/
//!   keybuffer) and the compression/pipeline parameters.
//! * [`inject`] — deterministic metadata-path fault injection and the
//!   AVF-style outcome classification (experiment R1).
//! * [`Machine::run_profiled`] — per-PC cycle attribution into an
//!   `hwst_telemetry::Profiler` (experiment P1); observation only, a
//!   profiled run is bit-identical to a plain one.
//!
//! ## Example
//!
//! ```
//! use hwst_isa::{Instr, Program, Reg, AluImmOp};
//! use hwst_sim::{Machine, SafetyConfig};
//!
//! // addi a0, zero, 7 ; addi a7, zero, 93 (exit) ; ecall
//! let prog = Program::from_instrs(0x1_0000, vec![
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::Zero, imm: 7 },
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A7, rs1: Reg::Zero, imm: 93 },
//!     Instr::Ecall,
//! ]);
//! let mut m = Machine::new(prog, SafetyConfig::default());
//! let exit = m.run(10_000).expect("no trap");
//! assert_eq!(exit.code, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod inject;
mod machine;
mod profile;
pub mod syscall;
mod trace;
mod trap;

pub use machine::{ExitStatus, LoadError, Machine, RuntimeEvents, SafetyConfig, Snapshot};
pub use profile::classify;
pub use trace::TraceEvent;
pub use trap::Trap;
