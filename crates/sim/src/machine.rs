//! Architectural state and the run loop.

use crate::Trap;
use hwst_isa::{csr, Program, Reg};
use hwst_mem::{HeapAllocator, LinearShadow, LockAllocator, MemoryLayout, SparseMemory};
use hwst_metadata::{CompressionConfig, ShadowCodec};
use hwst_pipeline::{CycleStats, Pipeline, PipelineConfig, ShadowRegisterFile};

/// Which safety machinery is armed, and with what parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SafetyConfig {
    /// Metadata compression bit widths (the `hwst.compcfg` CSR).
    pub compression: CompressionConfig,
    /// Pipeline timing parameters (incl. keybuffer size).
    pub pipeline: PipelineConfig,
    /// Hardware spatial checks on bounded loads/stores.
    pub spatial: bool,
    /// Hardware temporal checks (`tchk`).
    pub temporal: bool,
    /// Whether `tchk` may hit in the keybuffer.
    pub keybuffer: bool,
    /// The address map.
    pub layout: MemoryLayout,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            compression: CompressionConfig::SPEC_DEFAULT,
            pipeline: PipelineConfig::default(),
            spatial: true,
            temporal: true,
            keybuffer: true,
            layout: MemoryLayout::default(),
        }
    }
}

impl SafetyConfig {
    /// A configuration with every HWST128 feature disabled — the
    /// uninstrumented baseline core.
    pub fn baseline() -> Self {
        SafetyConfig {
            spatial: false,
            temporal: false,
            keybuffer: false,
            ..Self::default()
        }
    }

    /// The paper's `HWST128` bar in Fig. 4: hardware spatial metadata
    /// machinery, but the temporal key check is done in software (no
    /// `tchk`/keybuffer).
    pub fn hwst128_no_tchk() -> Self {
        SafetyConfig {
            keybuffer: false,
            ..Self::default()
        }
    }
}

/// Errors from [`Machine::from_image`]: the structured answers a binary
/// loader gives instead of panicking on a malformed image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadError {
    /// The image length is not a multiple of 4, so the tail cannot be an
    /// instruction word (previously the trailing bytes were silently
    /// dropped).
    RaggedImage {
        /// The offending image length in bytes.
        len: usize,
    },
    /// A word failed to decode.
    Decode(hwst_isa::DecodeError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LoadError::RaggedImage { len } => {
                write!(f, "image length {len} is not a multiple of 4")
            }
            LoadError::Decode(e) => write!(f, "image decode failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<hwst_isa::DecodeError> for LoadError {
    fn from(e: hwst_isa::DecodeError) -> Self {
        LoadError::Decode(e)
    }
}

/// Successful program termination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExitStatus {
    /// The code passed to `exit`.
    pub code: u64,
    /// Cycle/instruction statistics from the pipeline model.
    pub stats: CycleStats,
    /// Bytes written through `putchar`/`print_u64`.
    pub output: Vec<u8>,
}

impl ExitStatus {
    /// The captured output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }
}

/// Non-trapping runtime events worth counting (used by the Juliet
/// detectors and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeEvents {
    /// `free` syscalls whose pointer was not a live allocation base
    /// (double free / interior free — CWE415/CWE761 raw material).
    pub invalid_frees: u64,
    /// `malloc` calls served.
    pub mallocs: u64,
    /// `free` calls served (valid ones).
    pub frees: u64,
}

/// The simulated HWST128 machine.
///
/// See the crate-level example for typical use. The machine is
/// deterministic: same program + config ⇒ same exit, output and cycle
/// counts.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) regs: [u64; 32],
    pub(crate) pc: u64,
    pub(crate) program: Program,
    /// User + shadow memory.
    pub(crate) mem: SparseMemory,
    pub(crate) srf: ShadowRegisterFile,
    pub(crate) pipeline: Pipeline,
    pub(crate) heap: HeapAllocator,
    pub(crate) locks: LockAllocator,
    pub(crate) codec: ShadowCodec,
    pub(crate) shadow: LinearShadow,
    pub(crate) cfg: SafetyConfig,
    pub(crate) output: Vec<u8>,
    pub(crate) events: RuntimeEvents,
    pub(crate) exited: Option<u64>,
    /// Custom CSR backing store (hwst.* registers).
    pub(crate) csrs: std::collections::HashMap<u16, u64>,
    /// Bumped on every [`Self::reload_image`]; decoded-block caches
    /// validate against it so a swapped program can never execute
    /// through stale pre-decoded blocks.
    pub(crate) epoch: u64,
}

impl Machine {
    /// Creates a machine with the program loaded and the HWST128 CSRs
    /// initialised from `cfg` (the "set at the beginning of a program"
    /// step of §3.3).
    pub fn new(program: Program, cfg: SafetyConfig) -> Self {
        let layout = cfg.layout;
        debug_assert!(layout.validate().is_ok());
        let mut regs = [0u64; 32];
        regs[Reg::Sp.index() as usize] = layout.stack_top;
        regs[Reg::Gp.index() as usize] = layout.data_base;
        let mut csrs = std::collections::HashMap::new();
        csrs.insert(csr::HWST_SM_OFFSET, layout.shadow_offset);
        csrs.insert(csr::HWST_COMP_CFG, cfg.compression.to_csr());
        csrs.insert(csr::HWST_LOCK_BASE, layout.lock_region_base);
        let status = (cfg.spatial as u64 * csr::STATUS_SPATIAL)
            | (cfg.temporal as u64 * csr::STATUS_TEMPORAL)
            | (cfg.keybuffer as u64 * csr::STATUS_KEYBUFFER);
        csrs.insert(csr::HWST_STATUS, status);
        let pc = program.base();
        // Disabling the keybuffer in the safety config zeroes its size in
        // the timing model (every tchk pays the key load).
        let mut pipe_cfg = cfg.pipeline;
        if !cfg.keybuffer {
            pipe_cfg.keybuffer_entries = 0;
        }
        Machine {
            regs,
            pc,
            program,
            mem: SparseMemory::new(),
            srf: ShadowRegisterFile::new(),
            pipeline: Pipeline::new(pipe_cfg),
            heap: HeapAllocator::new(layout.heap_base, layout.heap_size),
            locks: LockAllocator::new(layout.lock_region_base, layout.lock_slots),
            codec: ShadowCodec::new(cfg.compression, layout.lock_region_base),
            shadow: LinearShadow::new(layout.shadow_offset),
            cfg,
            output: Vec::new(),
            events: RuntimeEvents::default(),
            exited: None,
            csrs,
            epoch: 0,
        }
    }

    /// Creates a machine from a raw little-endian instruction image (as
    /// produced by [`Program::to_image`]), decoding it up front — the
    /// path a binary loader would take.
    ///
    /// # Errors
    ///
    /// [`LoadError::RaggedImage`] when the image length is not a multiple
    /// of 4, [`LoadError::Decode`] for the first undecodable word.
    pub fn from_image(base: u64, image: &[u8], cfg: SafetyConfig) -> Result<Self, LoadError> {
        Ok(Self::new(Self::decode_image(base, image)?, cfg))
    }

    /// Decodes a raw little-endian image into a [`Program`] (shared by
    /// [`Self::from_image`] and [`Self::reload_image`]).
    fn decode_image(base: u64, image: &[u8]) -> Result<Program, LoadError> {
        if !image.len().is_multiple_of(4) {
            return Err(LoadError::RaggedImage { len: image.len() });
        }
        let mut instrs = Vec::with_capacity(image.len() / 4);
        for chunk in image.chunks_exact(4) {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            instrs.push(hwst_isa::decode(word)?);
        }
        Ok(Program::from_instrs(base, instrs))
    }

    /// Replaces the loaded program with a freshly decoded image,
    /// resetting the PC to the new base and clearing any exit latch.
    ///
    /// Data memory, registers, shadow structures and cycle counters are
    /// deliberately left untouched — this models a program swap on a
    /// warm machine. The program epoch is bumped, which is the signal
    /// decoded-block caches (`hwst-exec`'s `BlockCache`) use to flush
    /// themselves; it is the **only** event that invalidates them,
    /// since the instruction image is immutable between reloads.
    ///
    /// # Errors
    ///
    /// The same structured [`LoadError`]s as [`Self::from_image`]; on
    /// error the machine is unchanged.
    pub fn reload_image(&mut self, base: u64, image: &[u8]) -> Result<(), LoadError> {
        let program = Self::decode_image(base, image)?;
        self.pc = program.base();
        self.program = program;
        self.exited = None;
        self.epoch += 1;
        Ok(())
    }

    /// The current program epoch: 0 at construction, bumped by every
    /// [`Self::reload_image`]. Decoded-block caches key their validity
    /// on `(epoch, program base, program length)`.
    pub fn program_epoch(&self) -> u64 {
        self.epoch
    }

    /// The loaded program (decoded-block engines fetch through this).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current program counter.
    #[inline]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter. This is the decoded-block engine's
    /// write-back hook; it performs no fetch or alignment check — the
    /// next execution step reports [`Trap::BadFetch`] exactly as it
    /// would after a wild `jalr`.
    #[inline]
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Peeks at the instruction the next [`step`](Self::step) will
    /// execute (`None` once exited or when the PC left the program).
    pub fn next_instr(&self) -> Option<(u64, hwst_isa::Instr)> {
        if self.exited.is_some() {
            return None;
        }
        self.program.fetch(self.pc).map(|i| (self.pc, *i))
    }

    /// Whether the program has exited (and with which code).
    #[inline]
    pub fn exit_code(&self) -> Option<u64> {
        self.exited
    }

    /// Reads a GPR (x0 reads as zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a GPR (writes to x0 are discarded). Does **not** touch the
    /// SRF — callers decide propagation.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    /// The shadow register file (diagnostics and tests).
    #[inline]
    pub fn srf(&self) -> &ShadowRegisterFile {
        &self.srf
    }

    /// Mutable shadow register file — fault-injection hook (SRF cell
    /// upsets).
    #[inline]
    pub fn srf_mut(&mut self) -> &mut ShadowRegisterFile {
        &mut self.srf
    }

    /// Simulated memory (for loading data and inspecting results).
    #[inline]
    pub fn mem(&self) -> &SparseMemory {
        &self.mem
    }

    /// Mutable simulated memory (test setup).
    #[inline]
    pub fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }

    /// The metadata codec currently configured through the HWST CSRs.
    #[inline]
    pub fn codec(&self) -> &hwst_metadata::ShadowCodec {
        &self.codec
    }

    /// The linear shadow map currently configured through
    /// `hwst.sm_offset`.
    #[inline]
    pub fn shadow(&self) -> &LinearShadow {
        &self.shadow
    }

    /// Bytes written through `putchar`/`print_u64` so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Pipeline statistics so far.
    pub fn stats(&self) -> CycleStats {
        self.pipeline.stats()
    }

    /// The pipeline model (keybuffer/D-cache diagnostics).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable pipeline model — fault-injection hook (keybuffer
    /// poisoning).
    #[inline]
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Runtime events so far.
    pub fn events(&self) -> RuntimeEvents {
        self.events
    }

    /// The active safety configuration.
    pub fn config(&self) -> &SafetyConfig {
        &self.cfg
    }

    /// Reads a CSR value as the `csrr*` instructions see it.
    pub fn csr(&self, addr: u16) -> u64 {
        match addr {
            csr::CYCLE => self.pipeline.stats().total_cycles(),
            csr::INSTRET => self.pipeline.stats().instret,
            _ => self.csrs.get(&addr).copied().unwrap_or(0),
        }
    }

    pub(crate) fn set_csr(&mut self, addr: u16, v: u64) {
        self.csrs.insert(addr, v);
        // Reconfigure derived units when HWST CSRs change.
        match addr {
            csr::HWST_COMP_CFG => {
                if let Ok(c) = CompressionConfig::from_csr(v) {
                    self.codec = ShadowCodec::new(c, self.codec.lock_region_base());
                }
            }
            csr::HWST_SM_OFFSET => {
                self.shadow = LinearShadow::new(v);
            }
            csr::HWST_LOCK_BASE => {
                self.codec = ShadowCodec::new(self.codec.config(), v);
            }
            _ => {}
        }
    }

    /// Whether hardware spatial checks are armed.
    pub(crate) fn spatial_on(&self) -> bool {
        self.csr(csr::HWST_STATUS) & csr::STATUS_SPATIAL != 0
    }

    /// Whether hardware temporal checks are armed.
    pub(crate) fn temporal_on(&self) -> bool {
        self.csr(csr::HWST_STATUS) & csr::STATUS_TEMPORAL != 0
    }

    /// Whether hardware spatial checks are armed (the
    /// `hwst.status.spatial` bit as [`step`](Self::step) reads it).
    ///
    /// Execution engines may cache this between CSR writes: only a
    /// `csr*` instruction (or environment call) can change it.
    pub fn spatial_enabled(&self) -> bool {
        self.spatial_on()
    }

    /// Whether hardware temporal checks are armed (the
    /// `hwst.status.temporal` bit). Same caching contract as
    /// [`Self::spatial_enabled`].
    pub fn temporal_enabled(&self) -> bool {
        self.temporal_on()
    }

    /// Runs until exit, trap or `fuel` instructions.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] that stopped execution; spatial/temporal
    /// violations are the detections the experiments count.
    pub fn run(&mut self, fuel: u64) -> Result<ExitStatus, Trap> {
        for executed in 0..fuel {
            if let Some(code) = self.exited {
                let _ = executed;
                return Ok(self.exit_status(code));
            }
            self.step()?;
        }
        if let Some(code) = self.exited {
            return Ok(self.exit_status(code));
        }
        Err(Trap::OutOfFuel { executed: fuel })
    }

    pub(crate) fn exit_status(&self, code: u64) -> ExitStatus {
        ExitStatus {
            code,
            stats: self.pipeline.stats(),
            output: self.output.clone(),
        }
    }

    /// Captures the complete machine state — registers, PC, memory,
    /// shadow structures, pipeline counters, allocator and CSR state —
    /// as a [`Snapshot`] that can mint any number of warm-started
    /// machines later.
    ///
    /// Taken right after [`Machine::new`] / [`Machine::from_image`],
    /// a snapshot lets repeated runs of the same image skip image
    /// decoding and CSR/layout re-setup entirely (the `hwst-serve`
    /// cache-hit path); taken mid-execution it checkpoints a common
    /// prefix.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: Box::new(self.clone()),
        }
    }
}

/// A point-in-time copy of a [`Machine`], including every
/// deterministic piece of state ([`Machine::snapshot`]).
///
/// Restoring is pure: the snapshot is not consumed, and a restored
/// machine continues **bit-identically** to the machine the snapshot
/// was taken from (same exits, traps, outputs and cycle counts) — the
/// warm-start guarantee the service cache relies on, pinned by
/// `tests/machine_props.rs` and the serve suite.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: Box<Machine>,
}

impl Snapshot {
    /// Mints a fresh machine from the captured state.
    pub fn restore(&self) -> Machine {
        (*self.state).clone()
    }

    /// The PC at capture time.
    pub fn pc(&self) -> u64 {
        self.state.pc
    }

    /// Instructions retired at capture time.
    pub fn instret(&self) -> u64 {
        self.state.pipeline.stats().instret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_isa::{AluImmOp, Instr};

    fn exit_prog(code: i64) -> Program {
        Program::from_instrs(
            0x1_0000,
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: code,
                },
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A7,
                    rs1: Reg::Zero,
                    imm: crate::syscall::EXIT as i64,
                },
                Instr::Ecall,
            ],
        )
    }

    #[test]
    fn exits_with_code() {
        let mut m = Machine::new(exit_prog(42), SafetyConfig::default());
        let e = m.run(100).unwrap();
        assert_eq!(e.code, 42);
        assert_eq!(e.stats.instret, 3);
    }

    #[test]
    fn fuel_exhaustion_is_a_trap() {
        // An infinite loop: jal zero, 0.
        let prog = Program::from_instrs(
            0x1_0000,
            vec![Instr::Jal {
                rd: Reg::Zero,
                offset: 0,
            }],
        );
        let mut m = Machine::new(prog, SafetyConfig::default());
        assert_eq!(m.run(100), Err(Trap::OutOfFuel { executed: 100 }));
    }

    #[test]
    fn initial_state_follows_layout() {
        let m = Machine::new(exit_prog(0), SafetyConfig::default());
        let l = m.config().layout;
        assert_eq!(m.reg(Reg::Sp), l.stack_top);
        assert_eq!(m.csr(csr::HWST_SM_OFFSET), l.shadow_offset);
        assert_eq!(m.csr(csr::HWST_LOCK_BASE), l.lock_region_base);
        assert_eq!(m.reg(Reg::Zero), 0);
    }

    #[test]
    fn status_bits_reflect_config() {
        let m = Machine::new(exit_prog(0), SafetyConfig::baseline());
        assert!(!m.spatial_on());
        assert!(!m.temporal_on());
        let m = Machine::new(exit_prog(0), SafetyConfig::hwst128_no_tchk());
        assert!(m.spatial_on());
        assert!(m.temporal_on());
        assert_eq!(m.csr(csr::HWST_STATUS) & csr::STATUS_KEYBUFFER, 0);
    }

    #[test]
    fn run_after_exit_is_stable() {
        let mut m = Machine::new(exit_prog(5), SafetyConfig::default());
        assert_eq!(m.run(100).unwrap().code, 5);
        assert_eq!(m.run(100).unwrap().code, 5, "idempotent after exit");
    }

    #[test]
    fn reload_image_swaps_program_and_bumps_epoch() {
        let mut m = Machine::new(exit_prog(5), SafetyConfig::default());
        assert_eq!(m.program_epoch(), 0);
        assert_eq!(m.run(100).unwrap().code, 5);
        let stats_before = m.stats();
        m.reload_image(0x2_0000, &exit_prog(9).to_image())
            .expect("valid image reloads");
        assert_eq!(m.program_epoch(), 1);
        assert_eq!(m.pc(), 0x2_0000, "pc reset to the new base");
        assert_eq!(m.exit_code(), None, "exit latch cleared");
        let e = m.run(100).unwrap();
        assert_eq!(e.code, 9);
        assert!(
            e.stats.instret > stats_before.instret,
            "cycle counters carry across the reload"
        );
        // A bad image leaves the machine (and its epoch) unchanged.
        let mut m2 = Machine::new(exit_prog(1), SafetyConfig::default());
        assert!(m2.reload_image(0, &[0x13u8; 3]).is_err());
        assert_eq!(m2.program_epoch(), 0);
        assert_eq!(m2.run(100).unwrap().code, 1);
    }
}
