//! Profiled execution: per-step cycle attribution into the telemetry
//! subsystem.
//!
//! [`Machine::run_profiled`] is [`Machine::run`] with one observer bolted
//! on: after every step the pipeline's [`CycleStats`] delta is split into
//! the five overhead categories of [`Breakdown`] and folded into a
//! [`Profiler`] at the retiring PC. The observer never writes machine
//! state, so a profiled run takes exactly the same path — same exit,
//! output and cycle counts — as a plain one.
//!
//! ## Attribution model
//!
//! The split is computed from stat deltas, so the categories sum to the
//! step's total-cycle delta by construction:
//!
//! * `shadow` — the step's `shadow_stalls` delta (metadata D-cache
//!   misses),
//! * `keybuffer` — the step's `tchk_stalls` delta (key loads on
//!   keybuffer misses),
//! * `runtime` — the step's `runtime_stalls` delta (allocator-wrapper
//!   service cycles),
//! * the remainder goes to `check` when the instruction is a pure
//!   metadata instruction, `base` otherwise. Checked loads/stores count
//!   as HWST instructions (`Instr::is_hwst`) but cost the same issue
//!   cycles as their unchecked forms — the SCU checks in parallel with
//!   EX — so their cycles are program work, not check overhead.

use crate::{syscall, ExitStatus, Machine, Trap};
use hwst_isa::{Instr, Reg};
use hwst_pipeline::CycleStats;
use hwst_telemetry::{Breakdown, Profiler, Track};

/// Splits one step's cycle delta into overhead categories (see the
/// module docs for the model).
///
/// Public so the decoded-block execution tier attributes through the
/// exact same function — telemetry bit-identity across engines falls
/// out of sharing it rather than re-deriving it.
pub fn classify(instr: &Instr, before: &CycleStats, after: &CycleStats) -> Breakdown {
    let shadow = after.shadow_stalls - before.shadow_stalls;
    let keybuffer = after.tchk_stalls - before.tchk_stalls;
    let runtime = after.runtime_stalls - before.runtime_stalls;
    let rest = (after.total_cycles() - before.total_cycles()) - shadow - keybuffer - runtime;
    let metadata_only =
        instr.is_hwst() && !matches!(instr, Instr::Load { .. } | Instr::Store { .. });
    if metadata_only {
        Breakdown {
            base: 0,
            check: rest,
            shadow,
            keybuffer,
            runtime,
        }
    } else {
        Breakdown {
            base: rest,
            check: 0,
            shadow,
            keybuffer,
            runtime,
        }
    }
}

impl Machine {
    /// Executes one instruction like [`step`](Self::step), folding its
    /// cycle-delta breakdown into `prof` at the retiring PC. When the
    /// profiler has a recorder attached, allocator-wrapper `ecall`s also
    /// emit a span on [`Track::Allocator`].
    ///
    /// The step is recorded even when it traps (the pipeline may have
    /// retired the instruction before the violation was raised), keeping
    /// the profile's cycle total equal to the machine's.
    ///
    /// # Errors
    ///
    /// Exactly those of [`step`](Self::step).
    pub fn step_profiled(&mut self, prof: &mut Profiler) -> Result<(), Trap> {
        let fetched = self.next_instr();
        let before = self.stats();
        // Which service an allocator-wrapper ecall is about to request
        // is only visible in a7 *before* the step clobbers a0.
        let span_name: Option<&'static str> = match fetched {
            Some((_, Instr::Ecall)) => match self.reg(Reg::A7) {
                syscall::MALLOC => Some("malloc"),
                syscall::FREE => Some("free"),
                syscall::LOCK_ACQUIRE => Some("lock_acquire"),
                syscall::LOCK_RELEASE => Some("lock_release"),
                _ => None,
            },
            _ => None,
        };
        let result = self.step();
        if let Some((pc, instr)) = fetched {
            let after = self.stats();
            prof.record_step(pc, classify(&instr, &before, &after), before.total_cycles());
            if let Some(name) = span_name {
                prof.record_span(
                    name,
                    Track::Allocator,
                    before.total_cycles(),
                    after.total_cycles(),
                );
            }
        }
        result
    }

    /// Runs until exit, trap or `fuel` instructions — identical to
    /// [`run`](Self::run) except every step is attributed into `prof`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`run`](Self::run).
    pub fn run_profiled(&mut self, fuel: u64, prof: &mut Profiler) -> Result<ExitStatus, Trap> {
        for _ in 0..fuel {
            if let Some(code) = self.exited {
                return Ok(self.exit_status(code));
            }
            self.step_profiled(prof)?;
        }
        if let Some(code) = self.exited {
            return Ok(self.exit_status(code));
        }
        Err(Trap::OutOfFuel { executed: fuel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafetyConfig;
    use hwst_isa::{AluImmOp, Program};

    fn addi(rd: Reg, imm: i64) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg::Zero,
            imm,
        }
    }

    /// malloc(64); free(it is ignored); exit(0).
    fn alloc_prog() -> Program {
        Program::from_instrs(
            0x1_0000,
            vec![
                addi(Reg::A0, 64),
                addi(Reg::A7, syscall::MALLOC as i64),
                Instr::Ecall,
                addi(Reg::A7, syscall::EXIT as i64),
                addi(Reg::A0, 0),
                Instr::Ecall,
            ],
        )
    }

    #[test]
    fn profiled_run_matches_plain_run() {
        let mut plain = Machine::new(alloc_prog(), SafetyConfig::default());
        let want = plain.run(1_000).expect("plain run exits");
        let mut profiled = Machine::new(alloc_prog(), SafetyConfig::default());
        let mut prof = Profiler::new();
        let got = profiled
            .run_profiled(1_000, &mut prof)
            .expect("profiled run exits");
        assert_eq!(want, got, "profiling must not perturb execution");
    }

    #[test]
    fn profile_accounts_for_every_cycle() {
        let mut m = Machine::new(alloc_prog(), SafetyConfig::default());
        let mut prof = Profiler::new();
        let exit = m.run_profiled(1_000, &mut prof).expect("exits");
        let total = prof.profile.total();
        assert_eq!(total.total(), exit.stats.total_cycles());
        // The malloc wrapper's service cycles land in the runtime bucket.
        assert!(total.runtime > 0, "{total:?}");
        assert_eq!(total.check, 0, "no metadata instructions in this program");
    }

    #[test]
    fn allocator_ecalls_emit_spans() {
        let mut m = Machine::new(alloc_prog(), SafetyConfig::default());
        let mut prof = Profiler::with_recorder(64);
        m.run_profiled(1_000, &mut prof).expect("exits");
        let r = prof.recorder.as_ref().expect("recorder attached");
        let allocs: Vec<_> = r.events().filter(|e| e.track == Track::Allocator).collect();
        assert_eq!(allocs.len(), 1, "one malloc span; exit is not a wrapper");
        assert_eq!(allocs[0].name, "malloc");
        assert!(allocs[0].duration() > 0);
    }
}
