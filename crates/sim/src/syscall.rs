//! Proxy-kernel syscall numbers.
//!
//! The paper runs benchmarks on the RISC-V proxy kernel; this module is
//! the (much smaller) equivalent. Besides `exit`/`write`, the runtime
//! wrappers of the instrumented allocator (`malloc`/`free`, §3.4) and the
//! CETS stack-frame lock discipline are serviced here — a documented
//! substitution for implementing libc inside the simulated ISA.

/// `exit(code)` — `a0` = exit code.
pub const EXIT: u64 = 93;
/// `putchar(byte)` — `a0` = byte appended to the captured output.
pub const PUTCHAR: u64 = 64;
/// `malloc(size)` — `a0` = size. Returns `a0` = pointer (0 on failure),
/// `a1` = fresh key, `a2` = lock address (key already stored at the
/// lock_location). The *wrapper code* is responsible for binding
/// metadata with `bndrs`/`bndrt` (hardware schemes) or shadow stores
/// (software schemes).
pub const MALLOC: u64 = 1000;
/// `free(ptr, lock)` — `a0` = pointer, `a1` = lock address (0 = none).
/// Erases the key at the lock_location, releases the lock slot, frees the
/// heap block and clears the keybuffer. Invalid frees are *counted, not
/// trapped* — detecting them is the safety scheme's job.
pub const FREE: u64 = 1001;
/// `lock_acquire()` — returns `a0` = key, `a1` = lock address; used by
/// function prologues for stack temporal safety (use-after-return).
pub const LOCK_ACQUIRE: u64 = 1002;
/// `lock_release(lock)` — `a0` = lock address; erases the key and
/// releases the slot (function epilogue).
pub const LOCK_RELEASE: u64 = 1003;
/// `abort_spatial(addr, base, bound)` — the software check failure path
/// of SBCETS-style instrumentation; raises a spatial violation trap.
pub const ABORT_SPATIAL: u64 = 1010;
/// `abort_temporal(key, lock, stored)` — software temporal check failure;
/// raises a temporal violation trap.
pub const ABORT_TEMPORAL: u64 = 1011;
/// `print_u64(value)` — debugging aid: appends the decimal rendering of
/// `a0` and a newline to the captured output.
pub const PRINT_U64: u64 = 1020;
