//! The fetch/decode/execute step.

use crate::machine::Machine;
use crate::{syscall, Trap};
use hwst_isa::{Instr, Reg};
use hwst_metadata::Metadata;
use hwst_pipeline::ExecEvents;

impl Machine {
    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised by the instruction (violations, bad
    /// fetch, breakpoints, environment faults).
    pub fn step(&mut self) -> Result<(), Trap> {
        if self.exited.is_some() {
            return Ok(());
        }
        let pc = self.pc;
        let instr = *self.program.fetch(pc).ok_or(Trap::BadFetch { pc })?;
        let mut ev = ExecEvents::default();
        let mut next_pc = pc.wrapping_add(4);

        match instr {
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                self.srf.clear(rd);
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(imm as u64));
                self.srf.clear(rd);
            }
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                self.srf.clear(rd);
                next_pc = pc.wrapping_add(offset as u64);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1u64;
                self.set_reg(rd, pc.wrapping_add(4));
                self.srf.clear(rd);
                next_pc = target;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.eval(self.reg(rs1), self.reg(rs2)) {
                    next_pc = pc.wrapping_add(offset as u64);
                    ev.branch_taken = true;
                }
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
                checked,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                ev.mem_addr = Some(addr);
                if checked && self.spatial_on() {
                    self.spatial_check(pc, rs1, addr, width.bytes())?;
                }
                let raw = self.mem.read_le(addr, width.bytes());
                self.set_reg(rd, width.extend(raw));
                self.srf.clear(rd);
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
                checked,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                ev.mem_addr = Some(addr);
                if checked && self.spatial_on() {
                    self.spatial_check(pc, rs1, addr, width.bytes())?;
                }
                self.mem.write_le(addr, width.bytes(), self.reg(rs2));
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm));
                self.srf.propagate(rd, Some(rs1), None);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
                self.srf.propagate(rd, Some(rs1), Some(rs2));
            }
            Instr::Csr { op, rd, rs1, csr } => {
                let old = self.csr(csr);
                let src = self.reg(rs1);
                self.set_reg(rd, old);
                self.srf.clear(rd);
                self.set_csr(csr, op.apply(old, src));
            }
            Instr::Ecall => {
                self.ecall(pc)?;
            }
            Instr::Ebreak => return Err(Trap::Breakpoint { pc }),
            Instr::Fence => {}

            // ---- HWST128 extension ----
            Instr::Bndrs { rd, rs1, rs2 } => {
                let (base, bound) = (self.reg(rs1), self.reg(rs2));
                let lower =
                    self.codec
                        .compress_spatial(base, bound)
                        .map_err(|_| Trap::Environment {
                            pc,
                            what: "bndrs: metadata not representable under compcfg",
                        })?;
                self.srf.write_lower(rd, lower);
            }
            Instr::Bndrt { rd, rs1, rs2 } => {
                let (key, lock) = (self.reg(rs1), self.reg(rs2));
                let upper =
                    self.codec
                        .compress_temporal(key, lock)
                        .map_err(|_| Trap::Environment {
                            pc,
                            what: "bndrt: metadata not representable under compcfg",
                        })?;
                self.srf.write_upper(rd, upper);
            }
            Instr::SrfMv { rd, rs1 } => self.srf.mv(rd, rs1),
            Instr::SrfClr { rd } => self.srf.clear(rd),
            Instr::Sbdl { rs1, rs2, offset } => {
                let container = self.reg(rs1).wrapping_add(offset as u64);
                let s = self.shadow.shadow_addr(container);
                ev.shadow_addr = Some(s);
                let lower = self.srf.read(rs2).map(|c| c.lower).unwrap_or(0);
                self.mem.write_u64(s, lower);
            }
            Instr::Sbdu { rs1, rs2, offset } => {
                let container = self.reg(rs1).wrapping_add(offset as u64);
                let s = self.shadow.upper_addr(container);
                ev.shadow_addr = Some(s);
                let upper = self.srf.read(rs2).map(|c| c.upper).unwrap_or(0);
                self.mem.write_u64(s, upper);
            }
            Instr::Lbdls { rd, rs1, offset } => {
                let container = self.reg(rs1).wrapping_add(offset as u64);
                let s = self.shadow.shadow_addr(container);
                ev.shadow_addr = Some(s);
                let v = self.mem.read_u64(s);
                self.srf.write_lower(rd, v);
            }
            Instr::Lbdus { rd, rs1, offset } => {
                let container = self.reg(rs1).wrapping_add(offset as u64);
                let s = self.shadow.upper_addr(container);
                ev.shadow_addr = Some(s);
                let v = self.mem.read_u64(s);
                self.srf.write_upper(rd, v);
            }
            Instr::Lbas { rd, rs1, offset } => {
                let (v, s) = self.shadow_field(rs1, offset, Field::Base);
                ev.shadow_addr = Some(s);
                self.set_reg(rd, v);
                self.srf.clear(rd);
            }
            Instr::Lbnd { rd, rs1, offset } => {
                let (v, s) = self.shadow_field(rs1, offset, Field::Bound);
                ev.shadow_addr = Some(s);
                self.set_reg(rd, v);
                self.srf.clear(rd);
            }
            Instr::Lkey { rd, rs1, offset } => {
                let (v, s) = self.shadow_field(rs1, offset, Field::Key);
                ev.shadow_addr = Some(s);
                self.set_reg(rd, v);
                self.srf.clear(rd);
            }
            Instr::Lloc { rd, rs1, offset } => {
                let (v, s) = self.shadow_field(rs1, offset, Field::Lock);
                ev.shadow_addr = Some(s);
                self.set_reg(rd, v);
                self.srf.clear(rd);
            }
            Instr::Tchk { rs1 } => {
                if self.temporal_on() {
                    if let Some(c) = self.srf.read(rs1) {
                        let (key, lock) = self.codec.decompress_temporal(c.upper);
                        if lock != 0 {
                            let stored = self.mem.read_u64(lock);
                            ev.tchk = Some((lock, stored));
                            if stored != key {
                                // Charge the cycles before trapping so the
                                // detection is visible in the stats too.
                                self.pipeline.retire(&instr, &ev);
                                return Err(Trap::TemporalViolation {
                                    pc,
                                    key,
                                    lock,
                                    stored_key: stored,
                                });
                            }
                        }
                    }
                }
            }
        }

        self.pipeline.retire(&instr, &ev);
        self.pc = next_pc;
        Ok(())
    }

    /// The SCU: checks an `n`-byte access at `addr` against the spatial
    /// metadata shadowing `ptr_reg`. An invalid SRF entry — or an
    /// all-zero compressed spatial word, the value every never-written
    /// shadow container holds — admits the access: uninstrumented pointer
    /// flows must keep working (the SBCETS binary-compatibility rule the
    /// paper inherits). NULL pointers are bound to the empty region
    /// `[8, 8)` by the allocator wrapper, which compresses to a nonzero
    /// word and therefore still traps.
    ///
    /// Public (and `&self` — the check only reads) so the decoded-block
    /// execution tier shares this exact predicate instead of
    /// re-implementing it.
    #[inline]
    pub fn spatial_check(&self, pc: u64, ptr_reg: Reg, addr: u64, bytes: u64) -> Result<(), Trap> {
        if let Some(c) = self.srf.read(ptr_reg) {
            if c.lower == 0 {
                return Ok(());
            }
            let (base, bound) = self.codec.decompress_spatial(c.lower);
            let md = Metadata::spatial(base, bound);
            if !md.spatial_ok(addr, bytes) {
                return Err(Trap::SpatialViolation {
                    pc,
                    addr,
                    base,
                    bound,
                });
            }
        }
        Ok(())
    }

    fn shadow_field(&mut self, rs1: Reg, offset: i64, f: Field) -> (u64, u64) {
        let container = self.reg(rs1).wrapping_add(offset as u64);
        let (s, word) = match f {
            Field::Base | Field::Bound => {
                let s = self.shadow.shadow_addr(container);
                (s, self.mem.read_u64(s))
            }
            Field::Key | Field::Lock => {
                let s = self.shadow.upper_addr(container);
                (s, self.mem.read_u64(s))
            }
        };
        let v = match f {
            Field::Base => self.codec.decompress_spatial(word).0,
            Field::Bound => self.codec.decompress_spatial(word).1,
            Field::Key => self.codec.decompress_temporal(word).0,
            Field::Lock => self.codec.decompress_temporal(word).1,
        };
        (v, s)
    }

    /// Proxy-kernel syscall dispatch (`a7` = number).
    fn ecall(&mut self, pc: u64) -> Result<(), Trap> {
        let num = self.reg(Reg::A7);
        let a0 = self.reg(Reg::A0);
        let a1 = self.reg(Reg::A1);
        let a2 = self.reg(Reg::A2);
        match num {
            syscall::EXIT => {
                self.exited = Some(a0);
            }
            syscall::PUTCHAR => {
                self.output.push(a0 as u8);
            }
            syscall::MALLOC => {
                self.events.mallocs += 1;
                // A realistic allocator costs tens of cycles of runtime
                // work beyond the wrapper's own instructions.
                self.pipeline.charge_runtime(30);
                match self.heap.malloc(a0) {
                    Ok(block) => {
                        let grant = self.locks.acquire().map_err(|_| Trap::Environment {
                            pc,
                            what: "lock_location slots exhausted",
                        })?;
                        self.mem.write_u64(grant.lock, grant.key);
                        self.set_reg(Reg::A0, block.base);
                        self.set_reg(Reg::A1, grant.key);
                        self.set_reg(Reg::A2, grant.lock);
                        self.srf.clear(Reg::A0);
                        self.srf.clear(Reg::A1);
                        self.srf.clear(Reg::A2);
                    }
                    Err(_) => {
                        self.set_reg(Reg::A0, 0);
                        self.set_reg(Reg::A1, 0);
                        self.set_reg(Reg::A2, 0);
                    }
                }
            }
            syscall::FREE => {
                self.pipeline.charge_runtime(30);
                if a1 != 0 {
                    // Erase the key: every pointer still carrying the old
                    // key is now invalid (CETS semantics, §3.4).
                    self.mem.write_u64(a1, 0);
                    let _ = self.locks.release(a1);
                    self.pipeline.notify_free();
                }
                match self.heap.free(a0) {
                    Ok(()) => self.events.frees += 1,
                    Err(_) => self.events.invalid_frees += 1,
                }
            }
            syscall::LOCK_ACQUIRE => {
                self.pipeline.charge_runtime(10);
                let grant = self.locks.acquire().map_err(|_| Trap::Environment {
                    pc,
                    what: "lock_location slots exhausted",
                })?;
                self.mem.write_u64(grant.lock, grant.key);
                self.set_reg(Reg::A0, grant.key);
                self.set_reg(Reg::A1, grant.lock);
                self.srf.clear(Reg::A0);
                self.srf.clear(Reg::A1);
            }
            syscall::LOCK_RELEASE => {
                self.pipeline.charge_runtime(10);
                self.mem.write_u64(a0, 0);
                let _ = self.locks.release(a0);
                self.pipeline.notify_free();
            }
            syscall::ABORT_SPATIAL => {
                return Err(Trap::SpatialViolation {
                    pc,
                    addr: a0,
                    base: a1,
                    bound: a2,
                });
            }
            syscall::ABORT_TEMPORAL => {
                return Err(Trap::TemporalViolation {
                    pc,
                    key: a0,
                    lock: a1,
                    stored_key: a2,
                });
            }
            syscall::PRINT_U64 => {
                self.output.extend_from_slice(a0.to_string().as_bytes());
                self.output.push(b'\n');
            }
            _ => {
                return Err(Trap::MachineFault {
                    pc,
                    what: "unknown syscall number",
                })
            }
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum Field {
    Base,
    Bound,
    Key,
    Lock,
}
