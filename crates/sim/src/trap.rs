//! Violation traps and machine faults.

use std::fmt;

/// A trap that terminates execution.
///
/// The two violation variants are the paper's "spatial violation trap"
/// (raised by the SCU) and "temporal violation trap" (raised by the TCU);
/// they are also raised by the *software* abort paths that SBCETS-style
/// instrumentation branches to, so detection is comparable across
/// schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Out-of-bounds access detected (hardware SCU or software check).
    SpatialViolation {
        /// PC of the faulting instruction.
        pc: u64,
        /// The accessed address.
        addr: u64,
        /// Metadata base at the time of the check.
        base: u64,
        /// Metadata bound at the time of the check.
        bound: u64,
    },
    /// Dangling-pointer access detected (hardware TCU or software check).
    TemporalViolation {
        /// PC of the faulting instruction.
        pc: u64,
        /// The key held by the pointer.
        key: u64,
        /// The lock address that was checked.
        lock: u64,
        /// The key actually stored at the lock_location.
        stored_key: u64,
    },
    /// Fetch fell outside the program image.
    BadFetch {
        /// The faulting PC.
        pc: u64,
    },
    /// `ebreak` (unknown syscalls raise [`Trap::MachineFault`]).
    Breakpoint {
        /// PC of the `ebreak`.
        pc: u64,
    },
    /// The instruction budget given to [`run`](crate::Machine::run) was
    /// exhausted (runaway program).
    OutOfFuel {
        /// Instructions executed before giving up.
        executed: u64,
    },
    /// The program performed an access the substrate cannot model (e.g.
    /// heap exhaustion inside `malloc`).
    Environment {
        /// PC of the faulting syscall.
        pc: u64,
        /// Human-readable cause.
        what: &'static str,
    },
    /// The machine itself entered a state it cannot continue from —
    /// the graceful-degradation variant that replaces every would-be
    /// panic on adversarial state (unknown syscalls, corrupted internal
    /// structures found by the fault-injection campaigns). Never counts
    /// as a memory-safety detection.
    MachineFault {
        /// PC when the fault was raised.
        pc: u64,
        /// Human-readable cause.
        what: &'static str,
    },
}

impl Trap {
    /// Whether this trap is a memory-safety *detection* (as opposed to a
    /// machine fault) — what the Juliet coverage experiment counts.
    pub const fn is_violation(self) -> bool {
        matches!(
            self,
            Trap::SpatialViolation { .. } | Trap::TemporalViolation { .. }
        )
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::SpatialViolation { pc, addr, base, bound } => write!(
                f,
                "spatial violation at pc={pc:#x}: access {addr:#x} outside [{base:#x}, {bound:#x})"
            ),
            Trap::TemporalViolation { pc, key, lock, stored_key } => write!(
                f,
                "temporal violation at pc={pc:#x}: pointer key {key:#x} != stored key {stored_key:#x} at lock {lock:#x}"
            ),
            Trap::BadFetch { pc } => write!(f, "fetch outside program at pc={pc:#x}"),
            Trap::Breakpoint { pc } => write!(f, "breakpoint at pc={pc:#x}"),
            Trap::OutOfFuel { executed } => {
                write!(f, "instruction budget exhausted after {executed} instructions")
            }
            Trap::Environment { pc, what } => {
                write!(f, "environment fault at pc={pc:#x}: {what}")
            }
            Trap::MachineFault { pc, what } => {
                write!(f, "machine fault at pc={pc:#x}: {what}")
            }
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_classification() {
        assert!(Trap::SpatialViolation {
            pc: 0,
            addr: 0,
            base: 0,
            bound: 0
        }
        .is_violation());
        assert!(Trap::TemporalViolation {
            pc: 0,
            key: 0,
            lock: 0,
            stored_key: 0
        }
        .is_violation());
        assert!(!Trap::BadFetch { pc: 0 }.is_violation());
        assert!(!Trap::OutOfFuel { executed: 9 }.is_violation());
    }

    #[test]
    fn display_mentions_addresses() {
        let t = Trap::SpatialViolation {
            pc: 0x100,
            addr: 0x2000,
            base: 0x1000,
            bound: 0x1fff,
        };
        let s = t.to_string();
        assert!(s.contains("0x2000") && s.contains("0x100"));
    }
}
