//! Structured execution tracing.

use crate::{Machine, Trap};
use hwst_isa::{Instr, Reg};
use std::fmt;

/// One traced execution step: the instruction, plus every architectural
/// GPR it changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// PC of the executed instruction.
    pub pc: u64,
    /// The instruction.
    pub instr: Instr,
    /// GPRs written (register, new value) — more than one for syscalls.
    pub reg_writes: Vec<(Reg, u64)>,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}: {:<28}", self.pc, self.instr.to_string())?;
        for (i, (r, v)) in self.reg_writes.iter().enumerate() {
            if i == 0 {
                write!(f, " ; ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{r}={v:#x}")?;
        }
        Ok(())
    }
}

impl Machine {
    /// Executes one instruction and reports what it did. Returns `None`
    /// when the machine has already exited.
    ///
    /// Tracing costs a register-file snapshot per step; use
    /// [`step`](Machine::step) for full-speed runs.
    ///
    /// # Errors
    ///
    /// Propagates the [`Trap`] from [`step`](Machine::step).
    pub fn step_traced(&mut self) -> Result<Option<TraceEvent>, Trap> {
        let Some((pc, instr)) = self.next_instr() else {
            return Ok(None);
        };
        let before = self.regs;
        self.step()?;
        let reg_writes = (1u8..32)
            .filter_map(|i| {
                let r = Reg::from_index(i)?;
                (self.regs[i as usize] != before[i as usize]).then(|| (r, self.regs[i as usize]))
            })
            .collect();
        Ok(Some(TraceEvent {
            pc,
            instr,
            reg_writes,
        }))
    }

    /// Runs up to `max_steps`, collecting the trace; stops early on exit
    /// or trap (the trap, if any, is returned alongside the prefix).
    pub fn trace(&mut self, max_steps: usize) -> (Vec<TraceEvent>, Option<Trap>) {
        let mut events = Vec::new();
        for _ in 0..max_steps {
            match self.step_traced() {
                Ok(Some(e)) => events.push(e),
                Ok(None) => break,
                Err(t) => return (events, Some(t)),
            }
        }
        (events, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{syscall, SafetyConfig};
    use hwst_isa::{AluImmOp, Program};

    fn prog() -> Program {
        Program::from_instrs(
            0x1_0000,
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: 5,
                },
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A7,
                    rs1: Reg::Zero,
                    imm: syscall::EXIT as i64,
                },
                Instr::Ecall,
            ],
        )
    }

    #[test]
    fn trace_records_register_writes() {
        let mut m = Machine::new(prog(), SafetyConfig::default());
        let (events, trap) = m.trace(100);
        assert!(trap.is_none());
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].reg_writes, vec![(Reg::A0, 5)]);
        assert_eq!(events[1].reg_writes, vec![(Reg::A7, syscall::EXIT)]);
        assert_eq!(m.exit_code(), Some(5));
        let line = events[0].to_string();
        assert!(line.contains("addi a0, zero, 5") && line.contains("a0=0x5"));
    }

    #[test]
    fn trace_stops_at_exit_and_is_stable_after() {
        let mut m = Machine::new(prog(), SafetyConfig::default());
        let (events, _) = m.trace(1000);
        assert_eq!(events.len(), 3);
        let (more, _) = m.trace(1000);
        assert!(more.is_empty(), "no events after exit");
    }

    #[test]
    fn trace_surfaces_traps_with_prefix() {
        let p = Program::from_instrs(0x1_0000, vec![Instr::Ebreak]);
        let mut m = Machine::new(p, SafetyConfig::default());
        let (events, trap) = m.trace(10);
        assert!(events.is_empty());
        assert!(matches!(trap, Some(Trap::Breakpoint { .. })));
    }

    #[test]
    fn syscall_multi_writes_are_all_captured() {
        // malloc writes a0, a1 and a2.
        let p = Program::from_instrs(
            0x1_0000,
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: 32,
                },
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A7,
                    rs1: Reg::Zero,
                    imm: syscall::MALLOC as i64,
                },
                Instr::Ecall,
            ],
        );
        let mut m = Machine::new(p, SafetyConfig::default());
        let (events, _) = m.trace(10);
        let regs: Vec<Reg> = events[2].reg_writes.iter().map(|&(r, _)| r).collect();
        assert!(regs.contains(&Reg::A0));
        assert!(regs.contains(&Reg::A1));
        assert!(regs.contains(&Reg::A2));
    }
}
