//! Deterministic metadata-path fault injection — the resilience
//! subsystem (DESIGN.md §4d, experiment R1).
//!
//! The paper's threat model assumes the metadata path itself (SRF cells,
//! LMSM shadow words, keybuffer entries, compressed records, lock words)
//! is trustworthy. This module stress-tests that assumption in the style
//! of architectural-vulnerability-factor studies: an [`InjectionPlan`]
//! names a fault class, a seed and a trigger instruction count; the
//! campaign driver runs the same program with and without the fault and
//! classifies the divergence as an [`Outcome`].
//!
//! Everything is deterministic: targets are chosen by a seeded SplitMix64
//! generator over *sorted* candidate lists (memory pages, live lock
//! slots, SRF registers), so a fixed `(program, plan)` pair always
//! produces the same [`FaultRecord`] and the same outcome.
//!
//! ## Example
//!
//! ```
//! use hwst_isa::{AluImmOp, Instr, Program, Reg};
//! use hwst_sim::inject::{classify, run_with_plan, FaultClass, InjectionPlan, Outcome};
//! use hwst_sim::{Machine, SafetyConfig};
//!
//! let prog = Program::from_instrs(0x1_0000, vec![
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::Zero, imm: 0 },
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A7, rs1: Reg::Zero, imm: 93 },
//!     Instr::Ecall,
//! ]);
//! let reference = Machine::new(prog.clone(), SafetyConfig::default()).run(100);
//! let plan = InjectionPlan::from_seed(FaultClass::ShadowWordFlip, 7, 3);
//! let mut m = Machine::new(prog, SafetyConfig::default());
//! let (faulted, record) = run_with_plan(&mut m, &plan, 100);
//! // No metadata was ever written, so there is nothing to corrupt.
//! assert!(!record.applied());
//! assert_eq!(classify(&reference, &faulted), Outcome::Masked);
//! ```

use crate::machine::{ExitStatus, Machine};
use crate::Trap;
use hwst_isa::{csr, Reg};
use std::fmt;

/// A class of metadata-path fault the campaigns can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Flip one of the 128 bits of a valid shadow-register-file entry
    /// (a pre-DECOMP compressed record upset).
    SrfBitFlip,
    /// Drop a valid SRF entry entirely (the cell's valid bit clears).
    SrfDrop,
    /// Flip one bit of a resident, nonzero LMSM shadow word (post-COMP,
    /// at-rest metadata corruption).
    ShadowWordFlip,
    /// Plant a stale/wrong `lock → key` entry in the keybuffer. The
    /// keybuffer is a timing structure, so this must always be masked —
    /// the coherence guarantee the campaigns verify.
    KeybufferPoison,
    /// Overwrite a live lock word in the lock_location region with zero
    /// (phantom free) or a wrong key.
    LockWordOverwrite,
    /// Flip one bit of the 24-bit `hwst.compcfg` CSR, skewing every
    /// later COMP/DECOMP.
    CompCfgFlip,
}

impl FaultClass {
    /// Every fault class, in campaign-table order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::SrfBitFlip,
        FaultClass::SrfDrop,
        FaultClass::ShadowWordFlip,
        FaultClass::KeybufferPoison,
        FaultClass::LockWordOverwrite,
        FaultClass::CompCfgFlip,
    ];

    /// Short stable name used in the R1 table.
    pub const fn name(self) -> &'static str {
        match self {
            FaultClass::SrfBitFlip => "srf-bit-flip",
            FaultClass::SrfDrop => "srf-drop",
            FaultClass::ShadowWordFlip => "shadow-word-flip",
            FaultClass::KeybufferPoison => "keybuffer-poison",
            FaultClass::LockWordOverwrite => "lock-overwrite",
            FaultClass::CompCfgFlip => "compcfg-flip",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic, seed-addressed fault: *which* class of fault to
/// apply, *when* (after `trigger` retired instructions), and the seed
/// that picks the concrete target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// The fault class.
    pub class: FaultClass,
    /// Seed for target selection within the class.
    pub seed: u64,
    /// Apply the fault after this many retired instructions.
    pub trigger: u64,
}

impl InjectionPlan {
    /// Derives a plan from a seed: the trigger point is drawn uniformly
    /// from `[0, horizon)` (pass the reference run's instruction count
    /// as `horizon` so the fault lands somewhere the program actually
    /// executes).
    pub fn from_seed(class: FaultClass, seed: u64, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xF417_1C7A_55C0_FFEE);
        InjectionPlan {
            class,
            seed,
            trigger: rng.next() % horizon.max(1),
        }
    }
}

impl fmt::Display for InjectionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seed={:#x} trigger={}",
            self.class, self.seed, self.trigger
        )
    }
}

/// What a plan actually mutated when it fired (the campaign log line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRecord {
    /// The fault had no target (program exited or trapped before the
    /// trigger, or the targeted structure was empty).
    NotApplied {
        /// Why nothing was mutated.
        why: &'static str,
    },
    /// An SRF entry had one bit flipped.
    SrfBitFlip {
        /// The shadowed register.
        reg: Reg,
        /// Bit index within the 128-bit record.
        bit: u8,
    },
    /// An SRF entry was invalidated.
    SrfDrop {
        /// The shadowed register.
        reg: Reg,
    },
    /// A shadow word had one bit flipped.
    ShadowWordFlip {
        /// Shadow-memory address of the word.
        addr: u64,
        /// Bit index within the word.
        bit: u32,
    },
    /// A stale entry was planted in the keybuffer.
    KeybufferPoison {
        /// The lock address of the planted entry.
        lock: u64,
        /// The (wrong) key it maps to.
        key: u64,
    },
    /// A live lock word was overwritten.
    LockWordOverwrite {
        /// The lock_location address.
        lock: u64,
        /// The key that was stored there.
        old_key: u64,
        /// The value written over it.
        new_key: u64,
    },
    /// The `hwst.compcfg` CSR had one bit flipped.
    CompCfgFlip {
        /// Bit index within the 24-bit encoding.
        bit: u8,
        /// CSR value before the flip.
        old: u64,
        /// CSR value after the flip.
        new: u64,
    },
}

impl FaultRecord {
    /// Whether the plan actually mutated machine state.
    pub const fn applied(&self) -> bool {
        !matches!(self, FaultRecord::NotApplied { .. })
    }
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultRecord::NotApplied { why } => write!(f, "not applied: {why}"),
            FaultRecord::SrfBitFlip { reg, bit } => write!(f, "srf[{reg}] bit {bit} flipped"),
            FaultRecord::SrfDrop { reg } => write!(f, "srf[{reg}] dropped"),
            FaultRecord::ShadowWordFlip { addr, bit } => {
                write!(f, "shadow word {addr:#x} bit {bit} flipped")
            }
            FaultRecord::KeybufferPoison { lock, key } => {
                write!(f, "keybuffer poisoned: lock {lock:#x} -> key {key:#x}")
            }
            FaultRecord::LockWordOverwrite {
                lock,
                old_key,
                new_key,
            } => write!(f, "lock {lock:#x} overwritten {old_key:#x} -> {new_key:#x}"),
            FaultRecord::CompCfgFlip { bit, old, new } => {
                write!(f, "compcfg bit {bit} flipped {old:#x} -> {new:#x}")
            }
        }
    }
}

/// AVF-style classification of one faulted run against its fault-free
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The run ended in a spatial/temporal violation trap: the safety
    /// machinery noticed the corruption (or kept noticing the bug it was
    /// already detecting).
    Detected,
    /// The run ended exactly like the reference: the fault was benign.
    Masked,
    /// The run completed without a trap but with a different exit code
    /// or output than the reference — silent metadata corruption, the
    /// AVF-critical class.
    SilentCorruption,
    /// The run ended in a non-violation trap (machine fault, fetch
    /// error, fuel exhaustion...): noisy failure, not silent.
    MachineFault,
}

impl Outcome {
    /// Short stable name used in the R1 table.
    pub const fn name(self) -> &'static str {
        match self {
            Outcome::Detected => "detected",
            Outcome::Masked => "masked",
            Outcome::SilentCorruption => "silent",
            Outcome::MachineFault => "machine-fault",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome counters for one campaign cell (fault class × target set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Runs ending in a violation trap.
    pub detected: u64,
    /// Runs identical to the reference.
    pub masked: u64,
    /// Runs with silently wrong results.
    pub silent: u64,
    /// Runs ending in a non-violation trap.
    pub machine_fault: u64,
    /// Runs whose plan found nothing to corrupt (always also counted
    /// as masked — an unapplied fault cannot diverge).
    pub not_applied: u64,
}

impl OutcomeCounts {
    /// Records one classified run.
    pub fn record(&mut self, outcome: Outcome, applied: bool) {
        match outcome {
            Outcome::Detected => self.detected += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::SilentCorruption => self.silent += 1,
            Outcome::MachineFault => self.machine_fault += 1,
        }
        if !applied {
            self.not_applied += 1;
        }
    }

    /// Adds another cell's counters into this one.
    pub fn merge(&mut self, other: OutcomeCounts) {
        self.detected += other.detected;
        self.masked += other.masked;
        self.silent += other.silent;
        self.machine_fault += other.machine_fault;
        self.not_applied += other.not_applied;
    }

    /// Total classified runs.
    pub fn total(&self) -> u64 {
        self.detected + self.masked + self.silent + self.machine_fault
    }

    /// Fraction of runs that silently corrupted — the AVF of this cell
    /// (0 when no runs were recorded).
    pub fn silent_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.silent as f64 / total as f64
        }
    }
}

/// Classifies a faulted run against its fault-free reference.
pub fn classify(
    reference: &Result<ExitStatus, Trap>,
    faulted: &Result<ExitStatus, Trap>,
) -> Outcome {
    match faulted {
        Err(t) if t.is_violation() => Outcome::Detected,
        Err(_) => Outcome::MachineFault,
        Ok(f) => match reference {
            Ok(r) if r.code == f.code && r.output == f.output => Outcome::Masked,
            _ => Outcome::SilentCorruption,
        },
    }
}

/// Steps the machine to the plan's trigger point, applies the fault, and
/// runs the remaining fuel. Returns the run result plus what was
/// actually mutated.
///
/// Never panics: every outcome is a classified [`Trap`] or
/// [`ExitStatus`] — the graceful-degradation property the `inject`
/// property tests pin down.
pub fn run_with_plan(
    m: &mut Machine,
    plan: &InjectionPlan,
    fuel: u64,
) -> (Result<ExitStatus, Trap>, FaultRecord) {
    let mut executed = 0u64;
    let trigger = plan.trigger.min(fuel);
    while executed < trigger {
        if m.exit_code().is_some() {
            break;
        }
        if let Err(t) = m.step() {
            return (
                Err(t),
                FaultRecord::NotApplied {
                    why: "trapped before the trigger point",
                },
            );
        }
        executed += 1;
    }
    let record = if m.exit_code().is_some() {
        FaultRecord::NotApplied {
            why: "program exited before the trigger point",
        }
    } else {
        apply_fault(m, plan.class, &mut SplitMix64::new(plan.seed))
    };
    (m.run(fuel.saturating_sub(executed)), record)
}

/// Runs one fault class against one machine factory: a fault-free
/// reference first (whose instruction count bounds the trigger points),
/// then one faulted run per seed.
pub fn campaign<F>(mk: F, fuel: u64, class: FaultClass, seeds: &[u64]) -> OutcomeCounts
where
    F: Fn() -> Machine,
{
    let mut reference_machine = mk();
    let reference = reference_machine.run(fuel);
    let horizon = reference_machine.stats().instret.max(1);
    let mut counts = OutcomeCounts::default();
    for &seed in seeds {
        let plan = InjectionPlan::from_seed(class, seed, horizon);
        let mut m = mk();
        let (faulted, record) = run_with_plan(&mut m, &plan, fuel);
        counts.record(classify(&reference, &faulted), record.applied());
    }
    counts
}

/// Applies one fault of the given class to the machine's current state.
/// Target selection is deterministic: candidates come from sorted
/// enumerations (`nonzero_word_addrs_in`, `live_lock_addrs`, ascending
/// register index), indexed by the seeded generator.
fn apply_fault(m: &mut Machine, class: FaultClass, rng: &mut SplitMix64) -> FaultRecord {
    match class {
        FaultClass::SrfBitFlip => {
            let regs = valid_srf_regs(m);
            let Some(reg) = pick(&regs, rng) else {
                return FaultRecord::NotApplied {
                    why: "no valid SRF entries",
                };
            };
            let bit = (rng.next() % 128) as u8;
            if let Some(c) = m.srf.read(reg) {
                m.srf.write(reg, c.flip_bit(bit));
            }
            FaultRecord::SrfBitFlip { reg, bit }
        }
        FaultClass::SrfDrop => {
            let regs = valid_srf_regs(m);
            let Some(reg) = pick(&regs, rng) else {
                return FaultRecord::NotApplied {
                    why: "no valid SRF entries",
                };
            };
            m.srf.clear(reg);
            FaultRecord::SrfDrop { reg }
        }
        FaultClass::ShadowWordFlip => {
            let lo = m.csr(csr::HWST_SM_OFFSET);
            let hi = lo.saturating_add(m.cfg.layout.user_end() << 2);
            let words = m.mem.nonzero_word_addrs_in(lo, hi);
            let Some(addr) = pick(&words, rng) else {
                return FaultRecord::NotApplied {
                    why: "no resident nonzero shadow words",
                };
            };
            let bit = (rng.next() % 64) as u32;
            m.mem.flip_word_bit(addr, bit);
            FaultRecord::ShadowWordFlip { addr, bit }
        }
        FaultClass::KeybufferPoison => {
            // Prefer a live lock (a stale key for it); otherwise invent
            // a plausible slot so the fault still lands.
            let live = m.locks.live_lock_addrs();
            let lock = pick(&live, rng).unwrap_or(m.cfg.layout.lock_region_base + 8);
            let key = rng.next() | 1;
            m.pipeline.poison_keybuffer(lock, key);
            FaultRecord::KeybufferPoison { lock, key }
        }
        FaultClass::LockWordOverwrite => {
            let live = m.locks.live_lock_addrs();
            let Some(lock) = pick(&live, rng) else {
                return FaultRecord::NotApplied {
                    why: "no live lock words",
                };
            };
            let old_key = m.mem.read_u64(lock);
            // Half the campaigns model a phantom free (zero), half a
            // wrong key — never accidentally the old key.
            let candidate = if rng.next() & 1 == 0 { 0 } else { rng.next() };
            let new_key = if candidate == old_key {
                candidate.wrapping_add(1)
            } else {
                candidate
            };
            m.mem.write_u64(lock, new_key);
            FaultRecord::LockWordOverwrite {
                lock,
                old_key,
                new_key,
            }
        }
        FaultClass::CompCfgFlip => {
            let old = m.csr(csr::HWST_COMP_CFG);
            let bit = (rng.next() % 24) as u8;
            let new = old ^ (1u64 << bit);
            m.set_csr(csr::HWST_COMP_CFG, new);
            FaultRecord::CompCfgFlip { bit, old, new }
        }
    }
}

/// SRF registers with valid entries, in ascending index order.
fn valid_srf_regs(m: &Machine) -> Vec<Reg> {
    (1u8..32)
        .filter_map(Reg::from_index)
        .filter(|&r| m.srf.read(r).is_some())
        .collect()
}

/// Deterministically picks one element of a sorted candidate list.
fn pick<T: Copy>(candidates: &[T], rng: &mut SplitMix64) -> Option<T> {
    if candidates.is_empty() {
        None
    } else {
        Some(candidates[(rng.next() % candidates.len() as u64) as usize])
    }
}

/// SplitMix64 — the same tiny deterministic generator the vendored
/// proptest shim uses; good enough to spread targets and free of any
/// global state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{syscall, SafetyConfig};
    use hwst_isa::{AluImmOp, Instr, Program};

    fn addi(rd: Reg, rs1: Reg, imm: i64) -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1,
            imm,
        }
    }

    /// malloc + bndrs/bndrt + a tchk loop, then exit 0.
    fn temporal_prog() -> Program {
        let mut body = vec![
            addi(Reg::A0, Reg::Zero, 64),
            addi(Reg::A7, Reg::Zero, syscall::MALLOC as i64),
            Instr::Ecall,
            addi(Reg::T0, Reg::A0, 64),
            Instr::Bndrs {
                rd: Reg::A0,
                rs1: Reg::A0,
                rs2: Reg::T0,
            },
            Instr::Bndrt {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
        ];
        for _ in 0..8 {
            body.push(Instr::Tchk { rs1: Reg::A0 });
        }
        body.extend([
            addi(Reg::A7, Reg::Zero, syscall::EXIT as i64),
            addi(Reg::A0, Reg::Zero, 0),
            Instr::Ecall,
        ]);
        Program::from_instrs(0x1_0000, body)
    }

    fn mk() -> Machine {
        Machine::new(temporal_prog(), SafetyConfig::default())
    }

    #[test]
    fn plans_are_deterministic() {
        for class in FaultClass::ALL {
            let plan = InjectionPlan::from_seed(class, 42, 10);
            assert_eq!(plan, InjectionPlan::from_seed(class, 42, 10));
            let (r1, f1) = run_with_plan(&mut mk(), &plan, 10_000);
            let (r2, f2) = run_with_plan(&mut mk(), &plan, 10_000);
            assert_eq!(f1, f2, "{class}: fault record must be reproducible");
            assert_eq!(r1, r2, "{class}: run result must be reproducible");
        }
    }

    #[test]
    fn lock_overwrite_after_binding_is_detected() {
        // Apply right after the bndrt (instruction 6): every later tchk
        // checks the overwritten word and must trap.
        let plan = InjectionPlan {
            class: FaultClass::LockWordOverwrite,
            seed: 1,
            trigger: 6,
        };
        let (res, record) = run_with_plan(&mut mk(), &plan, 10_000);
        assert!(record.applied(), "a live lock exists at the trigger");
        assert!(
            matches!(res, Err(Trap::TemporalViolation { .. })),
            "overwritten lock word must be detected, got {res:?}"
        );
    }

    #[test]
    fn keybuffer_poison_is_always_masked() {
        let reference = mk().run(10_000);
        for seed in 0..16 {
            let plan = InjectionPlan::from_seed(FaultClass::KeybufferPoison, seed, 17);
            let (res, _) = run_with_plan(&mut mk(), &plan, 10_000);
            assert_eq!(
                classify(&reference, &res),
                Outcome::Masked,
                "keybuffer is timing-only: poison may never change semantics"
            );
        }
    }

    #[test]
    fn campaign_counts_balance() {
        let seeds: Vec<u64> = (0..8).collect();
        for class in FaultClass::ALL {
            let counts = campaign(mk, 10_000, class, &seeds);
            assert_eq!(counts.total(), 8, "{class}");
            assert!(counts.not_applied <= counts.total());
        }
    }

    #[test]
    fn classify_matrix() {
        let ok = |code: u64, out: &[u8]| -> Result<ExitStatus, Trap> {
            Ok(ExitStatus {
                code,
                stats: Default::default(),
                output: out.to_vec(),
            })
        };
        let violation = Err(Trap::TemporalViolation {
            pc: 0,
            key: 1,
            lock: 2,
            stored_key: 3,
        });
        let fault = Err(Trap::MachineFault { pc: 0, what: "x" });
        assert_eq!(classify(&ok(0, b""), &violation), Outcome::Detected);
        assert_eq!(classify(&ok(0, b""), &fault), Outcome::MachineFault);
        assert_eq!(classify(&ok(0, b"hi"), &ok(0, b"hi")), Outcome::Masked);
        assert_eq!(
            classify(&ok(0, b"hi"), &ok(0, b"ho")),
            Outcome::SilentCorruption
        );
        assert_eq!(
            classify(&ok(0, b""), &ok(1, b"")),
            Outcome::SilentCorruption
        );
        // A lost detection is silent corruption, not masked.
        assert_eq!(classify(&violation, &ok(0, b"")), Outcome::SilentCorruption);
        // A still-firing detection stays detected.
        assert_eq!(classify(&violation, &violation), Outcome::Detected);
    }

    #[test]
    fn outcome_counts_merge_and_fraction() {
        let mut a = OutcomeCounts::default();
        a.record(Outcome::Detected, true);
        a.record(Outcome::SilentCorruption, true);
        let mut b = OutcomeCounts::default();
        b.record(Outcome::Masked, false);
        b.record(Outcome::MachineFault, true);
        a.merge(b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.not_applied, 1);
        assert!((a.silent_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(OutcomeCounts::default().silent_fraction(), 0.0);
    }
}
