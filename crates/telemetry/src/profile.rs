//! Per-PC cycle attribution and the hot-function table.

use crate::{Event, RingRecorder, Track};
use std::collections::BTreeMap;

/// One step's (or one aggregate's) cycles split into the five overhead
/// categories of the P1 table. The split is exhaustive: the categories
/// always sum to the total-cycle delta they were computed from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Cycles of ordinary program work (including the software portions
    /// of instrumentation, which are indistinguishable from program
    /// instructions at retire time).
    pub base: u64,
    /// Cycles spent executing HWST128 metadata instructions (`bndr*`,
    /// `sbd*`/`lbd*` issue cost, `srfmv`/`srfclr`, `tchk` issue).
    pub check: u64,
    /// Shadow-memory stall cycles (D-cache misses on metadata).
    pub shadow: u64,
    /// `tchk` key-load stall cycles (keybuffer misses).
    pub keybuffer: u64,
    /// Proxy-kernel runtime cycles (allocator wrapper service).
    pub runtime: u64,
}

impl Breakdown {
    /// Category names, in field order (stable across exporters).
    pub const CATEGORIES: [&'static str; 5] = ["base", "check", "shadow", "keybuffer", "runtime"];

    /// Sum of all categories.
    pub fn total(&self) -> u64 {
        self.base + self.check + self.shadow + self.keybuffer + self.runtime
    }

    /// `(category, cycles)` pairs in [`Self::CATEGORIES`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> {
        [
            ("base", self.base),
            ("check", self.check),
            ("shadow", self.shadow),
            ("keybuffer", self.keybuffer),
            ("runtime", self.runtime),
        ]
        .into_iter()
    }
}

impl std::ops::AddAssign for Breakdown {
    fn add_assign(&mut self, o: Self) {
        self.base += o.base;
        self.check += o.check;
        self.shadow += o.shadow;
        self.keybuffer += o.keybuffer;
        self.runtime += o.runtime;
    }
}

/// A PC-indexed cycle profile. Keys are absolute PCs; the `BTreeMap`
/// keeps iteration (and therefore every downstream table and export)
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PcProfile {
    map: BTreeMap<u64, Breakdown>,
}

impl PcProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        PcProfile::default()
    }

    /// Folds one step's breakdown into the profile at `pc`.
    #[inline]
    pub fn record(&mut self, pc: u64, bd: Breakdown) {
        *self.map.entry(pc).or_default() += bd;
    }

    /// `(pc, breakdown)` pairs in ascending PC order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Breakdown)> {
        self.map.iter().map(|(&pc, bd)| (pc, bd))
    }

    /// Aggregate over every PC.
    pub fn total(&self) -> Breakdown {
        let mut t = Breakdown::default();
        for bd in self.map.values() {
            t += *bd;
        }
        t
    }

    /// Number of distinct PCs profiled.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A named PC range — one function of the lowered image, as published
/// by `hwst_compiler::lower` (`FnPlan::start_pc`/`end_pc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Function name.
    pub name: String,
    /// First PC of the function (inclusive).
    pub start_pc: u64,
    /// One past the last PC of the function (exclusive).
    pub end_pc: u64,
}

/// A sorted, binary-searchable symbol table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    syms: Vec<Symbol>,
}

impl SymbolTable {
    /// Builds a table from symbols in any order (they are sorted by
    /// start PC internally).
    pub fn new(mut syms: Vec<Symbol>) -> Self {
        syms.sort_by_key(|s| s.start_pc);
        SymbolTable { syms }
    }

    /// Resolves a PC to the symbol containing it.
    pub fn resolve(&self, pc: u64) -> Option<&Symbol> {
        let i = self.syms.partition_point(|s| s.start_pc <= pc);
        let s = self.syms.get(i.checked_sub(1)?)?;
        (pc < s.end_pc).then_some(s)
    }

    /// The symbols, sorted by start PC.
    pub fn symbols(&self) -> &[Symbol] {
        &self.syms
    }
}

/// One row of the hot-function table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnRow {
    /// Function name.
    pub name: String,
    /// That function's cycles per category.
    pub cycles: Breakdown,
}

/// The hot-function table: a [`PcProfile`] folded through a
/// [`SymbolTable`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnTable {
    /// Per-function rows, hottest first (ties broken by name).
    pub rows: Vec<FnRow>,
    /// Aggregate cycles that landed inside a named function.
    pub attributed: Breakdown,
    /// Aggregate cycles at PCs outside every symbol (the startup shim).
    pub unattributed: Breakdown,
}

impl FnTable {
    /// Fraction of all profiled cycles attributed to named functions
    /// (1.0 for an empty profile — nothing was missed).
    pub fn attributed_fraction(&self) -> f64 {
        let total = self.attributed.total() + self.unattributed.total();
        if total == 0 {
            1.0
        } else {
            self.attributed.total() as f64 / total as f64
        }
    }

    /// Aggregate over attributed and unattributed cycles — equals the
    /// source profile's total.
    pub fn total(&self) -> Breakdown {
        let mut t = self.attributed;
        t += self.unattributed;
        t
    }
}

/// Folds a profile through a symbol table into the hot-function table.
/// Functions that never retired an instruction are omitted.
pub fn attribute(profile: &PcProfile, syms: &SymbolTable) -> FnTable {
    let mut per_fn: BTreeMap<&str, Breakdown> = BTreeMap::new();
    let mut attributed = Breakdown::default();
    let mut unattributed = Breakdown::default();
    for (pc, bd) in profile.iter() {
        match syms.resolve(pc) {
            Some(s) => {
                *per_fn.entry(s.name.as_str()).or_default() += *bd;
                attributed += *bd;
            }
            None => unattributed += *bd,
        }
    }
    let mut rows: Vec<FnRow> = per_fn
        .into_iter()
        .map(|(name, cycles)| FnRow {
            name: name.to_string(),
            cycles,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.cycles
            .total()
            .cmp(&a.cycles.total())
            .then_with(|| a.name.cmp(&b.name))
    });
    FnTable {
        rows,
        attributed,
        unattributed,
    }
}

/// The per-run profiling context the simulator feeds: a PC profile plus
/// an optional span recorder. Constructed without a recorder it is the
/// "profile only" mode; [`Profiler::with_recorder`] adds the event
/// stream for trace export.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// The accumulated PC-indexed profile.
    pub profile: PcProfile,
    /// The span recorder, when attached.
    pub recorder: Option<RingRecorder>,
}

impl Profiler {
    /// A profiler with no recorder attached.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// A profiler with a ring recorder of the given capacity.
    pub fn with_recorder(capacity: usize) -> Self {
        Profiler {
            profile: PcProfile::new(),
            recorder: Some(RingRecorder::new(capacity)),
        }
    }

    /// Folds one executed step into the profile and, when a recorder is
    /// attached, emits stall spans for the step's shadow and keybuffer
    /// stall cycles starting at `start_cycle` (the pre-step cycle
    /// count).
    #[inline]
    pub fn record_step(&mut self, pc: u64, bd: Breakdown, start_cycle: u64) {
        self.profile.record(pc, bd);
        if let Some(r) = self.recorder.as_mut() {
            if bd.shadow > 0 {
                r.record(Event {
                    name: "shadow-stall",
                    track: Track::Shadow,
                    start_cycle,
                    end_cycle: start_cycle + bd.shadow,
                });
            }
            if bd.keybuffer > 0 {
                r.record(Event {
                    name: "keybuffer-miss",
                    track: Track::Keybuffer,
                    start_cycle,
                    end_cycle: start_cycle + bd.keybuffer,
                });
            }
        }
    }

    /// Records an arbitrary span (allocator wrappers, pipeline stages)
    /// when a recorder is attached; a no-op otherwise.
    #[inline]
    pub fn record_span(&mut self, name: &'static str, track: Track, start: u64, end: u64) {
        if let Some(r) = self.recorder.as_mut() {
            r.record(Event {
                name,
                track,
                start_cycle: start,
                end_cycle: end,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(name: &str, start: u64, end: u64) -> Symbol {
        Symbol {
            name: name.into(),
            start_pc: start,
            end_pc: end,
        }
    }

    #[test]
    fn breakdown_categories_sum() {
        let b = Breakdown {
            base: 1,
            check: 2,
            shadow: 3,
            keybuffer: 4,
            runtime: 5,
        };
        assert_eq!(b.total(), 15);
        assert_eq!(b.iter().map(|(_, v)| v).sum::<u64>(), 15);
    }

    #[test]
    fn symbol_resolution_honours_ranges() {
        let t = SymbolTable::new(vec![sym("b", 0x40, 0x80), sym("a", 0x10, 0x40)]);
        assert_eq!(t.resolve(0x10).map(|s| s.name.as_str()), Some("a"));
        assert_eq!(t.resolve(0x3c).map(|s| s.name.as_str()), Some("a"));
        assert_eq!(t.resolve(0x40).map(|s| s.name.as_str()), Some("b"));
        assert!(t.resolve(0x80).is_none());
        assert!(t.resolve(0x0).is_none());
    }

    #[test]
    fn attribution_partitions_cycles() {
        let t = SymbolTable::new(vec![sym("main", 0x100, 0x200)]);
        let mut p = PcProfile::new();
        p.record(
            0x100,
            Breakdown {
                base: 10,
                ..Default::default()
            },
        );
        p.record(
            0x104,
            Breakdown {
                check: 5,
                shadow: 3,
                ..Default::default()
            },
        );
        p.record(
            0x0, // shim: outside every symbol
            Breakdown {
                base: 2,
                ..Default::default()
            },
        );
        let table = attribute(&p, &t);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].name, "main");
        assert_eq!(table.attributed.total(), 18);
        assert_eq!(table.unattributed.total(), 2);
        assert_eq!(table.total(), p.total());
        let f = table.attributed_fraction();
        assert!((f - 0.9).abs() < 1e-12, "{f}");
    }

    #[test]
    fn hot_table_sorts_descending_with_name_ties() {
        let t = SymbolTable::new(vec![
            sym("a", 0x0, 0x10),
            sym("z", 0x10, 0x20),
            sym("m", 0x20, 0x30),
        ]);
        let mut p = PcProfile::new();
        for (pc, cycles) in [(0x0u64, 5u64), (0x10, 9), (0x20, 9)] {
            p.record(
                pc,
                Breakdown {
                    base: cycles,
                    ..Default::default()
                },
            );
        }
        let names: Vec<String> = attribute(&p, &t).rows.into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["m", "z", "a"]);
    }

    #[test]
    fn profiler_emits_stall_spans_only_with_recorder() {
        let bd = Breakdown {
            base: 1,
            shadow: 2,
            keybuffer: 3,
            ..Default::default()
        };
        let mut quiet = Profiler::new();
        quiet.record_step(0x40, bd, 100);
        assert!(quiet.recorder.is_none());
        let mut loud = Profiler::with_recorder(16);
        loud.record_step(0x40, bd, 100);
        let r = loud.recorder.as_ref().unwrap();
        let evs: Vec<_> = r.events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].track, Track::Shadow);
        assert_eq!(evs[0].end_cycle, 102);
        assert_eq!(evs[1].track, Track::Keybuffer);
        assert_eq!(evs[1].end_cycle, 103);
        assert_eq!(quiet.profile, loud.profile);
    }
}
