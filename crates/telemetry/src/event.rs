//! Spans and the bounded ring-buffer recorder.
//!
//! Events are timestamped in simulated cycles, not wall time: the
//! simulator is deterministic, so two runs of the same program produce
//! the same event stream. The recorder is a fixed-capacity ring — when
//! full it drops the *oldest* events and counts them, so a long run
//! keeps the tail of its history and never grows without bound.

use std::collections::VecDeque;

/// The virtual "thread" an event belongs to in trace exports — one per
/// pipeline resource the paper's overhead story names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The core pipeline (retire stream).
    Pipeline,
    /// Shadow-memory metadata traffic (`sbd*`/`lbd*` stalls).
    Shadow,
    /// The keybuffer / `tchk` key-load path.
    Keybuffer,
    /// Proxy-kernel runtime work (allocator service cycles).
    Runtime,
    /// Allocator wrapper calls (`malloc`/`free`/lock syscalls).
    Allocator,
}

impl Track {
    /// Every track, in export (tid) order.
    pub const ALL: [Track; 5] = [
        Track::Pipeline,
        Track::Shadow,
        Track::Keybuffer,
        Track::Runtime,
        Track::Allocator,
    ];

    /// Stable display name.
    pub const fn name(self) -> &'static str {
        match self {
            Track::Pipeline => "pipeline",
            Track::Shadow => "shadow",
            Track::Keybuffer => "keybuffer",
            Track::Runtime => "runtime",
            Track::Allocator => "allocator",
        }
    }

    /// Thread id used in Chrome trace exports (1-based; 0 is unused so
    /// tids line up with human-readable track numbering).
    pub const fn tid(self) -> u64 {
        match self {
            Track::Pipeline => 1,
            Track::Shadow => 2,
            Track::Keybuffer => 3,
            Track::Runtime => 4,
            Track::Allocator => 5,
        }
    }
}

/// One recorded span (or instant, when `end_cycle == start_cycle`) on a
/// track, timestamped in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened (e.g. `"malloc"`, `"shadow-stall"`).
    pub name: &'static str,
    /// Which resource it happened on.
    pub track: Track,
    /// Cycle the span began.
    pub start_cycle: u64,
    /// Cycle the span ended (equal to `start_cycle` for instants).
    pub end_cycle: u64,
}

impl Event {
    /// Span length in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }
}

/// Default ring capacity: enough to hold the full event stream of every
/// Test-scale workload while bounding memory on Bench-scale runs.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A bounded ring-buffer event recorder. Dropping the recorder (or
/// never attaching one) is the disabled path: nothing in this module is
/// consulted by the timing model, so `CycleStats` are unaffected either
/// way.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    cap: usize,
    buf: VecDeque<Event>,
    dropped: u64,
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl RingRecorder {
    /// Creates a recorder holding at most `capacity` events (a zero
    /// capacity records nothing and counts every event as dropped).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            cap: capacity,
            buf: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, e: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(e);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// The retained events as an owned vector, oldest first.
    pub fn to_vec(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    /// Events evicted (or refused, at zero capacity) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64) -> Event {
        Event {
            name: "t",
            track: Track::Pipeline,
            start_cycle: start,
            end_cycle: start + 1,
        }
    }

    #[test]
    fn ring_keeps_the_tail() {
        let mut r = RingRecorder::new(2);
        r.record(ev(0));
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        let starts: Vec<u64> = r.events().map(|e| e.start_cycle).collect();
        assert_eq!(starts, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = RingRecorder::new(0);
        r.record(ev(0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn duration_is_saturating() {
        let e = Event {
            name: "x",
            track: Track::Allocator,
            start_cycle: 5,
            end_cycle: 5,
        };
        assert_eq!(e.duration(), 0);
    }
}
