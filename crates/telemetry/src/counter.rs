//! The counter registry: named monotonic `u64` counters behind
//! index-stable handles.
//!
//! Registration hands out a [`CounterId`] whose increment path is a
//! plain vector index — cheap enough for the simulator's retire loop,
//! which is exactly where the pipeline's event counters live.

/// Handle to a registered counter. Indexing is O(1); the id stays valid
/// for the lifetime of the registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// A flat registry of named monotonic counters.
///
/// # Example
///
/// ```
/// use hwst_telemetry::Counters;
///
/// let mut c = Counters::new();
/// let hits = c.register("keybuffer_hits");
/// c.incr(hits);
/// c.add(hits, 2);
/// assert_eq!(c.get(hits), 3);
/// assert_eq!(c.get_named("keybuffer_hits"), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    names: Vec<&'static str>,
    values: Vec<u64>,
}

impl Counters {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Registers `name` and returns its handle. Registering an existing
    /// name returns the original handle (idempotent).
    pub fn register(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.names.iter().position(|n| *n == name) {
            return CounterId(i);
        }
        self.names.push(name);
        self.values.push(0);
        CounterId(self.names.len() - 1)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.values[id.0] += delta;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.values[id.0] += 1;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.0]
    }

    /// Current value of a counter looked up by name.
    pub fn get_named(&self, name: &str) -> Option<u64> {
        self.names
            .iter()
            .position(|n| *n == name)
            .map(|i| self.values[i])
    }

    /// `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.names.iter().copied().zip(self.values.iter().copied())
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Zeroes every counter, keeping registrations (and ids) intact.
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let mut c = Counters::new();
        let a = c.register("x");
        let b = c.register("x");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
        c.incr(a);
        assert_eq!(c.get(b), 1);
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut c = Counters::new();
        let a = c.register("a");
        let _ = c.register("b");
        c.add(a, 7);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v, vec![("a", 7), ("b", 0)]);
    }

    #[test]
    fn reset_keeps_ids_valid() {
        let mut c = Counters::new();
        let a = c.register("a");
        c.add(a, 9);
        c.reset();
        assert_eq!(c.get(a), 0);
        c.incr(a);
        assert_eq!(c.get_named("a"), Some(1));
        assert_eq!(c.get_named("missing"), None);
    }
}
