//! # hwst-telemetry
//!
//! The observability subsystem of the HWST128 reproduction: where do
//! the cycles of a protected run actually go?
//!
//! The paper explains its overhead numbers structurally — metadata
//! instructions, shadow-memory stalls, keybuffer misses — but a single
//! aggregate `CycleStats` per run cannot attribute any of that to code.
//! This crate supplies the missing layer, std-only and dependency-free
//! (the JSON writer is borrowed from `hwst-harness`):
//!
//! * [`Counters`] — a flat counter registry. The pipeline routes its
//!   event-style counters (keybuffer hits/misses, `hwst_instrs`,
//!   `checked_mem`) through it so cycle accounting and profile tables
//!   share one source of truth.
//! * [`RingRecorder`] — a bounded ring-buffer span recorder. Recording
//!   is strictly additive: it never touches the timing model, so a run
//!   with the recorder detached reproduces today's `CycleStats`
//!   byte-identically.
//! * [`PcProfile`] / [`Breakdown`] — per-PC cycle attribution. The
//!   simulator folds per-step `CycleStats` deltas into a PC-indexed
//!   profile, split into base/check/shadow/keybuffer/runtime
//!   categories that sum exactly to `total_cycles`.
//! * [`SymbolTable`] / [`attribute`] — maps PCs onto the per-function
//!   symbol ranges published by `hwst_compiler::lower` and folds the
//!   profile into a hot-function table ([`FnTable`]).
//! * [`chrome_trace`] / [`collapsed_stacks`] — exporters: Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`) and
//!   collapsed-stack text for flamegraph tooling.
//!
//! ## Soundness of attribution
//!
//! Attribution is *exact by construction*: every category value is a
//! difference of monotone `CycleStats` fields captured around a single
//! [`step`], and the category split is computed so the five categories
//! sum to the step's total-cycle delta. Nothing is sampled and nothing
//! is estimated; the only unattributed cycles are those spent at PCs
//! outside any function range (the startup shim).
//!
//! [`step`]: https://docs.rs/hwst-sim

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod event;
mod export;
mod profile;

pub use counter::{CounterId, Counters};
pub use event::{Event, RingRecorder, Track};
pub use export::{chrome_trace, collapsed_stacks};
pub use profile::{attribute, Breakdown, FnRow, FnTable, PcProfile, Profiler, Symbol, SymbolTable};
