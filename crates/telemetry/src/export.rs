//! Exporters: Chrome trace-event JSON and collapsed-stack text.
//!
//! Both are plain serialisations of already-deterministic data, written
//! with the dependency-free `hwst_harness::Json` writer — no format
//! library enters the workspace.

use crate::{Event, FnTable, Track};
use hwst_harness::Json;

/// Serialises events as a Chrome trace-event document (the JSON object
/// format: `{"traceEvents": [...]}`), loadable in Perfetto and
/// `chrome://tracing`.
///
/// Timestamps are simulated cycles carried in the `ts`/`dur` fields
/// (nominally microseconds — the viewer's timeline unit simply reads as
/// cycles). Every [`Track`] appears as one thread of pid 1, named via
/// `thread_name` metadata events; spans use phase `"X"` (complete) and
/// zero-length spans export as instants (phase `"i"`).
pub fn chrome_trace(events: &[Event]) -> Json {
    let mut out: Vec<Json> = Track::ALL
        .iter()
        .map(|t| {
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 1u64)
                .set("tid", t.tid())
                .set("args", Json::obj().set("name", t.name()))
        })
        .collect();
    for e in events {
        let common = Json::obj()
            .set("name", e.name)
            .set("cat", e.track.name())
            .set("pid", 1u64)
            .set("tid", e.track.tid())
            .set("ts", e.start_cycle);
        out.push(if e.duration() == 0 {
            common.set("ph", "i").set("s", "t")
        } else {
            common.set("ph", "X").set("dur", e.duration())
        });
    }
    Json::obj()
        .set("traceEvents", Json::Arr(out))
        .set("displayTimeUnit", "ns")
}

/// Serialises a hot-function table as collapsed-stack text
/// (`frame;frame count` lines), the input format of flamegraph tooling.
/// Each function contributes one stack per non-zero category, with the
/// category as the leaf frame; unattributed cycles fold under a
/// `<startup>` root.
pub fn collapsed_stacks(table: &FnTable) -> String {
    let mut out = String::new();
    for row in &table.rows {
        for (cat, cycles) in row.cycles.iter() {
            if cycles > 0 {
                out.push_str(&format!("{};{cat} {cycles}\n", row.name));
            }
        }
    }
    for (cat, cycles) in table.unattributed.iter() {
        if cycles > 0 {
            out.push_str(&format!("<startup>;{cat} {cycles}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Breakdown, FnRow};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "malloc",
                track: Track::Allocator,
                start_cycle: 10,
                end_cycle: 40,
            },
            Event {
                name: "shadow-stall",
                track: Track::Shadow,
                start_cycle: 50,
                end_cycle: 50,
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_through_json() {
        let doc = chrome_trace(&sample_events());
        let parsed = Json::parse(&doc.to_string()).expect("chrome trace parses");
        let evs = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        // 5 thread_name metadata events + 2 payload events.
        assert_eq!(evs.len(), 7);
        let span = &evs[5];
        assert_eq!(span.get("name").and_then(Json::as_str), Some("malloc"));
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_f64), Some(10.0));
        assert_eq!(span.get("dur").and_then(Json::as_f64), Some(30.0));
        let instant = &evs[6];
        assert_eq!(instant.get("ph").and_then(Json::as_str), Some("i"));
    }

    #[test]
    fn collapsed_stacks_skip_zero_categories() {
        let table = FnTable {
            rows: vec![FnRow {
                name: "main".into(),
                cycles: Breakdown {
                    base: 7,
                    shadow: 2,
                    ..Default::default()
                },
            }],
            attributed: Breakdown {
                base: 7,
                shadow: 2,
                ..Default::default()
            },
            unattributed: Breakdown {
                base: 3,
                ..Default::default()
            },
        };
        let text = collapsed_stacks(&table);
        assert_eq!(text, "main;base 7\nmain;shadow 2\n<startup>;base 3\n");
    }
}
