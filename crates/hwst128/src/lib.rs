//! # hwst128
//!
//! The complete public API of the **HWST128** reproduction — a
//! hardware/software co-designed memory-safety accelerator for RISC-V
//! with metadata compression (Dow, Li, Parameswaran — DAC 2022),
//! rebuilt as a pure-Rust simulation stack.
//!
//! This facade re-exports every subsystem:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`isa`] | `hwst-isa` | RV64IM + HWST128 instruction set |
//! | [`mem`] | `hwst-mem` | memory, shadow memory, allocators |
//! | [`metadata`] | `hwst-metadata` | metadata model & compression (the core contribution) |
//! | [`pipeline`] | `hwst-pipeline` | 5-stage core timing, SRF, keybuffer |
//! | [`sim`] | `hwst-sim` | instruction-set simulator + traps |
//! | [`compiler`] | `hwst-compiler` | IR, pointer analysis, instrumentation, back-end |
//! | [`baselines`] | `hwst-baselines` | BOGO / WatchdogLite comparator models |
//! | [`workloads`] | `hwst-workloads` | MiBench/Olden/SPEC-like kernels |
//! | [`juliet`] | `hwst-juliet` | security-coverage suite |
//! | [`hwcost`] | `hwst-hwcost` | FPGA cost model |
//! | [`telemetry`] | `hwst-telemetry` | observability: cycle attribution, trace export |
//! | [`exec`] | `hwst-exec` | decoded-block fast execution tier (bit-identical to `sim`) |
//!
//! ## Quickstart
//!
//! ```
//! use hwst128::prelude::*;
//!
//! // Build a tiny program: allocate, write out of bounds.
//! let mut mb = ModuleBuilder::new();
//! let mut f = mb.func("main");
//! let p = f.malloc_bytes(32);
//! let v = f.konst(7);
//! f.store(v, p, 32, Width::U64); // one past the end
//! f.ret(None);
//! f.finish();
//! let module = mb.finish();
//!
//! // Compile with full HWST128 protection and run.
//! let prog = compile(&module, Scheme::Hwst128Tchk).unwrap();
//! let result = Machine::new(prog, SafetyConfig::default()).run(100_000);
//! assert!(matches!(result, Err(Trap::SpatialViolation { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod debugger;

pub use hwst_baselines as baselines;
pub use hwst_compiler as compiler;
pub use hwst_exec as exec;
pub use hwst_hwcost as hwcost;
pub use hwst_isa as isa;
pub use hwst_juliet as juliet;
pub use hwst_mem as mem;
pub use hwst_metadata as metadata;
pub use hwst_pipeline as pipeline;
pub use hwst_sim as sim;
pub use hwst_telemetry as telemetry;
pub use hwst_workloads as workloads;

/// The names most programs need, in one import.
pub mod prelude {
    pub use hwst_compiler::ir::{BinOp, Width};
    pub use hwst_compiler::{compile, FuncBuilder, ModuleBuilder, Scheme};
    pub use hwst_exec::{BlockCache, Engine};
    pub use hwst_isa::{Instr, Program, Reg};
    pub use hwst_metadata::{CompressionConfig, Metadata, ShadowCodec};
    pub use hwst_sim::{ExitStatus, Machine, SafetyConfig, Trap};
    pub use hwst_workloads::{Scale, Suite, Workload};
}

/// Returns the [`sim::SafetyConfig`] that pairs with an instrumentation
/// [`compiler::Scheme`] in the paper's experiments: software schemes run
/// on the baseline core, hardware schemes arm the corresponding checks.
pub fn config_for(scheme: compiler::Scheme) -> sim::SafetyConfig {
    use compiler::Scheme;
    match scheme {
        Scheme::None | Scheme::Sbcets => sim::SafetyConfig::baseline(),
        Scheme::Hwst128 => sim::SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => sim::SafetyConfig::default(),
        // SHORE: spatial hardware armed, no temporal machinery.
        Scheme::Shore => sim::SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..sim::SafetyConfig::default()
        },
        // Zoo designs (DESIGN.md §4l). RV-CURE validates capabilities
        // inline with no lock cache, so every `tchk` pays the lock-word
        // access — the same timing point as HWST128-without-keybuffer.
        Scheme::RvCure => sim::SafetyConfig::hwst128_no_tchk(),
        // HeapSafe's heap tag check is a cached fast path: full hardware
        // with the keybuffer armed (fewer binds reach it anyway).
        Scheme::HeapSafe => sim::SafetyConfig::default(),
        // L4 Pointer and CryptSan are software-only: baseline core.
        Scheme::L4Pointer | Scheme::CryptSan => sim::SafetyConfig::baseline(),
    }
}

/// Compiles `module` for `scheme` and runs it with the matching safety
/// configuration — the one-call experiment step.
///
/// # Errors
///
/// Returns the compile error or the trap that stopped execution, both as
/// boxed errors.
pub fn run_scheme(
    module: &compiler::ir::Module,
    scheme: compiler::Scheme,
    fuel: u64,
) -> Result<sim::ExitStatus, Box<dyn std::error::Error + Send + Sync>> {
    let prog = compiler::compile(module, scheme)?;
    let exit = sim::Machine::new(prog, config_for(scheme)).run(fuel)?;
    Ok(exit)
}

/// [`run_scheme`] under a caller-chosen [`exec::Engine`]. Both engines
/// return bit-identical results; `Engine::Fast` is the sweep default,
/// `Engine::Cycle` the per-step reference interpreter.
///
/// # Errors
///
/// Returns the compile error or the trap that stopped execution, both as
/// boxed errors.
pub fn run_scheme_with(
    module: &compiler::ir::Module,
    scheme: compiler::Scheme,
    fuel: u64,
    engine: exec::Engine,
) -> Result<sim::ExitStatus, Box<dyn std::error::Error + Send + Sync>> {
    let prog = compiler::compile(module, scheme)?;
    let mut cache = exec::BlockCache::new();
    let mut m = sim::Machine::new(prog, config_for(scheme));
    let exit = engine.run(&mut m, fuel, &mut cache)?;
    Ok(exit)
}

/// [`run_scheme`] at an explicit back-end [`compiler::OptLevel`] —
/// `O1` images pass through the same translation-validation obligations
/// as `O0`, so this is still the one-call experiment step.
///
/// # Errors
///
/// Returns the compile error or the trap that stopped execution, both as
/// boxed errors.
pub fn run_scheme_opt(
    module: &compiler::ir::Module,
    scheme: compiler::Scheme,
    fuel: u64,
    opt: compiler::OptLevel,
) -> Result<sim::ExitStatus, Box<dyn std::error::Error + Send + Sync>> {
    let opts = compiler::CompileOptions::new(scheme).with_opt(opt);
    let prog = compiler::compile_with_options(module, opts)?.program;
    let exit = sim::Machine::new(prog, config_for(scheme)).run(fuel)?;
    Ok(exit)
}

/// [`run_scheme_opt`] under a caller-chosen [`exec::Engine`].
///
/// # Errors
///
/// Returns the compile error or the trap that stopped execution, both as
/// boxed errors.
pub fn run_scheme_opt_with(
    module: &compiler::ir::Module,
    scheme: compiler::Scheme,
    fuel: u64,
    opt: compiler::OptLevel,
    engine: exec::Engine,
) -> Result<sim::ExitStatus, Box<dyn std::error::Error + Send + Sync>> {
    let opts = compiler::CompileOptions::new(scheme).with_opt(opt);
    let prog = compiler::compile_with_options(module, opts)?.program;
    let mut cache = exec::BlockCache::new();
    let mut m = sim::Machine::new(prog, config_for(scheme));
    let exit = engine.run(&mut m, fuel, &mut cache)?;
    Ok(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use compiler::Scheme;

    #[test]
    fn config_pairing() {
        assert!(!config_for(Scheme::None).spatial);
        assert!(!config_for(Scheme::Sbcets).spatial);
        assert!(config_for(Scheme::Hwst128).spatial);
        assert!(!config_for(Scheme::Hwst128).keybuffer);
        assert!(config_for(Scheme::Hwst128Tchk).keybuffer);
    }

    #[test]
    fn run_scheme_round_trip() {
        let mut mb = compiler::ModuleBuilder::new();
        let mut f = mb.func("main");
        let v = f.konst(9);
        f.ret(Some(v));
        f.finish();
        let m = mb.finish();
        for s in Scheme::ALL {
            assert_eq!(run_scheme(&m, s, 100_000).unwrap().code, 9);
        }
    }

    #[test]
    fn engines_agree_through_the_facade() {
        let mut mb = compiler::ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(24);
        let v = f.konst(5);
        f.store(v, p, 0, compiler::ir::Width::U64);
        f.free(p);
        f.ret(Some(v));
        f.finish();
        let m = mb.finish();
        for s in Scheme::ALL {
            let cycle = run_scheme_with(&m, s, 100_000, exec::Engine::Cycle).unwrap();
            let fast = run_scheme_with(&m, s, 100_000, exec::Engine::Fast).unwrap();
            assert_eq!(cycle, fast, "scheme {s:?}");
            assert_eq!(run_scheme(&m, s, 100_000).unwrap(), cycle);
        }
    }
}
