//! `hwst128-cli` — drive the HWST128 stack from the command line.
//!
//! ```text
//! hwst128-cli asm <file.s> [--run] [--trace N]    assemble (and run) a file
//! hwst128-cli run <workload> [--scheme S] [--trace N]
//! hwst128-cli disasm <workload> [--scheme S]      dump generated code
//! hwst128-cli list                                list workloads
//! hwst128-cli coverage [--stride N]               Juliet coverage (measured)
//! hwst128-cli hwcost [entries]                    §5.3 cost table
//! ```
//!
//! Schemes: `none`, `sbcets`, `hwst128`, `tchk` (default `tchk`).

use hwst128::compiler::{compile, Scheme};
use hwst128::isa::asm::assemble;
use hwst128::prelude::*;
use hwst128::{config_for, juliet, workloads};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error + Send + Sync>>;

fn run(args: &[String]) -> CliResult {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "asm" => cmd_asm(&args[1..]),
        "debug" => cmd_debug(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "disasm" => cmd_disasm(&args[1..]),
        "ir" => cmd_ir(&args[1..]),
        "list" => cmd_list(),
        "coverage" => cmd_coverage(&args[1..]),
        "hwcost" => cmd_hwcost(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `help`").into()),
    }
}

const HELP: &str = "\
hwst128-cli — the HWST128 memory-safety accelerator, on the command line

  asm <file.s> [--run] [--trace N]   assemble (and run) an assembly file
  debug <file.s | workload> [--scheme S]
                                     interactive debugger (b/c/s/regs/srf/x)
  run <workload> [--scheme S] [--trace N]
                                     run a benchmark kernel and print stats
  disasm <workload> [--scheme S]     dump the generated machine code
  ir <workload> [--scheme S]         dump the (instrumented) IR listing
  list                               list the available workloads
  coverage [--stride N]              measured Juliet coverage (stride 1 = all)
  hwcost [entries]                   the \u{a7}5.3 hardware-cost table

schemes: none | sbcets | hwst128 | tchk (default tchk)
";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_scheme(args: &[String]) -> Result<Scheme, String> {
    match flag_value(args, "--scheme").unwrap_or("tchk") {
        "none" | "baseline" => Ok(Scheme::None),
        "sbcets" => Ok(Scheme::Sbcets),
        "hwst128" => Ok(Scheme::Hwst128),
        "tchk" | "hwst128_tchk" => Ok(Scheme::Hwst128Tchk),
        other => Err(format!("unknown scheme {other:?}")),
    }
}

fn run_machine(mut m: Machine, trace: usize) -> CliResult {
    // Traced prefix (structured: shows the register effects too).
    if trace > 0 {
        let (events, trap) = m.trace(trace);
        for e in &events {
            println!("{e}");
        }
        if let Some(t) = trap {
            println!("TRAP: {t}");
            println!("{}", m.stats());
            return Ok(());
        }
    }
    match m.run(2_000_000_000) {
        Ok(exit) => {
            if !exit.output.is_empty() {
                print!("{}", exit.output_string());
            }
            println!("exit code : {}", exit.code);
            println!("{}", exit.stats);
            Ok(())
        }
        Err(t) => {
            println!("TRAP: {t}");
            println!("{}", m.stats());
            Ok(())
        }
    }
}

fn cmd_asm(args: &[String]) -> CliResult {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: asm <file.s> [--run]")?;
    let src = std::fs::read_to_string(path)?;
    let base = hwst128::mem::MemoryLayout::default().text_base;
    let prog = assemble(base, &src)?;
    if args.iter().any(|a| a == "--run") {
        let trace = flag_value(args, "--trace")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        run_machine(Machine::new(prog, SafetyConfig::default()), trace)
    } else {
        print!("{prog}");
        Ok(())
    }
}

fn lookup_workload(name: Option<&String>) -> Result<Workload, String> {
    let name = name.ok_or("missing workload name; see `list`")?;
    Workload::by_name(name).ok_or_else(|| format!("unknown workload {name:?}; see `list`"))
}

fn cmd_run(args: &[String]) -> CliResult {
    let wl = lookup_workload(args.first())?;
    let scheme = parse_scheme(args)?;
    let trace = flag_value(args, "--trace")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    println!("{} [{}] under {}", wl.name, wl.suite, scheme.label());
    let prog = compile(&wl.module(Scale::Test), scheme)?;
    println!("code size : {} instructions", prog.len());
    run_machine(Machine::new(prog, config_for(scheme)), trace)
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let wl = lookup_workload(args.first())?;
    let scheme = parse_scheme(args)?;
    let prog = compile(&wl.module(Scale::Test), scheme)?;
    print!("{prog}");
    Ok(())
}

fn cmd_debug(args: &[String]) -> CliResult {
    use hwst128::debugger::{Debugger, Outcome};
    use std::io::{BufRead, Write};
    let target = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: debug <file.s | workload>")?;
    let prog = if std::path::Path::new(target).exists() {
        let src = std::fs::read_to_string(target)?;
        assemble(hwst128::mem::MemoryLayout::default().text_base, &src)?
    } else {
        let wl = Workload::by_name(target)
            .ok_or_else(|| format!("no such file or workload: {target}"))?;
        let scheme = parse_scheme(args)?;
        compile(&wl.module(Scale::Test), scheme)?
    };
    let scheme = parse_scheme(args)?;
    let mut dbg = Debugger::new(Machine::new(prog, config_for(scheme)));
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        write!(out, "(hwst) ")?;
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        match dbg.execute(line.trim()) {
            Outcome::Quit => break,
            Outcome::Text(t) => {
                if !t.is_empty() {
                    writeln!(out, "{t}")?;
                }
            }
            Outcome::Exited(code) => {
                writeln!(out, "program exited with {code}")?;
            }
            Outcome::Trapped(t) => writeln!(out, "TRAP: {t}")?,
        }
    }
    Ok(())
}

fn cmd_ir(args: &[String]) -> CliResult {
    use hwst128::compiler::{analysis, instrument};
    let wl = lookup_workload(args.first())?;
    let scheme = parse_scheme(args)?;
    let module = wl.module(Scale::Test);
    let info = analysis::analyze(&module)?;
    print!("{}", instrument::instrument(&module, &info, scheme));
    Ok(())
}

fn cmd_list() -> CliResult {
    for w in workloads::all() {
        println!("{:<12} [{:<7}] {}", w.name, w.suite.to_string(), w.profile);
    }
    Ok(())
}

fn cmd_coverage(args: &[String]) -> CliResult {
    let stride = flag_value(args, "--stride")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    println!("{}", juliet::measure_coverage(stride));
    Ok(())
}

fn cmd_hwcost(args: &[String]) -> CliResult {
    let entries = args.first().and_then(|v| v.parse().ok()).unwrap_or(1);
    println!("{}", hwst128::hwcost::hwst128_report(entries));
    Ok(())
}
