//! A line-oriented debugger for simulated programs.
//!
//! Drives a [`Machine`] with gdb-flavoured commands; used by
//! `hwst128-cli debug` and scriptable in tests (commands in, transcript
//! out — no terminal required).
//!
//! ```text
//! (hwst) b 0x10008        set a breakpoint
//! (hwst) c                continue to breakpoint/exit/trap
//! (hwst) s [n]            step n instructions (traced)
//! (hwst) regs             dump non-zero GPRs
//! (hwst) srf [reg]        dump shadow-register metadata
//! (hwst) x addr [n]       examine n 64-bit words of memory
//! (hwst) stats            cycle statistics so far
//! (hwst) q                quit
//! ```

use crate::sim::{Machine, Trap};
use hwst_isa::Reg;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// The debugger: wraps a machine plus breakpoint state.
#[derive(Debug)]
pub struct Debugger {
    machine: Machine,
    breakpoints: BTreeSet<u64>,
    /// Instruction budget per `continue` (guards runaway programs).
    pub continue_fuel: u64,
}

/// What a debugger command produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Output text to show the user.
    Text(String),
    /// The program exited with this code.
    Exited(u64),
    /// Execution trapped.
    Trapped(String),
    /// The `quit` command.
    Quit,
}

impl Debugger {
    /// Wraps a machine.
    pub fn new(machine: Machine) -> Self {
        Debugger {
            machine,
            breakpoints: BTreeSet::new(),
            continue_fuel: 50_000_000,
        }
    }

    /// The wrapped machine (for assertions in tests).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Executes one command line and returns its outcome.
    pub fn execute(&mut self, line: &str) -> Outcome {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        match cmd {
            "" => Outcome::Text(String::new()),
            "q" | "quit" | "exit" => Outcome::Quit,
            "b" | "break" => self.cmd_break(&args),
            "d" | "delete" => self.cmd_delete(&args),
            "c" | "continue" => self.cmd_continue(),
            "s" | "step" => self.cmd_step(&args),
            "regs" => Outcome::Text(self.fmt_regs()),
            "srf" => self.cmd_srf(&args),
            "x" | "examine" => self.cmd_examine(&args),
            "stats" => Outcome::Text(self.machine.stats().to_string()),
            "pc" => Outcome::Text(format!("{:#010x}", self.machine.pc())),
            "help" | "h" | "?" => Outcome::Text(HELP.to_string()),
            other => Outcome::Text(format!("unknown command {other:?}; try help")),
        }
    }

    fn cmd_break(&mut self, args: &[&str]) -> Outcome {
        match args.first().and_then(|a| parse_u64(a)) {
            Some(addr) => {
                self.breakpoints.insert(addr);
                Outcome::Text(format!("breakpoint at {addr:#010x}"))
            }
            None => match self.breakpoints.is_empty() {
                true => Outcome::Text("no breakpoints".into()),
                false => Outcome::Text(
                    self.breakpoints
                        .iter()
                        .map(|b| format!("{b:#010x}"))
                        .collect::<Vec<_>>()
                        .join("\n"),
                ),
            },
        }
    }

    fn cmd_delete(&mut self, args: &[&str]) -> Outcome {
        match args.first().and_then(|a| parse_u64(a)) {
            Some(addr) => {
                let removed = self.breakpoints.remove(&addr);
                Outcome::Text(if removed {
                    format!("deleted {addr:#010x}")
                } else {
                    format!("no breakpoint at {addr:#010x}")
                })
            }
            None => {
                self.breakpoints.clear();
                Outcome::Text("all breakpoints deleted".into())
            }
        }
    }

    fn cmd_continue(&mut self) -> Outcome {
        for _ in 0..self.continue_fuel {
            if let Some(code) = self.machine.exit_code() {
                return Outcome::Exited(code);
            }
            if let Err(t) = self.machine.step() {
                return trap_outcome(t);
            }
            if let Some(code) = self.machine.exit_code() {
                return Outcome::Exited(code);
            }
            if self.breakpoints.contains(&self.machine.pc()) {
                return Outcome::Text(format!("breakpoint hit at {:#010x}", self.machine.pc()));
            }
        }
        Outcome::Text("continue fuel exhausted".into())
    }

    fn cmd_step(&mut self, args: &[&str]) -> Outcome {
        let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
        let mut out = String::new();
        for _ in 0..n {
            match self.machine.step_traced() {
                Ok(Some(e)) => {
                    let _ = writeln!(out, "{e}");
                }
                Ok(None) => {
                    if let Some(code) = self.machine.exit_code() {
                        return Outcome::Exited(code);
                    }
                    break;
                }
                Err(t) => return trap_outcome(t),
            }
            if let Some(code) = self.machine.exit_code() {
                let _ = write!(out, "exited with {code}");
                return Outcome::Text(out);
            }
        }
        Outcome::Text(out.trim_end().to_string())
    }

    fn fmt_regs(&self) -> String {
        let mut out = String::new();
        for r in Reg::ALL {
            let v = self.machine.reg(r);
            if v != 0 {
                let _ = writeln!(out, "{:<5} {v:#018x}", r.name());
            }
        }
        if out.is_empty() {
            out.push_str("(all registers zero)");
        }
        out.trim_end().to_string()
    }

    fn cmd_srf(&self, args: &[&str]) -> Outcome {
        let mut out = String::new();
        let want: Option<Reg> = args
            .first()
            .and_then(|a| Reg::ALL.into_iter().find(|r| r.name() == *a));
        for r in Reg::ALL {
            if want.is_some_and(|w| w != r) {
                continue;
            }
            if let Some(c) = self.machine.srf().read(r) {
                let _ = writeln!(
                    out,
                    "srf[{:<4}] lower={:#018x} upper={:#018x}",
                    r.name(),
                    c.lower,
                    c.upper
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no valid shadow entries)");
        }
        Outcome::Text(out.trim_end().to_string())
    }

    fn cmd_examine(&self, args: &[&str]) -> Outcome {
        let Some(addr) = args.first().and_then(|a| parse_u64(a)) else {
            return Outcome::Text("usage: x <addr> [words]".into());
        };
        let n: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(4);
        let mut out = String::new();
        for i in 0..n.min(64) {
            let a = addr + i * 8;
            let _ = writeln!(out, "{a:#010x}: {:#018x}", self.machine.mem().read_u64(a));
        }
        Outcome::Text(out.trim_end().to_string())
    }
}

fn trap_outcome(t: Trap) -> Outcome {
    Outcome::Trapped(t.to_string())
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x") {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

const HELP: &str = "\
b [addr]      set breakpoint / list breakpoints
d [addr]      delete breakpoint / delete all
c             continue to breakpoint, exit or trap
s [n]         step n instructions (traced)
regs          dump non-zero GPRs
srf [reg]     dump valid shadow-register entries
x addr [n]    examine n 64-bit memory words
stats         cycle statistics so far
pc            current program counter
q             quit";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SafetyConfig;
    use hwst_isa::asm::assemble;

    fn debugger(src: &str) -> Debugger {
        let prog = assemble(0x1_0000, src).expect("assembles");
        Debugger::new(Machine::new(prog, SafetyConfig::default()))
    }

    const LOOP: &str = "
        li   a0, 3
    top:
        addi a0, a0, -1
        bnez a0, top
        li   a7, 93
        ecall
    ";

    #[test]
    fn breakpoints_stop_continue() {
        let mut d = debugger(LOOP);
        d.execute("b 0x10004"); // the addi
        match d.execute("c") {
            Outcome::Text(t) => assert!(t.contains("breakpoint hit")),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.machine().pc(), 0x10004);
        // Delete and run to completion.
        d.execute("d");
        assert_eq!(d.execute("c"), Outcome::Exited(0));
    }

    #[test]
    fn step_traces_and_regs_report() {
        let mut d = debugger(LOOP);
        match d.execute("s 1") {
            Outcome::Text(t) => assert!(t.contains("addi a0, zero, 3")),
            other => panic!("{other:?}"),
        }
        match d.execute("regs") {
            Outcome::Text(t) => assert!(t.contains("a0")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn traps_are_reported() {
        let mut d = debugger("ebreak");
        match d.execute("c") {
            Outcome::Trapped(t) => assert!(t.contains("breakpoint")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn srf_shows_bound_metadata() {
        let mut d = debugger(
            "
            li a0, 64
            li a7, 1000
            ecall
            addi t0, a0, 64
            bndrs a0, a0, t0
            li a7, 93
            ecall
        ",
        );
        d.execute("s 5");
        match d.execute("srf a0") {
            Outcome::Text(t) => {
                assert!(t.contains("srf[a0"), "got: {t}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn examine_reads_memory() {
        let mut d = debugger(
            "
            li t0, 0x2000
            li t1, 0x1234
            sd t1, 0(t0)
            li a7, 93
            ecall
        ",
        );
        d.execute("c");
        match d.execute("x 0x2000 1") {
            Outcome::Text(t) => assert!(t.contains("1234")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_command_is_helpful() {
        let mut d = debugger(LOOP);
        match d.execute("frobnicate") {
            Outcome::Text(t) => assert!(t.contains("help")),
            other => panic!("{other:?}"),
        }
        assert_eq!(d.execute("q"), Outcome::Quit);
    }
}
