//! # hwst-exec
//!
//! The decoded-block fast execution tier over [`hwst_sim`]: each basic
//! block is decoded **once** into a cache of pre-resolved operations
//! (immediates sign-extended, branch/jump targets computed, retire
//! shapes pre-classified), hot HWST128 pairs are fused into
//! superinstructions (`sbdl`+`sbdu`, `lbdls`+`lbdus`,
//! `lbdls`+checked-load), and subsequent executions dispatch straight
//! over the cached block — no per-step fetch, decode match or source-
//! register allocation.
//!
//! ## The bit-identity contract
//!
//! The fast tier is an *engine*, not a different model: for any program,
//! fuel and [`SafetyConfig`](hwst_sim::SafetyConfig),
//! [`run_fast`] returns exactly what [`Machine::run`] returns — the same
//! [`ExitStatus`] (code, output **and**
//! [`CycleStats`](hwst_pipeline::CycleStats)) or the same
//! [`Trap`] — and leaves the machine in the same architectural state
//! (registers, PC, memory, SRF, pipeline counters). Profiled execution
//! ([`run_profiled_fast`]) attributes the same per-PC cycle breakdown as
//! [`Machine::run_profiled`]. This holds because the tier *shares* the
//! cycle model rather than approximating it:
//!
//! * every component of every op (fused or not) retires through
//!   [`hwst_pipeline::Pipeline::retire_decoded`], which charges exactly
//!   what `retire` charges;
//! * spatial checks go through [`Machine::spatial_check`] — the same SCU
//!   predicate the cycle engine uses;
//! * telemetry splits go through [`hwst_sim::classify`];
//! * instructions with environment interactions (`ecall`, `csr*`,
//!   `ebreak`) fall back to [`Machine::step`] itself.
//!
//! Fusion never changes semantics: a fused pair still executes and
//! retires as two components, each consuming one fuel unit — the fusion
//! only collapses dispatch and shares address computation that is
//! provably identical between the halves.
//!
//! ## Invalidation
//!
//! A [`BlockCache`] is valid for one program image. It stamps itself
//! with `(program epoch, base, len)` and flushes when the stamp no
//! longer matches — [`Machine::reload_image`] bumps the epoch, and that
//! is the **only** invalidation event, because the instruction image is
//! immutable between reloads.
//!
//! ## Example
//!
//! ```
//! use hwst_exec::{run_fast, BlockCache};
//! use hwst_isa::{AluImmOp, Instr, Program, Reg};
//! use hwst_sim::{Machine, SafetyConfig};
//!
//! let prog = Program::from_instrs(0x1_0000, vec![
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A0, rs1: Reg::Zero, imm: 7 },
//!     Instr::AluImm { op: AluImmOp::Addi, rd: Reg::A7, rs1: Reg::Zero, imm: 93 },
//!     Instr::Ecall,
//! ]);
//! let mut cycle = Machine::new(prog.clone(), SafetyConfig::default());
//! let mut fast = Machine::new(prog, SafetyConfig::default());
//! let mut cache = BlockCache::new();
//! let want = cycle.run(1_000);
//! assert_eq!(run_fast(&mut fast, 1_000, &mut cache), want);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod run;

pub use block::BlockCache;
pub use run::{run_fast, run_profiled_fast};

use hwst_sim::{ExitStatus, Machine, Trap};
use hwst_telemetry::Profiler;

/// Which execution engine drives a [`Machine`].
///
/// Both engines produce bit-identical results (state, traps, stats,
/// telemetry); the choice only changes wall-clock time. `Cycle` is the
/// reference interpreter ([`Machine::run`]); `Fast` is the decoded-block
/// tier and the default for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference cycle interpreter: fetch/decode/execute per step.
    Cycle,
    /// The decoded-block tier with superinstruction fusion.
    #[default]
    Fast,
}

impl Engine {
    /// Both engines, cycle first (the reference).
    pub const ALL: [Engine; 2] = [Engine::Cycle, Engine::Fast];

    /// The CLI name (`cycle` / `fast`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Cycle => "cycle",
            Engine::Fast => "fast",
        }
    }

    /// Runs `m` for `fuel` instructions under this engine. The `cache`
    /// is only consulted by `Fast`; passing a warm cache skips
    /// re-decoding.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Machine::run`].
    pub fn run(
        self,
        m: &mut Machine,
        fuel: u64,
        cache: &mut BlockCache,
    ) -> Result<ExitStatus, Trap> {
        match self {
            Engine::Cycle => m.run(fuel),
            Engine::Fast => run_fast(m, fuel, cache),
        }
    }

    /// [`Self::run`] with per-PC cycle attribution into `prof`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Machine::run_profiled`].
    pub fn run_profiled(
        self,
        m: &mut Machine,
        fuel: u64,
        prof: &mut Profiler,
        cache: &mut BlockCache,
    ) -> Result<ExitStatus, Trap> {
        match self {
            Engine::Cycle => m.run_profiled(fuel, prof),
            Engine::Fast => run_profiled_fast(m, fuel, prof, cache),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(Engine::Cycle),
            "fast" => Ok(Engine::Fast),
            other => Err(format!(
                "unknown engine `{other}` (expected `fast` or `cycle`)"
            )),
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
