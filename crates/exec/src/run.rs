//! The fast run loop: executes decoded blocks bit-identically to
//! [`Machine::run`] / [`Machine::run_profiled`].
//!
//! Every structural rule of the cycle engine's loop is replicated
//! exactly:
//!
//! * the exit latch is checked before the fuel budget, and once more
//!   after it, so exit-on-the-last-fuel-unit still reports `Ok`;
//! * [`Trap::BadFetch`] is only raised when fuel remains (fetch happens
//!   inside a fueled step);
//! * a trapping instruction does **not** advance the PC, and — except
//!   `tchk`, which charges its cycles before trapping — does not
//!   retire;
//! * each component of a fused pair consumes one fuel unit and retires
//!   separately, so fuel exhaustion between the halves leaves the
//!   machine exactly where the cycle engine would.
//!
//! `ecall`/`csr*`/`ebreak` components execute through
//! [`Machine::step`] (or [`Machine::step_profiled`]) itself; the cached
//! spatial/temporal enable flags are re-read afterwards because only
//! those instructions can rewrite `hwst.status`.
//!
//! The plain loop additionally *batches* retirement: the purely static
//! charges of a block (instret, base cycles, counter bumps, fixed
//! latencies, statically-known load-use pairs) were prefix-summed at
//! decode time, so per component only the dynamic work runs — D-cache
//! and keybuffer accesses, in exactly the order the cycle engine would
//! issue them — and one `charge_static` is applied per block, or per
//! block prefix at every early exit (trap, fuel exhaustion, environment
//! fallback). The profiled loop keeps per-component retirement: it
//! observes stats around every instruction, so there is nothing to
//! batch.

use crate::block::{BlockCache, Field, Op, OpKind};
use hwst_isa::Instr;
use hwst_pipeline::{CycleStats, ExecEvents};
use hwst_sim::{classify, ExitStatus, Machine, Trap};
use hwst_telemetry::Profiler;

/// Per-step observation for profiled runs. The profiled loop snapshots
/// stats around every component; the plain loop ([`run_plain`]) uses
/// batched retirement instead and never constructs an observer.
trait Observer {
    /// Whether stats snapshots must be taken around every component.
    const ENABLED: bool;
    fn record(&mut self, pc: u64, instr: &Instr, before: &CycleStats, after: &CycleStats);
    fn fallback(&mut self, m: &mut Machine) -> Result<(), Trap>;
}

struct WithProfiler<'a>(&'a mut Profiler);

impl Observer for WithProfiler<'_> {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, pc: u64, instr: &Instr, before: &CycleStats, after: &CycleStats) {
        self.0
            .record_step(pc, classify(instr, before, after), before.total_cycles());
    }

    #[inline]
    fn fallback(&mut self, m: &mut Machine) -> Result<(), Trap> {
        m.step_profiled(self.0)
    }
}

/// Runs `m` for at most `fuel` instructions through the decoded-block
/// tier, decoding blocks into `cache` on first touch.
///
/// Bit-identical to [`Machine::run`]: same result, same final machine
/// state. A warm `cache` (from a previous run of the same image) skips
/// re-decoding entirely; the cache revalidates its `(epoch, base, len)`
/// stamp first, so a mismatched cache flushes rather than misexecutes.
///
/// # Errors
///
/// Exactly those of [`Machine::run`].
pub fn run_fast(m: &mut Machine, fuel: u64, cache: &mut BlockCache) -> Result<ExitStatus, Trap> {
    run_plain(m, fuel, cache)
}

/// [`run_fast`] with per-PC cycle attribution into `prof` — the fast
/// counterpart of [`Machine::run_profiled`], attributing through the
/// same [`classify`] split (and through [`Machine::step_profiled`] for
/// environment instructions, so allocator spans are preserved).
///
/// # Errors
///
/// Exactly those of [`Machine::run_profiled`].
pub fn run_profiled_fast(
    m: &mut Machine,
    fuel: u64,
    prof: &mut Profiler,
    cache: &mut BlockCache,
) -> Result<ExitStatus, Trap> {
    run_generic(m, fuel, cache, &mut WithProfiler(prof))
}

fn exit_status(m: &Machine, code: u64) -> ExitStatus {
    ExitStatus {
        code,
        stats: m.stats(),
        output: m.output().to_vec(),
    }
}

fn run_generic<O: Observer>(
    m: &mut Machine,
    fuel: u64,
    cache: &mut BlockCache,
    obs: &mut O,
) -> Result<ExitStatus, Trap> {
    cache.revalidate(m);
    let mut executed: u64 = 0;
    // `hwst.status` lives in a CSR map; cache the enable bits and
    // refresh them after every fallback step (the only place they can
    // change).
    let mut spatial = m.spatial_enabled();
    let mut temporal = m.temporal_enabled();

    'outer: loop {
        if let Some(code) = m.exit_code() {
            return Ok(exit_status(m, code));
        }
        if executed >= fuel {
            return Err(Trap::OutOfFuel { executed: fuel });
        }
        let entry = m.pc();
        let block = cache.block_for(m, entry)?;
        let mut pc = entry;

        for op in block.ops.iter() {
            if executed >= fuel {
                m.set_pc(pc);
                continue 'outer;
            }
            // Wraps one component: snapshot stats around it when
            // profiling, record at its PC, propagate its trap with the
            // PC left unadvanced.
            macro_rules! component {
                ($pc:expr, $raw:expr, $body:expr) => {{
                    let before = if O::ENABLED {
                        m.stats()
                    } else {
                        CycleStats::default()
                    };
                    let r: Result<(), Trap> = $body;
                    if O::ENABLED {
                        let after = m.stats();
                        obs.record($pc, $raw, &before, &after);
                    }
                    if let Err(t) = r {
                        m.set_pc($pc);
                        return Err(t);
                    }
                }};
            }
            match op.kind {
                OpKind::Fallback => {
                    m.set_pc(pc);
                    obs.fallback(m)?;
                    executed += 1;
                    pc = m.pc();
                    if m.exit_code().is_some() {
                        continue 'outer;
                    }
                    spatial = m.spatial_enabled();
                    temporal = m.temporal_enabled();
                }
                OpKind::FusedSbd { rs1, rs2, offset } => {
                    // sbdl writes memory only, so the container address
                    // and the SRF entry are identical for both halves.
                    let container = m.reg(rs1).wrapping_add(offset);
                    let (lower, upper) = match m.srf().read(rs2) {
                        Some(c) => (c.lower, c.upper),
                        None => (0, 0),
                    };
                    let s = m.shadow().shadow_addr(container);
                    component!(pc, &op.raw[0], {
                        m.mem_mut().write_le_fast(s, 8, lower);
                        m.pipeline_mut().retire_decoded(
                            &op.info[0],
                            &ExecEvents {
                                shadow_addr: Some(s),
                                ..ExecEvents::default()
                            },
                        );
                        Ok(())
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                    if executed >= fuel {
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let s = m.shadow().upper_addr(container);
                    component!(pc, &op.raw[1], {
                        m.mem_mut().write_le_fast(s, 8, upper);
                        m.pipeline_mut().retire_decoded(
                            &op.info[1],
                            &ExecEvents {
                                shadow_addr: Some(s),
                                ..ExecEvents::default()
                            },
                        );
                        Ok(())
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                }
                OpKind::FusedLbd { rd, rs1, offset } => {
                    // lbdls writes the SRF only, so the container
                    // address is identical for both halves.
                    let container = m.reg(rs1).wrapping_add(offset);
                    let s = m.shadow().shadow_addr(container);
                    component!(pc, &op.raw[0], {
                        let v = m.mem().read_le_fast(s, 8);
                        m.srf_mut().write_lower(rd, v);
                        m.pipeline_mut().retire_decoded(
                            &op.info[0],
                            &ExecEvents {
                                shadow_addr: Some(s),
                                ..ExecEvents::default()
                            },
                        );
                        Ok(())
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                    if executed >= fuel {
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let s = m.shadow().upper_addr(container);
                    component!(pc, &op.raw[1], {
                        let v = m.mem().read_le_fast(s, 8);
                        m.srf_mut().write_upper(rd, v);
                        m.pipeline_mut().retire_decoded(
                            &op.info[1],
                            &ExecEvents {
                                shadow_addr: Some(s),
                                ..ExecEvents::default()
                            },
                        );
                        Ok(())
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                }
                OpKind::FusedLbdlsLoad {
                    mrd,
                    mrs1,
                    moffset,
                    width,
                    rd,
                    offset,
                } => {
                    // The metadata load must complete before the
                    // checked load: its SRF write is exactly what the
                    // SCU checks against.
                    let container = m.reg(mrs1).wrapping_add(moffset);
                    let s = m.shadow().shadow_addr(container);
                    component!(pc, &op.raw[0], {
                        let v = m.mem().read_le_fast(s, 8);
                        m.srf_mut().write_lower(mrd, v);
                        m.pipeline_mut().retire_decoded(
                            &op.info[0],
                            &ExecEvents {
                                shadow_addr: Some(s),
                                ..ExecEvents::default()
                            },
                        );
                        Ok(())
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                    if executed >= fuel {
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let addr = m.reg(mrd).wrapping_add(offset);
                    // No `?` here: a `?` inside the component body
                    // would return past the macro's trap handling.
                    component!(pc, &op.raw[1], {
                        let trap = if spatial {
                            m.spatial_check(pc, mrd, addr, width.bytes()).err()
                        } else {
                            None
                        };
                        match trap {
                            Some(t) => Err(t),
                            None => {
                                let raw = m.mem().read_le_fast(addr, width.bytes());
                                m.set_reg(rd, width.extend(raw));
                                m.srf_mut().clear(rd);
                                m.pipeline_mut().retire_decoded(
                                    &op.info[1],
                                    &ExecEvents {
                                        mem_addr: Some(addr),
                                        ..ExecEvents::default()
                                    },
                                );
                                Ok(())
                            }
                        }
                    });
                    executed += 1;
                    pc = pc.wrapping_add(4);
                }
                _ => {
                    let before = if O::ENABLED {
                        m.stats()
                    } else {
                        CycleStats::default()
                    };
                    let r = exec_one::<false>(m, op, pc, spatial, temporal);
                    if O::ENABLED {
                        let after = m.stats();
                        obs.record(pc, &op.raw[0], &before, &after);
                    }
                    match r {
                        Ok(next) => {
                            executed += 1;
                            pc = next;
                        }
                        Err(t) => {
                            m.set_pc(pc);
                            return Err(t);
                        }
                    }
                }
            }
        }
        m.set_pc(pc);
    }
}

/// The plain (non-profiled) loop with batched retirement: dynamic
/// charges per component, one [`StaticCharges`] application per block
/// — or per executed block prefix at early exits — plus a dynamic
/// load-use check at each *seam* (block entry and post-fallback), where
/// the preceding instruction is unknown at decode time.
///
/// [`StaticCharges`]: hwst_pipeline::StaticCharges
fn run_plain(m: &mut Machine, fuel: u64, cache: &mut BlockCache) -> Result<ExitStatus, Trap> {
    cache.revalidate(m);
    let mut executed: u64 = 0;
    let mut spatial = m.spatial_enabled();
    let mut temporal = m.temporal_enabled();

    'outer: loop {
        if let Some(code) = m.exit_code() {
            return Ok(exit_status(m, code));
        }
        if executed >= fuel {
            return Err(Trap::OutOfFuel { executed: fuel });
        }
        let entry = m.pc();
        let block = cache.block_for(m, entry)?;
        let mut pc = entry;
        // Components executed so far / first component of the current
        // unflushed run. Flushing applies the static prefix difference
        // and restores the interlock arming per-op retirement would
        // have left, so any exit point — and any resumption after
        // `OutOfFuel` — sees exactly the cycle engine's state.
        let mut k: usize = 0;
        let mut seg: usize = 0;
        let mut seam = true;
        // With the whole block funded, no per-component fuel checks are
        // needed at all.
        let funded = fuel - executed >= block.ncomps as u64;

        macro_rules! flush {
            () => {
                if k > seg {
                    m.pipeline_mut()
                        .charge_static(block.prefix[k] - block.prefix[seg]);
                    m.pipeline_mut().set_prev_load_dest(block.load_dest[k]);
                }
            };
        }

        for op in block.ops.iter() {
            if !funded && executed >= fuel {
                flush!();
                m.set_pc(pc);
                continue 'outer;
            }
            match op.kind {
                OpKind::Fallback => {
                    flush!();
                    m.set_pc(pc);
                    m.step()?;
                    executed += 1;
                    k += 1;
                    seg = k;
                    seam = true;
                    pc = m.pc();
                    if m.exit_code().is_some() {
                        continue 'outer;
                    }
                    spatial = m.spatial_enabled();
                    temporal = m.temporal_enabled();
                }
                OpKind::FusedSbd { rs1, rs2, offset } => {
                    let container = m.reg(rs1).wrapping_add(offset);
                    let (lower, upper) = match m.srf().read(rs2) {
                        Some(c) => (c.lower, c.upper),
                        None => (0, 0),
                    };
                    if seam {
                        m.pipeline_mut().interlock_seam(&op.info[0]);
                        seam = false;
                    }
                    let s = m.shadow().shadow_addr(container);
                    m.mem_mut().write_le_fast(s, 8, lower);
                    m.pipeline_mut().charge_shadow_dyn(s);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                    if !funded && executed >= fuel {
                        flush!();
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let s = m.shadow().upper_addr(container);
                    m.mem_mut().write_le_fast(s, 8, upper);
                    m.pipeline_mut().charge_shadow_dyn(s);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                }
                OpKind::FusedLbd { rd, rs1, offset } => {
                    let container = m.reg(rs1).wrapping_add(offset);
                    if seam {
                        m.pipeline_mut().interlock_seam(&op.info[0]);
                        seam = false;
                    }
                    let s = m.shadow().shadow_addr(container);
                    let v = m.mem().read_le_fast(s, 8);
                    m.srf_mut().write_lower(rd, v);
                    m.pipeline_mut().charge_shadow_dyn(s);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                    if !funded && executed >= fuel {
                        flush!();
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let s = m.shadow().upper_addr(container);
                    let v = m.mem().read_le_fast(s, 8);
                    m.srf_mut().write_upper(rd, v);
                    m.pipeline_mut().charge_shadow_dyn(s);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                }
                OpKind::FusedLbdlsLoad {
                    mrd,
                    mrs1,
                    moffset,
                    width,
                    rd,
                    offset,
                } => {
                    // The metadata load must complete before the checked
                    // load: its SRF write is what the SCU checks against.
                    let container = m.reg(mrs1).wrapping_add(moffset);
                    if seam {
                        m.pipeline_mut().interlock_seam(&op.info[0]);
                        seam = false;
                    }
                    let s = m.shadow().shadow_addr(container);
                    let v = m.mem().read_le_fast(s, 8);
                    m.srf_mut().write_lower(mrd, v);
                    m.pipeline_mut().charge_shadow_dyn(s);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                    if !funded && executed >= fuel {
                        flush!();
                        m.set_pc(pc);
                        continue 'outer;
                    }
                    let addr = m.reg(mrd).wrapping_add(offset);
                    if spatial {
                        if let Err(t) = m.spatial_check(pc, mrd, addr, width.bytes()) {
                            // The checked load traps without retiring;
                            // the metadata load already executed.
                            flush!();
                            m.set_pc(pc);
                            return Err(t);
                        }
                    }
                    let raw = m.mem().read_le_fast(addr, width.bytes());
                    m.set_reg(rd, width.extend(raw));
                    m.srf_mut().clear(rd);
                    m.pipeline_mut().charge_mem_dyn(addr);
                    executed += 1;
                    k += 1;
                    pc = pc.wrapping_add(4);
                }
                _ => match exec_one::<true>(m, op, pc, spatial, temporal) {
                    Ok(next) => {
                        if seam {
                            m.pipeline_mut().interlock_seam(&op.info[0]);
                            seam = false;
                        }
                        executed += 1;
                        k += 1;
                        pc = next;
                    }
                    Err(t) => {
                        // A trapping component does not retire — except
                        // tchk, which charges its cycles (and its static
                        // share) before raising the temporal violation.
                        if matches!(t, Trap::TemporalViolation { .. }) {
                            if seam {
                                m.pipeline_mut().interlock_seam(&op.info[0]);
                            }
                            k += 1;
                        }
                        flush!();
                        m.set_pc(pc);
                        return Err(t);
                    }
                },
            }
        }
        flush!();
        m.set_pc(pc);
    }
}

/// Executes one simple (single-component, non-fallback) op, mirroring
/// [`Machine::step`] arm by arm. Returns the next PC; on a trap the
/// caller leaves the machine PC at `pc`.
///
/// `BATCHED` selects the retirement mode: `false` performs a full
/// [`Pipeline::retire_decoded`] (the profiled loop); `true` issues only
/// the dynamic charges, with the static share owed by the caller's
/// block-prefix accounting (the plain loop).
///
/// [`Pipeline::retire_decoded`]: hwst_pipeline::Pipeline::retire_decoded
#[inline(always)]
fn exec_one<const BATCHED: bool>(
    m: &mut Machine,
    op: &Op,
    pc: u64,
    spatial: bool,
    temporal: bool,
) -> Result<u64, Trap> {
    let mut ev = ExecEvents::default();
    let mut next = pc.wrapping_add(4);
    match op.kind {
        OpKind::Lui { rd, imm } => {
            m.set_reg(rd, imm);
            m.srf_mut().clear(rd);
        }
        OpKind::Auipc { rd, val } => {
            m.set_reg(rd, val);
            m.srf_mut().clear(rd);
        }
        OpKind::Jal { rd, link, target } => {
            m.set_reg(rd, link);
            m.srf_mut().clear(rd);
            next = target;
        }
        OpKind::Jalr {
            rd,
            rs1,
            offset,
            link,
        } => {
            // Read rs1 before the link write: rd may alias rs1.
            let target = m.reg(rs1).wrapping_add(offset) & !1u64;
            m.set_reg(rd, link);
            m.srf_mut().clear(rd);
            next = target;
        }
        OpKind::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            if cond.eval(m.reg(rs1), m.reg(rs2)) {
                next = target;
                if BATCHED {
                    m.pipeline_mut().charge_taken_branch();
                } else {
                    ev.branch_taken = true;
                }
            }
        }
        OpKind::Load {
            width,
            rd,
            rs1,
            offset,
            checked,
        } => {
            let addr = m.reg(rs1).wrapping_add(offset);
            if checked && spatial {
                m.spatial_check(pc, rs1, addr, width.bytes())?;
            }
            let raw = m.mem().read_le_fast(addr, width.bytes());
            m.set_reg(rd, width.extend(raw));
            m.srf_mut().clear(rd);
            if BATCHED {
                m.pipeline_mut().charge_mem_dyn(addr);
            } else {
                ev.mem_addr = Some(addr);
            }
        }
        OpKind::Store {
            width,
            rs1,
            rs2,
            offset,
            checked,
        } => {
            let addr = m.reg(rs1).wrapping_add(offset);
            if checked && spatial {
                m.spatial_check(pc, rs1, addr, width.bytes())?;
            }
            let val = m.reg(rs2);
            m.mem_mut().write_le_fast(addr, width.bytes(), val);
            if BATCHED {
                m.pipeline_mut().charge_mem_dyn(addr);
            } else {
                ev.mem_addr = Some(addr);
            }
        }
        OpKind::AluImm { op, rd, rs1, imm } => {
            m.set_reg(rd, op.eval(m.reg(rs1), imm));
            m.srf_mut().propagate(rd, Some(rs1), None);
        }
        OpKind::Alu { op, rd, rs1, rs2 } => {
            m.set_reg(rd, op.eval(m.reg(rs1), m.reg(rs2)));
            m.srf_mut().propagate(rd, Some(rs1), Some(rs2));
        }
        OpKind::Fence => {}
        OpKind::Bndrs { rd, rs1, rs2 } => {
            let (base, bound) = (m.reg(rs1), m.reg(rs2));
            let lower = m
                .codec()
                .compress_spatial(base, bound)
                .map_err(|_| Trap::Environment {
                    pc,
                    what: "bndrs: metadata not representable under compcfg",
                })?;
            m.srf_mut().write_lower(rd, lower);
        }
        OpKind::Bndrt { rd, rs1, rs2 } => {
            let (key, lock) = (m.reg(rs1), m.reg(rs2));
            let upper = m
                .codec()
                .compress_temporal(key, lock)
                .map_err(|_| Trap::Environment {
                    pc,
                    what: "bndrt: metadata not representable under compcfg",
                })?;
            m.srf_mut().write_upper(rd, upper);
        }
        OpKind::SrfMv { rd, rs1 } => m.srf_mut().mv(rd, rs1),
        OpKind::SrfClr { rd } => m.srf_mut().clear(rd),
        OpKind::Sbdl { rs1, rs2, offset } => {
            let container = m.reg(rs1).wrapping_add(offset);
            let s = m.shadow().shadow_addr(container);
            let lower = m.srf().read(rs2).map(|c| c.lower).unwrap_or(0);
            m.mem_mut().write_le_fast(s, 8, lower);
            if BATCHED {
                m.pipeline_mut().charge_shadow_dyn(s);
            } else {
                ev.shadow_addr = Some(s);
            }
        }
        OpKind::Sbdu { rs1, rs2, offset } => {
            let container = m.reg(rs1).wrapping_add(offset);
            let s = m.shadow().upper_addr(container);
            let upper = m.srf().read(rs2).map(|c| c.upper).unwrap_or(0);
            m.mem_mut().write_le_fast(s, 8, upper);
            if BATCHED {
                m.pipeline_mut().charge_shadow_dyn(s);
            } else {
                ev.shadow_addr = Some(s);
            }
        }
        OpKind::Lbdls { rd, rs1, offset } => {
            let container = m.reg(rs1).wrapping_add(offset);
            let s = m.shadow().shadow_addr(container);
            let v = m.mem().read_le_fast(s, 8);
            m.srf_mut().write_lower(rd, v);
            if BATCHED {
                m.pipeline_mut().charge_shadow_dyn(s);
            } else {
                ev.shadow_addr = Some(s);
            }
        }
        OpKind::Lbdus { rd, rs1, offset } => {
            let container = m.reg(rs1).wrapping_add(offset);
            let s = m.shadow().upper_addr(container);
            let v = m.mem().read_le_fast(s, 8);
            m.srf_mut().write_upper(rd, v);
            if BATCHED {
                m.pipeline_mut().charge_shadow_dyn(s);
            } else {
                ev.shadow_addr = Some(s);
            }
        }
        OpKind::ShadowField {
            field,
            rd,
            rs1,
            offset,
        } => {
            let container = m.reg(rs1).wrapping_add(offset);
            let s = match field {
                Field::Base | Field::Bound => m.shadow().shadow_addr(container),
                Field::Key | Field::Lock => m.shadow().upper_addr(container),
            };
            let word = m.mem().read_le_fast(s, 8);
            let v = match field {
                Field::Base => m.codec().decompress_spatial(word).0,
                Field::Bound => m.codec().decompress_spatial(word).1,
                Field::Key => m.codec().decompress_temporal(word).0,
                Field::Lock => m.codec().decompress_temporal(word).1,
            };
            m.set_reg(rd, v);
            m.srf_mut().clear(rd);
            if BATCHED {
                m.pipeline_mut().charge_shadow_dyn(s);
            } else {
                ev.shadow_addr = Some(s);
            }
        }
        OpKind::Tchk { rs1 } => {
            if temporal {
                if let Some(c) = m.srf().read(rs1) {
                    let (key, lock) = m.codec().decompress_temporal(c.upper);
                    if lock != 0 {
                        let stored = m.mem().read_le_fast(lock, 8);
                        if BATCHED {
                            m.pipeline_mut().charge_tchk_dyn(lock, stored);
                        } else {
                            ev.tchk = Some((lock, stored));
                        }
                        if stored != key {
                            // Charge the cycles before trapping, as the
                            // cycle engine does (BATCHED already issued
                            // its dynamic charge above; the caller owes
                            // the static share and counts this component
                            // into its flush).
                            if !BATCHED {
                                m.pipeline_mut().retire_decoded(&op.info[0], &ev);
                            }
                            return Err(Trap::TemporalViolation {
                                pc,
                                key,
                                lock,
                                stored_key: stored,
                            });
                        }
                    }
                }
            }
        }
        // Handled by the caller; unreachable here.
        OpKind::Fallback
        | OpKind::FusedSbd { .. }
        | OpKind::FusedLbd { .. }
        | OpKind::FusedLbdlsLoad { .. } => {
            return Err(Trap::MachineFault {
                pc,
                what: "decoded-block dispatch error",
            })
        }
    }
    // BATCHED dynamic charges were issued inline in the arms above, in
    // the same D-cache/keybuffer touch order `retire_decoded` uses; the
    // arithmetic share lives in the block's static prefix.
    if !BATCHED {
        m.pipeline_mut().retire_decoded(&op.info[0], &ev);
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use hwst_isa::asm::assemble;
    use hwst_isa::Reg;
    use hwst_sim::SafetyConfig;
    use hwst_telemetry::Breakdown;
    use std::collections::BTreeMap;

    const BASE: u64 = 0x1_0000;

    fn machines(src: &str, cfg: SafetyConfig) -> (Machine, Machine) {
        let prog = assemble(BASE, src).unwrap();
        (Machine::new(prog.clone(), cfg), Machine::new(prog, cfg))
    }

    /// Full architectural-state comparison: pc, registers, SRF, exit
    /// latch, pipeline stats, output, runtime events and every resident
    /// nonzero memory word.
    fn assert_same_state(cycle: &Machine, fast: &Machine) {
        assert_eq!(cycle.pc(), fast.pc(), "pc");
        for r in Reg::ALL {
            assert_eq!(cycle.reg(r), fast.reg(r), "reg {r:?}");
            assert_eq!(cycle.srf().read(r), fast.srf().read(r), "srf {r:?}");
        }
        assert_eq!(cycle.exit_code(), fast.exit_code(), "exit code");
        assert_eq!(cycle.stats(), fast.stats(), "stats");
        assert_eq!(cycle.output(), fast.output(), "output");
        assert_eq!(cycle.events(), fast.events(), "events");
        let cw = cycle.mem().nonzero_word_addrs_in(0, u64::MAX);
        let fw = fast.mem().nonzero_word_addrs_in(0, u64::MAX);
        assert_eq!(cw, fw, "nonzero memory words");
        for a in cw {
            assert_eq!(
                cycle.mem().read_u64(a),
                fast.mem().read_u64(a),
                "memory word at {a:#x}"
            );
        }
    }

    /// Runs `src` under both engines at the given fuel and asserts the
    /// results and final machine states are bit-identical. Returns the
    /// warm cache for follow-up assertions.
    fn assert_same_run(src: &str, cfg: SafetyConfig, fuel: u64) -> BlockCache {
        let (mut cycle, mut fast) = machines(src, cfg);
        let mut cache = BlockCache::new();
        let want = cycle.run(fuel);
        let got = run_fast(&mut fast, fuel, &mut cache);
        assert_eq!(want, got, "run result at fuel {fuel}");
        assert_same_state(&cycle, &fast);
        cache
    }

    /// Exercises every fused pattern, the HWST metadata instructions,
    /// muldiv/branch loops, calls and syscalls in one program.
    const MIXED: &str = "
        li   a0, 64
        li   a7, 1000
        ecall                  # malloc: a0=base a1=key a2=lock
        mv   t0, a0
        addi t1, a0, 64
        bndrs t0, a0, t1
        bndrt t0, a1, a2
        csd  t1, 0(t0)         # checked store, in bounds
        cld  t2, 0(t0)         # checked load, in bounds
        tchk t0                # keybuffer miss
        tchk t0                # keybuffer hit
        sd   t0, 8(a0)
        sbdl t0, 8(a0)         # fused with the next sbdu
        sbdu t0, 8(a0)
        ld   t3, 8(a0)
        lbdls t3, 8(a0)        # fused with the next checked load
        cld  t4, 0(t3)
        lbdls t5, 8(a0)        # fused with the next lbdus
        lbdus t5, 8(a0)
        lbas s0, 8(a0)
        lbnd s1, 8(a0)
        lkey s2, 8(a0)
        lloc s3, 8(a0)
        srfmv s4, t0
        srfclr s4
        li   s5, 5
        li   s6, 0
    loop:
        addi s6, s6, 3
        mul  s7, s6, s6
        div  s8, s7, s5
        addi s5, s5, -1
        bnez s5, loop
        sd   s7, -8(sp)
        ld   s9, -8(sp)
        jal  ra, func
        mv   a0, s7
        li   a7, 1020
        ecall                  # print_u64
        li   a0, 72
        li   a7, 64
        ecall                  # putchar
        li   a0, 0
        li   a7, 93
        ecall                  # exit
    func:
        lui  s10, 4
        auipc s11, 0
        ret
    ";

    #[test]
    fn mixed_program_is_bit_identical() {
        let cache = assert_same_run(MIXED, SafetyConfig::default(), 10_000);
        assert!(cache.decodes() > 0);
    }

    #[test]
    fn mixed_program_matches_under_every_config() {
        for cfg in [
            SafetyConfig::baseline(),
            SafetyConfig::hwst128_no_tchk(),
            SafetyConfig::default(),
        ] {
            assert_same_run(MIXED, cfg, 10_000);
        }
    }

    /// Every fuel value from 0 to completion: out-of-fuel boundaries —
    /// including exhaustion *between* the halves of a fused pair — must
    /// leave both engines in identical states.
    #[test]
    fn every_fuel_boundary_is_bit_identical() {
        for fuel in 0..280 {
            assert_same_run(MIXED, SafetyConfig::default(), fuel);
        }
    }

    #[test]
    fn spatial_violation_is_bit_identical() {
        let src = "
            li   a0, 16
            li   a7, 1000
            ecall
            mv   t0, a0
            addi t1, a0, 16
            bndrs t0, a0, t1
            cld  t2, 16(t0)     # one past the bound
        ";
        let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let want = cycle.run(1_000);
        let got = run_fast(&mut fast, 1_000, &mut cache);
        assert!(
            matches!(want, Err(Trap::SpatialViolation { .. })),
            "{want:?}"
        );
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
    }

    #[test]
    fn fused_checked_load_violation_is_bit_identical() {
        // The violating access sits in the second half of a fused
        // lbdls+cld pair: the metadata load must retire, the load must
        // trap without retiring, and the pc must stay on the load.
        let src = "
            li   a0, 16
            li   a7, 1000
            ecall
            mv   t0, a0
            addi t1, a0, 16
            bndrs t0, a0, t1
            bndrt t0, a1, a2
            sd   t0, 0(a0)
            sbdl t0, 0(a0)
            sbdu t0, 0(a0)
            ld   t3, 0(a0)
            lbdls t3, 0(a0)
            cld  t4, 24(t3)     # fused, out of bounds
        ";
        let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let want = cycle.run(1_000);
        let got = run_fast(&mut fast, 1_000, &mut cache);
        assert!(
            matches!(want, Err(Trap::SpatialViolation { .. })),
            "{want:?}"
        );
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
    }

    #[test]
    fn temporal_violation_is_bit_identical() {
        let src = "
            li   a0, 32
            li   a7, 1000
            ecall
            mv   t0, a0
            addi t1, a0, 32
            bndrs t0, a0, t1
            bndrt t0, a1, a2
            mv   a0, t0
            mv   a1, a2
            li   a7, 1001
            ecall               # free: key at the lock location is cleared
            tchk t0
        ";
        let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let want = cycle.run(1_000);
        let got = run_fast(&mut fast, 1_000, &mut cache);
        assert!(
            matches!(want, Err(Trap::TemporalViolation { .. })),
            "{want:?}"
        );
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
    }

    #[test]
    fn csr_write_refreshes_cached_check_flags() {
        // Disabling hwst.status through a fallback instruction must be
        // visible to subsequent decoded checked accesses: the same
        // out-of-bounds load that would trap now passes in both engines.
        let src = "
            li   a0, 16
            li   a7, 1000
            ecall
            mv   t0, a0
            addi t1, a0, 16
            bndrs t0, a0, t1
            csrrw zero, hwst.status, zero
            cld  t2, 64(t0)     # far out of bounds, but checks are off
            li   a0, 0
            li   a7, 93
            ecall
        ";
        let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let want = cycle.run(1_000);
        let got = run_fast(&mut fast, 1_000, &mut cache);
        assert!(want.is_ok(), "{want:?}");
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
    }

    #[test]
    fn bad_fetch_and_breakpoint_are_bit_identical() {
        for src in [
            "   li  t0, 0x500000\n   jalr zero, 0(t0)\n",
            "   addi t0, zero, 1\n   ebreak\n",
        ] {
            let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
            let mut cache = BlockCache::new();
            let want = cycle.run(1_000);
            let got = run_fast(&mut fast, 1_000, &mut cache);
            assert!(want.is_err());
            assert_eq!(want, got);
            assert_same_state(&cycle, &fast);
        }
    }

    #[test]
    fn environment_trap_from_bndrs_is_bit_identical() {
        // A bound below the base is not representable: both engines must
        // report the same Environment trap without retiring.
        let src = "
            li   a0, 4096
            li   t1, 8
            bndrs t0, a0, t1
        ";
        let (mut cycle, mut fast) = machines(src, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let want = cycle.run(1_000);
        let got = run_fast(&mut fast, 1_000, &mut cache);
        assert!(matches!(want, Err(Trap::Environment { .. })), "{want:?}");
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
    }

    #[test]
    fn profiled_run_attributes_identically() {
        let (mut cycle, mut fast) = machines(MIXED, SafetyConfig::default());
        let mut cache = BlockCache::new();
        let mut pc_prof = Profiler::new();
        let mut pf_prof = Profiler::new();
        let want = cycle.run_profiled(10_000, &mut pc_prof);
        let got = run_profiled_fast(&mut fast, 10_000, &mut pf_prof, &mut cache);
        assert_eq!(want, got);
        assert_same_state(&cycle, &fast);
        let c: BTreeMap<u64, Breakdown> =
            pc_prof.profile.iter().map(|(pc, bd)| (pc, *bd)).collect();
        let f: BTreeMap<u64, Breakdown> =
            pf_prof.profile.iter().map(|(pc, bd)| (pc, *bd)).collect();
        assert_eq!(c, f, "per-PC attribution");
        assert_eq!(pc_prof.profile.total(), pf_prof.profile.total());
    }

    #[test]
    fn warm_cache_skips_redecode_and_stays_identical() {
        let prog = assemble(BASE, MIXED).unwrap();
        let mut cache = BlockCache::new();

        let mut first = Machine::new(prog.clone(), SafetyConfig::default());
        let a = run_fast(&mut first, 10_000, &mut cache).unwrap();
        let decodes = cache.decodes();
        assert!(decodes > 0);

        let mut second = Machine::new(prog.clone(), SafetyConfig::default());
        let b = run_fast(&mut second, 10_000, &mut cache).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.decodes(), decodes, "warm run must not re-decode");
        assert!(cache.hits() > 0);

        let mut reference = Machine::new(prog, SafetyConfig::default());
        assert_eq!(reference.run(10_000).unwrap(), b);
    }

    #[test]
    fn reload_image_flushes_and_reexecutes_correctly() {
        let exit7 = assemble(BASE, "  li a0, 7\n  li a7, 93\n  ecall\n").unwrap();
        let exit9 = assemble(BASE, "  li a0, 9\n  li a7, 93\n  ecall\n").unwrap();
        let mut m = Machine::new(exit7, SafetyConfig::default());
        let mut cache = BlockCache::new();
        assert_eq!(run_fast(&mut m, 100, &mut cache).unwrap().code, 7);
        m.reload_image(BASE, &exit9.to_image()).unwrap();
        assert_eq!(run_fast(&mut m, 100, &mut cache).unwrap().code, 9);
        assert_eq!(cache.len(), 1, "stale blocks must be flushed");
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("fast".parse::<Engine>(), Ok(Engine::Fast));
        assert_eq!("cycle".parse::<Engine>(), Ok(Engine::Cycle));
        assert!("turbo".parse::<Engine>().is_err());
        assert_eq!(Engine::Fast.to_string(), "fast");
        assert_eq!(Engine::Cycle.to_string(), "cycle");
        assert_eq!(Engine::default(), Engine::Fast);
    }

    #[test]
    fn engine_dispatch_matches_direct_calls() {
        let prog = assemble(BASE, MIXED).unwrap();
        let mut results = Vec::new();
        for engine in Engine::ALL {
            let mut m = Machine::new(prog.clone(), SafetyConfig::default());
            let mut cache = BlockCache::new();
            results.push(engine.run(&mut m, 10_000, &mut cache).unwrap());
        }
        assert_eq!(results[0], results[1]);
    }
}
