//! Decoded basic blocks: pre-resolved operations, superinstruction
//! fusion and the epoch-stamped block cache.

use std::sync::Arc;

use hwst_isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_pipeline::{RetireInfo, StaticCharges};
use hwst_sim::{Machine, Trap};

/// Blocks are capped so a straight-line megablock cannot make one
/// decode arbitrarily expensive; the tail simply continues in the next
/// block.
pub(crate) const MAX_BLOCK_OPS: usize = 64;

/// Which decompressed field a shadow-field load (`lbas`/`lbnd`/`lkey`/
/// `lloc`) extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Field {
    Base,
    Bound,
    Key,
    Lock,
}

/// One pre-resolved operation. Immediates are already widened to the
/// `u64` the execute stage adds, and PC-relative values (branch/jump
/// targets, `auipc` results, link addresses) are computed at decode
/// time — legal because a block is keyed by its entry PC and every
/// component's PC is fixed within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Lui {
        rd: Reg,
        imm: u64,
    },
    Auipc {
        rd: Reg,
        val: u64,
    },
    Jal {
        rd: Reg,
        link: u64,
        target: u64,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: u64,
        link: u64,
    },
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: u64,
    },
    Load {
        width: LoadWidth,
        rd: Reg,
        rs1: Reg,
        offset: u64,
        checked: bool,
    },
    Store {
        width: StoreWidth,
        rs1: Reg,
        rs2: Reg,
        offset: u64,
        checked: bool,
    },
    AluImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Fence,
    Bndrs {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Bndrt {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    SrfMv {
        rd: Reg,
        rs1: Reg,
    },
    SrfClr {
        rd: Reg,
    },
    Sbdl {
        rs1: Reg,
        rs2: Reg,
        offset: u64,
    },
    Sbdu {
        rs1: Reg,
        rs2: Reg,
        offset: u64,
    },
    Lbdls {
        rd: Reg,
        rs1: Reg,
        offset: u64,
    },
    Lbdus {
        rd: Reg,
        rs1: Reg,
        offset: u64,
    },
    ShadowField {
        field: Field,
        rd: Reg,
        rs1: Reg,
        offset: u64,
    },
    Tchk {
        rs1: Reg,
    },
    /// `ecall`/`csr*`/`ebreak`: environment interactions execute through
    /// [`Machine::step`] itself, so syscall, CSR-reconfiguration and
    /// breakpoint semantics can never drift from the cycle engine.
    Fallback,
    /// `sbdl rs2, off(rs1)` immediately followed by
    /// `sbdu rs2, off(rs1)` (the compiler's metadata-store idiom): one
    /// container address computation and one SRF read serve both
    /// halves.
    FusedSbd {
        rs1: Reg,
        rs2: Reg,
        offset: u64,
    },
    /// `lbdls rd, off(rs1)` + `lbdus rd, off(rs1)` (the metadata-load
    /// idiom): one container address computation serves both halves.
    FusedLbd {
        rd: Reg,
        rs1: Reg,
        offset: u64,
    },
    /// `lbdls mrd, moffset(mrs1)` + a checked load through pointer
    /// `mrd` (the bounds-check idiom: load the spatial metadata, then
    /// the checked access it guards).
    FusedLbdlsLoad {
        mrd: Reg,
        mrs1: Reg,
        moffset: u64,
        width: LoadWidth,
        rd: Reg,
        offset: u64,
    },
}

/// A decoded operation: one or two instruction components plus their
/// pre-resolved retire shapes and the raw instructions (kept for
/// telemetry classification in profiled runs).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub(crate) kind: OpKind,
    /// Component count (2 for fused superinstructions).
    pub(crate) n: u8,
    pub(crate) info: [RetireInfo; 2],
    pub(crate) raw: [Instr; 2],
}

impl Op {
    fn single(kind: OpKind, instr: Instr) -> Self {
        let info = RetireInfo::of(&instr);
        Op {
            kind,
            n: 1,
            info: [info, info],
            raw: [instr, instr],
        }
    }

    fn fused(kind: OpKind, first: Instr, second: Instr) -> Self {
        Op {
            kind,
            n: 2,
            info: [RetireInfo::of(&first), RetireInfo::of(&second)],
            raw: [first, second],
        }
    }

    /// Whether this op ends its block (control transfer).
    fn ends_block(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Jal { .. } | OpKind::Jalr { .. } | OpKind::Branch { .. }
        )
    }
}

/// A decoded basic block: the ops from the entry PC up to (and
/// including) the first control transfer, the end of the program, or
/// the size cap — plus the decode-time prefix sums the plain engine's
/// batched retirement consumes.
#[derive(Debug)]
pub(crate) struct Block {
    pub(crate) ops: Vec<Op>,
    /// Total instruction components (fused ops count 2).
    pub(crate) ncomps: u32,
    /// `prefix[k]`: summed static charges of the first `k` components.
    /// [`OpKind::Fallback`] components contribute nothing — they retire
    /// inside [`Machine::step`] itself. Length `ncomps + 1`.
    pub(crate) prefix: Vec<StaticCharges>,
    /// `load_dest[k]`: the load-use interlock arming
    /// (`Pipeline::prev_load_dest`) after `k` components have retired —
    /// what per-op retirement would have left behind. Length
    /// `ncomps + 1`; index 0 is never consulted (a flush at a seam with
    /// zero components executed leaves live state untouched).
    pub(crate) load_dest: Vec<Option<Reg>>,
}

/// Decodes the block starting at `entry` (`None` when `entry` does not
/// fetch — below base, misaligned or past the end).
fn decode_block(program: &Program, entry: u64) -> Option<Block> {
    program.fetch(entry)?;
    let mut ops = Vec::with_capacity(8);
    let mut pc = entry;
    while ops.len() < MAX_BLOCK_OPS {
        let Some(&instr) = program.fetch(pc) else {
            break;
        };
        let next = program.fetch(pc.wrapping_add(4)).copied();
        let op = decode_op(pc, instr, next);
        pc = pc.wrapping_add(4 * op.n as u64);
        let ends = op.ends_block();
        ops.push(op);
        if ends {
            break;
        }
    }

    // Static-charge prefix sums over the components. A load-use pair is
    // static when both halves are ordinary components of this block; it
    // is charged with the *consuming* component, so `prefix[k]` holds
    // exactly what retiring the first k components would have charged.
    // Pairs straddling a seam (block entry, or the component after an
    // environment instruction) stay dynamic — the previous load there
    // is not known at decode time.
    let ncomps: u32 = ops.iter().map(|op| op.n as u32).sum();
    let mut prefix = Vec::with_capacity(ncomps as usize + 1);
    let mut load_dest = Vec::with_capacity(ncomps as usize + 1);
    let mut acc = StaticCharges::default();
    prefix.push(acc);
    load_dest.push(None);
    let mut prev_dest: Option<Reg> = None;
    for op in &ops {
        if matches!(op.kind, OpKind::Fallback) {
            // Retires inside Machine::step: no static contribution, and
            // an environment instruction never arms the interlock.
            prefix.push(acc);
            load_dest.push(None);
            prev_dest = None;
            continue;
        }
        for info in &op.info[..op.n as usize] {
            if let Some(d) = prev_dest {
                if info.reads(d) {
                    acc.load_use += 1;
                }
            }
            acc.add_component(info);
            prefix.push(acc);
            load_dest.push(info.load_dest());
            prev_dest = info.load_dest();
        }
    }
    Some(Block {
        ops,
        ncomps,
        prefix,
        load_dest,
    })
}

/// Decodes one op at `pc`, fusing with `next` when a superinstruction
/// pattern matches. A jump *into* the second half of a fused pair is
/// handled naturally: blocks are keyed by entry PC, so that entry
/// decodes its own (unfused) block.
fn decode_op(pc: u64, instr: Instr, next: Option<Instr>) -> Op {
    match (instr, next) {
        (
            Instr::Sbdl { rs1, rs2, offset },
            Some(
                second @ Instr::Sbdu {
                    rs1: r1,
                    rs2: r2,
                    offset: o,
                },
            ),
        ) if r1 == rs1 && r2 == rs2 && o == offset => {
            return Op::fused(
                OpKind::FusedSbd {
                    rs1,
                    rs2,
                    offset: offset as u64,
                },
                instr,
                second,
            );
        }
        (
            Instr::Lbdls { rd, rs1, offset },
            Some(
                second @ Instr::Lbdus {
                    rd: r,
                    rs1: r1,
                    offset: o,
                },
            ),
        ) if r == rd && r1 == rs1 && o == offset => {
            return Op::fused(
                OpKind::FusedLbd {
                    rd,
                    rs1,
                    offset: offset as u64,
                },
                instr,
                second,
            );
        }
        (
            Instr::Lbdls { rd, rs1, offset },
            Some(
                second @ Instr::Load {
                    width,
                    rd: lrd,
                    rs1: lrs1,
                    offset: loff,
                    checked: true,
                },
            ),
        ) if lrs1 == rd => {
            return Op::fused(
                OpKind::FusedLbdlsLoad {
                    mrd: rd,
                    mrs1: rs1,
                    moffset: offset as u64,
                    width,
                    rd: lrd,
                    offset: loff as u64,
                },
                instr,
                second,
            );
        }
        _ => {}
    }
    let kind = match instr {
        Instr::Lui { rd, imm } => OpKind::Lui {
            rd,
            imm: imm as u64,
        },
        Instr::Auipc { rd, imm } => OpKind::Auipc {
            rd,
            val: pc.wrapping_add(imm as u64),
        },
        Instr::Jal { rd, offset } => OpKind::Jal {
            rd,
            link: pc.wrapping_add(4),
            target: pc.wrapping_add(offset as u64),
        },
        Instr::Jalr { rd, rs1, offset } => OpKind::Jalr {
            rd,
            rs1,
            offset: offset as u64,
            link: pc.wrapping_add(4),
        },
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => OpKind::Branch {
            cond,
            rs1,
            rs2,
            target: pc.wrapping_add(offset as u64),
        },
        Instr::Load {
            width,
            rd,
            rs1,
            offset,
            checked,
        } => OpKind::Load {
            width,
            rd,
            rs1,
            offset: offset as u64,
            checked,
        },
        Instr::Store {
            width,
            rs1,
            rs2,
            offset,
            checked,
        } => OpKind::Store {
            width,
            rs1,
            rs2,
            offset: offset as u64,
            checked,
        },
        Instr::AluImm { op, rd, rs1, imm } => OpKind::AluImm { op, rd, rs1, imm },
        Instr::Alu { op, rd, rs1, rs2 } => OpKind::Alu { op, rd, rs1, rs2 },
        Instr::Csr { .. } | Instr::Ecall | Instr::Ebreak => OpKind::Fallback,
        Instr::Fence => OpKind::Fence,
        Instr::Bndrs { rd, rs1, rs2 } => OpKind::Bndrs { rd, rs1, rs2 },
        Instr::Bndrt { rd, rs1, rs2 } => OpKind::Bndrt { rd, rs1, rs2 },
        Instr::SrfMv { rd, rs1 } => OpKind::SrfMv { rd, rs1 },
        Instr::SrfClr { rd } => OpKind::SrfClr { rd },
        Instr::Sbdl { rs1, rs2, offset } => OpKind::Sbdl {
            rs1,
            rs2,
            offset: offset as u64,
        },
        Instr::Sbdu { rs1, rs2, offset } => OpKind::Sbdu {
            rs1,
            rs2,
            offset: offset as u64,
        },
        Instr::Lbdls { rd, rs1, offset } => OpKind::Lbdls {
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Lbdus { rd, rs1, offset } => OpKind::Lbdus {
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Lbas { rd, rs1, offset } => OpKind::ShadowField {
            field: Field::Base,
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Lbnd { rd, rs1, offset } => OpKind::ShadowField {
            field: Field::Bound,
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Lkey { rd, rs1, offset } => OpKind::ShadowField {
            field: Field::Key,
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Lloc { rd, rs1, offset } => OpKind::ShadowField {
            field: Field::Lock,
            rd,
            rs1,
            offset: offset as u64,
        },
        Instr::Tchk { rs1 } => OpKind::Tchk { rs1 },
    };
    Op::single(kind, instr)
}

/// The validity stamp: a cache serves blocks only for the exact program
/// image it decoded them from.
type Stamp = (u64, u64, usize);

/// A cache of decoded blocks keyed by entry PC.
///
/// Storage is a slot vector direct-indexed by `(pc - base) / 4`: block
/// transitions are the hottest operation in the fast tier (every loop
/// iteration crosses one), so the lookup is a bounds check and an array
/// load — no hashing, no refcount traffic.
///
/// The cache is stamped with `(program epoch, base, len)` and flushes
/// itself whenever the machine it runs against carries a different
/// stamp — [`Machine::reload_image`] bumping the epoch is the only
/// invalidation event. Blocks are `Arc`-shared, so a cache clones
/// cheaply and crosses threads (the `hwst-serve` warm-start path stores
/// one per cached image).
///
/// Reusing a cache across *different* machines is sound exactly when
/// they run the same program image; the stamp turns a violation of that
/// contract into a flush, never into stale execution.
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    slots: Vec<Option<Arc<Block>>>,
    base: u64,
    stamp: Option<Stamp>,
    decodes: u64,
    hits: u64,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decoded blocks currently resident.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Blocks decoded so far (cache misses).
    pub fn decodes(&self) -> u64 {
        self.decodes
    }

    /// Block lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Flushes the cache if `m`'s program stamp differs from the one
    /// the resident blocks were decoded under. Called at the start of
    /// every fast run.
    pub(crate) fn revalidate(&mut self, m: &Machine) {
        let stamp = (m.program_epoch(), m.program().base(), m.program().len());
        if self.stamp != Some(stamp) {
            self.slots.clear();
            self.slots.resize(m.program().len(), None);
            self.base = m.program().base();
            self.stamp = Some(stamp);
        }
    }

    /// The block entered at `pc`, decoding it on a miss.
    ///
    /// # Errors
    ///
    /// [`Trap::BadFetch`] when `pc` does not fetch — the same trap (and
    /// the same timing point: only raised with fuel available) as the
    /// cycle engine's fetch. Below-base and misaligned PCs fail the
    /// index computation, out-of-range PCs fail the bounds check.
    pub(crate) fn block_for<'c>(&'c mut self, m: &Machine, pc: u64) -> Result<&'c Block, Trap> {
        let off = pc.wrapping_sub(self.base);
        let slot = (off >> 2) as usize;
        if off & 3 != 0 || slot >= self.slots.len() {
            return Err(Trap::BadFetch { pc });
        }
        if self.slots[slot].is_some() {
            self.hits += 1;
        } else {
            let block = decode_block(m.program(), pc).ok_or(Trap::BadFetch { pc })?;
            self.decodes += 1;
            self.slots[slot] = Some(Arc::new(block));
        }
        match self.slots[slot].as_deref() {
            Some(b) => Ok(b),
            None => Err(Trap::BadFetch { pc }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_sim::SafetyConfig;

    fn sbdl(offset: i64) -> Instr {
        Instr::Sbdl {
            rs1: Reg::T0,
            rs2: Reg::T2,
            offset,
        }
    }

    fn sbdu(offset: i64) -> Instr {
        Instr::Sbdu {
            rs1: Reg::T0,
            rs2: Reg::T2,
            offset,
        }
    }

    #[test]
    fn sbd_pair_fuses_only_on_identical_operands() {
        let p = Program::from_instrs(0x1_0000, vec![sbdl(8), sbdu(8)]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 1);
        assert_eq!(b.ops[0].n, 2);
        assert!(matches!(b.ops[0].kind, OpKind::FusedSbd { offset: 8, .. }));

        // Mismatched offsets must not fuse.
        let p = Program::from_instrs(0x1_0000, vec![sbdl(8), sbdu(16)]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 2);
        assert!(matches!(b.ops[0].kind, OpKind::Sbdl { .. }));
    }

    #[test]
    fn lbd_pair_and_checked_load_fuse() {
        let lbdls = Instr::Lbdls {
            rd: Reg::T0,
            rs1: Reg::T1,
            offset: 0,
        };
        let lbdus = Instr::Lbdus {
            rd: Reg::T0,
            rs1: Reg::T1,
            offset: 0,
        };
        let p = Program::from_instrs(0x1_0000, vec![lbdls, lbdus]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 1);
        assert!(matches!(b.ops[0].kind, OpKind::FusedLbd { .. }));

        let checked_load = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::T0,
            offset: 8,
            checked: true,
        };
        let p = Program::from_instrs(0x1_0000, vec![lbdls, checked_load]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 1);
        assert!(matches!(
            b.ops[0].kind,
            OpKind::FusedLbdlsLoad {
                mrd: Reg::T0,
                rd: Reg::T2,
                offset: 8,
                ..
            }
        ));

        // A checked load through a different pointer must not fuse.
        let other_load = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::T3,
            offset: 8,
            checked: true,
        };
        let p = Program::from_instrs(0x1_0000, vec![lbdls, other_load]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 2);

        // An unchecked load must not fuse either.
        let unchecked = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::T2,
            rs1: Reg::T0,
            offset: 8,
            checked: false,
        };
        let p = Program::from_instrs(0x1_0000, vec![lbdls, unchecked]);
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 2);
    }

    #[test]
    fn blocks_end_at_control_transfers() {
        let nop = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        };
        let p = Program::from_instrs(
            0x1_0000,
            vec![
                nop,
                Instr::Jal {
                    rd: Reg::Zero,
                    offset: -4,
                },
                nop,
            ],
        );
        let b = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(b.ops.len(), 2, "block includes the jump and stops");
        // The jump target starts its own block.
        let b = decode_block(&p, 0x1_0008).unwrap();
        assert_eq!(b.ops.len(), 1);
    }

    #[test]
    fn jump_into_a_fused_pair_decodes_unfused() {
        let p = Program::from_instrs(0x1_0000, vec![sbdl(0), sbdu(0)]);
        let whole = decode_block(&p, 0x1_0000).unwrap();
        assert_eq!(whole.ops.len(), 1);
        let half = decode_block(&p, 0x1_0004).unwrap();
        assert_eq!(half.ops.len(), 1);
        assert!(matches!(half.ops[0].kind, OpKind::Sbdu { .. }));
    }

    #[test]
    fn decode_fails_off_program() {
        let p = Program::from_instrs(0x1_0000, vec![Instr::Fence]);
        assert!(decode_block(&p, 0x1_0002).is_none(), "misaligned");
        assert!(decode_block(&p, 0x0_8000).is_none(), "below base");
        assert!(decode_block(&p, 0x1_0004).is_none(), "past the end");
    }

    #[test]
    fn revalidate_flushes_on_reload_only() {
        let prog = Program::from_instrs(0x1_0000, vec![Instr::Fence, Instr::Ebreak]);
        let image = prog.to_image();
        let mut m = Machine::new(prog, SafetyConfig::default());
        let mut cache = BlockCache::new();
        cache.revalidate(&m);
        cache.block_for(&m, 0x1_0000).unwrap();
        assert_eq!(cache.len(), 1);

        // Same stamp: nothing flushed, lookups hit.
        cache.revalidate(&m);
        assert_eq!(cache.len(), 1);
        cache.block_for(&m, 0x1_0000).unwrap();
        assert_eq!(cache.hits(), 1);

        // A reload bumps the epoch; the stale blocks must go.
        m.reload_image(0x1_0000, &image).unwrap();
        cache.revalidate(&m);
        assert_eq!(cache.len(), 0, "reload_image invalidates the cache");
        assert_eq!(cache.decodes(), 1);
    }
}
