//! Offline drop-in replacement for the subset of the `criterion` API
//! this workspace's benches use.
//!
//! The real `criterion` crate cannot be fetched in the air-gapped build
//! environment. This shim keeps the bench targets compiling and
//! runnable: each benchmark executes its routine a fixed small number
//! of times and prints the mean wall-clock duration. There is no
//! statistical analysis, HTML reporting, or CLI filtering — the benches
//! exist as smoke tests and coarse regression trackers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque identity function that defeats trivial constant folding.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing harness passed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / (b.iters as u32).max(1)
    };
    println!("bench {name:<40} {iters:>4} iters, mean {mean:?}");
}

/// Group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u64,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each routine runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; matches the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_iters: u64,
}

impl Criterion {
    fn new() -> Self {
        Criterion { default_iters: 10 }
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_iters,
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, self.default_iters, f);
        self
    }
}

/// Collects bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::__new();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Implementation detail of [`criterion_group!`].
    #[doc(hidden)]
    pub fn __new() -> Self {
        Self::new()
    }
}
