use hwst_baselines::{hwst_speedup, profile_workload, Comparator};
use hwst_workloads::{spec_suite, Scale};

fn main() {
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>8}",
        "workload", "BOGO", "WDLn", "WDLw", "HWST128"
    );
    let mut ls = [0f64; 4];
    let n = spec_suite().len() as f64;
    for wl in spec_suite() {
        let p = profile_workload(&wl.module(Scale::Test), wl.fuel(Scale::Test));
        let v = [
            Comparator::Bogo.speedup(&p),
            Comparator::WdlNarrow.speedup(&p),
            Comparator::WdlWide.speedup(&p),
            hwst_speedup(&p),
        ];
        println!(
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
            wl.name, v[0], v[1], v[2], v[3]
        );
        for i in 0..4 {
            ls[i] += v[i].ln();
        }
    }
    println!(
        "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
        "GEOMEAN",
        (ls[0] / n).exp(),
        (ls[1] / n).exp(),
        (ls[2] / n).exp(),
        (ls[3] / n).exp()
    );
    println!("paper:       1.31    1.58    1.64     3.74");
}
