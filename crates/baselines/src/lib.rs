//! # hwst-baselines
//!
//! Comparator models for the paper's Fig. 5: **BOGO** (Intel MPX spatial
//! protection extended with bound-nullification temporal safety) and
//! **WatchdogLite** in its *narrow* (scalar) and *wide* (AVX) modes.
//!
//! Both systems exist only on x86 and are closed or simulation-based, so
//! the substitution (DESIGN.md §2) models each as a **cost model over the
//! dynamic pointer-operation profile** of a workload, measured on this
//! substrate: dereference checks, through-memory metadata moves and
//! allocator events each carry the per-event cost of that architecture's
//! mechanism. The Fig. 5 metric is Eq. 8 —
//! `speedup = SBCETS_cycles / accelerated_cycles` *on the same
//! architecture* — so each comparator is paired with the corresponding
//! x86 SoftBoundCETS cost model, and HWST128's speedup is fully measured
//! on the simulator.
//!
//! ## Example
//!
//! ```no_run
//! use hwst_baselines::{profile_workload, Comparator};
//! use hwst_workloads::{Workload, Scale};
//!
//! let wl = Workload::by_name("bzip2").unwrap();
//! let p = profile_workload(&wl.module(Scale::Test), 1_000_000_000);
//! let bogo = Comparator::Bogo.speedup(&p);
//! let wide = Comparator::WdlWide.speedup(&p);
//! assert!(bogo < wide, "WDL beats MPX-based BOGO (paper §5.1)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hwst_compiler::{compile, ir::Module, Scheme};
use hwst_sim::{Machine, SafetyConfig};

/// The dynamic pointer-operation profile of one workload, measured by
/// running it on the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadProfile {
    /// Uninstrumented cycles (our core).
    pub baseline_cycles: u64,
    /// SoftBoundCETS cycles on our core (the Fig. 4 dividend).
    pub sbcets_cycles: u64,
    /// Full-HWST128 cycles on our core.
    pub hwst_cycles: u64,
    /// Dynamic dereference-check count.
    pub derefs: u64,
    /// Dynamic through-memory metadata transfers (128-bit each).
    pub ptr_moves: u64,
    /// `malloc` count.
    pub allocs: u64,
    /// `free` count.
    pub frees: u64,
}

/// Measures a workload's profile by executing it under three schemes.
///
/// # Panics
///
/// Panics if the module fails to compile or traps (profiles are for
/// well-behaved benchmarks); [`try_profile_workload`] is the
/// harness-friendly structured-error variant.
pub fn profile_workload(module: &Module, fuel: u64) -> WorkloadProfile {
    try_profile_workload(module, fuel).unwrap_or_else(|e| panic!("{e}"))
}

/// [`profile_workload`], but compile errors and traps come back as
/// `Err` instead of panicking, so a parallel sweep can record the
/// failure and keep going.
///
/// # Errors
///
/// Returns a message naming the failing scheme when the module does
/// not compile or does not run to clean exit.
pub fn try_profile_workload(module: &Module, fuel: u64) -> Result<WorkloadProfile, String> {
    let run = |scheme: Scheme, cfg: SafetyConfig| {
        let prog =
            compile(module, scheme).map_err(|e| format!("{scheme} failed to compile: {e}"))?;
        let mut m = Machine::new(prog, cfg);
        let exit = m
            .run(fuel)
            .map_err(|e| format!("{scheme} did not run clean: {e}"))?;
        Ok::<_, String>((exit.stats, m.events()))
    };
    let (base, _) = run(Scheme::None, SafetyConfig::baseline())?;
    let (sb, _) = run(Scheme::Sbcets, SafetyConfig::baseline())?;
    let (hwst, ev) = run(Scheme::Hwst128Tchk, SafetyConfig::default())?;
    Ok(WorkloadProfile {
        baseline_cycles: base.total_cycles(),
        sbcets_cycles: sb.total_cycles(),
        hwst_cycles: hwst.total_cycles(),
        derefs: hwst.checked_mem,
        ptr_moves: hwst.meta_mem / 2,
        allocs: ev.mallocs,
        frees: ev.frees + ev.invalid_frees,
    })
}

/// Per-event cost model of a safety mechanism on its own architecture
/// (cycles per dynamic event, added to the uninstrumented cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles per dereference check.
    pub per_deref: u64,
    /// Cycles per through-memory metadata transfer.
    pub per_ptr_move: u64,
    /// Cycles per allocation (metadata create/bind).
    pub per_alloc: u64,
    /// Cycles per free (metadata invalidate).
    pub per_free: u64,
}

impl CostModel {
    /// Estimated cycles for a workload profile under this mechanism.
    pub fn cycles(&self, p: &WorkloadProfile) -> u64 {
        p.baseline_cycles
            + p.derefs * self.per_deref
            + p.ptr_moves * self.per_ptr_move
            + p.allocs * self.per_alloc
            + p.frees * self.per_free
    }
}

/// SoftBoundCETS on x86 (the Fig. 5 dividend for BOGO/WDL): two check
/// calls per dereference, a metadata-map call per pointer move, wrapper
/// work per allocator event. x86 absorbs the calls better than the
/// in-order RISC-V core, hence the lower per-event costs than our
/// measured RISC-V SBCETS.
pub const SBCETS_X86: CostModel = CostModel {
    per_deref: 25,
    per_ptr_move: 33,
    per_alloc: 100,
    per_free: 100,
};

/// The Fig. 5 comparator systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparator {
    /// BOGO: Intel MPX bounds checking plus bound-nullification scans on
    /// free (partial temporal safety; the scans erode MPX's 1.52x to
    /// about 1.31x — paper §5.1).
    Bogo,
    /// WatchdogLite, scalar metadata handling.
    WdlNarrow,
    /// WatchdogLite, 256-bit AVX metadata handling.
    WdlWide,
}

impl Comparator {
    /// All comparators in Fig. 5 order.
    pub const ALL: [Comparator; 3] = [Comparator::Bogo, Comparator::WdlNarrow, Comparator::WdlWide];

    /// Display label used by the harness.
    pub const fn label(self) -> &'static str {
        match self {
            Comparator::Bogo => "BOGO",
            Comparator::WdlNarrow => "WDL (narrow)",
            Comparator::WdlWide => "WDL (wide)",
        }
    }

    /// The mechanism's cost model.
    ///
    /// * **BOGO/MPX**: `bndcl`/`bndcu` are cheap (1+1), but pointer moves
    ///   pay the two-level bounds-table walk (`bndldx`/`bndstx`), and
    ///   every `free` pays the BOGO bound-scan.
    /// * **WDL narrow**: dedicated check instructions (2/deref), scalar
    ///   4x64-bit metadata moves.
    /// * **WDL wide**: same checks, single 256-bit AVX metadata moves.
    pub const fn cost_model(self) -> CostModel {
        match self {
            Comparator::Bogo => CostModel {
                per_deref: 9,
                per_ptr_move: 25,
                per_alloc: 60,
                per_free: 460,
            },
            Comparator::WdlNarrow => CostModel {
                per_deref: 9,
                per_ptr_move: 18,
                per_alloc: 60,
                per_free: 60,
            },
            Comparator::WdlWide => CostModel {
                per_deref: 9,
                per_ptr_move: 16,
                per_alloc: 55,
                per_free: 55,
            },
        }
    }

    /// Eq. 8 speedup over SoftBoundCETS (x86 context).
    pub fn speedup(self, p: &WorkloadProfile) -> f64 {
        SBCETS_X86.cycles(p) as f64 / self.cost_model().cycles(p) as f64
    }
}

impl std::fmt::Display for Comparator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// HWST128's Eq. 8 speedup — fully measured on the simulator.
pub fn hwst_speedup(p: &WorkloadProfile) -> f64 {
    p.sbcets_cycles as f64 / p.hwst_cycles as f64
}

/// Analytic cost models for the four zoo designs (experiment Z1,
/// DESIGN.md §4l) — the same per-event substitution the Fig. 5
/// comparators use, with constants derived from each paper's mechanism
/// on our in-order core:
///
/// * **RV-CURE** validates the capability inline on every check, so a
///   dereference pays the (uncached) lock/tag-word access; metadata
///   propagation is a hardware shadow pair.
/// * **HeapSafe** keeps the cached tag fast path and binds only heap
///   objects, so its allocator events are the only place it differs
///   from a bare tag check.
/// * **CryptSan** authenticates in software on every dereference
///   (load + compare + branch) and spills only the 2-word liveness pair
///   on pointer moves.
/// * **L4 Pointer** runs the full inline compare+branch spatial and
///   temporal sequences and moves all four metadata words — the most
///   software work per event, but with no call overhead (unlike
///   SoftBoundCETS at `-O0`).
///
/// The constants are *calibrated*, not measured: the zoo bench gate
/// (`tests/zoo.rs`) checks each model's predicted overhead geomean
/// against the measured instrumentation within the tolerance stated in
/// DESIGN.md §4l.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooCost {
    /// RV-CURE capability tags (arXiv:2308.02945).
    RvCure,
    /// L4 Pointer software wide pointers (arXiv:2302.06819).
    L4Pointer,
    /// CryptSan PAC-style pointer signing (arXiv:2202.08669).
    CryptSan,
    /// HeapSafe heap-only tagging (arXiv:2105.08712).
    HeapSafe,
}

impl ZooCost {
    /// All zoo cost models, in Z1 row order.
    pub const ALL: [ZooCost; 4] = [
        ZooCost::RvCure,
        ZooCost::L4Pointer,
        ZooCost::CryptSan,
        ZooCost::HeapSafe,
    ];

    /// Display label (matches the scheme/detector labels).
    pub const fn label(self) -> &'static str {
        match self {
            ZooCost::RvCure => "RV-CURE",
            ZooCost::L4Pointer => "L4Pointer",
            ZooCost::CryptSan => "CryptSan",
            ZooCost::HeapSafe => "HeapSafe",
        }
    }

    /// The mechanism's per-event cost model (see the type-level doc).
    pub const fn cost_model(self) -> CostModel {
        match self {
            ZooCost::RvCure => CostModel {
                per_deref: 6,
                per_ptr_move: 3,
                per_alloc: 85,
                per_free: 85,
            },
            ZooCost::L4Pointer => CostModel {
                per_deref: 29,
                per_ptr_move: 17,
                per_alloc: 100,
                per_free: 115,
            },
            ZooCost::CryptSan => CostModel {
                per_deref: 14,
                per_ptr_move: 9,
                per_alloc: 100,
                per_free: 115,
            },
            ZooCost::HeapSafe => CostModel {
                per_deref: 5,
                per_ptr_move: 3,
                per_alloc: 85,
                per_free: 85,
            },
        }
    }

    /// Model-predicted Eq. 7 overhead (percent over baseline) for a
    /// measured workload profile.
    pub fn overhead_pct(self, p: &WorkloadProfile) -> f64 {
        (self.cost_model().cycles(p) as f64 / p.baseline_cycles as f64 - 1.0) * 100.0
    }
}

impl std::fmt::Display for ZooCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            baseline_cycles: 100_000,
            sbcets_cycles: 500_000,
            hwst_cycles: 150_000,
            derefs: 4_000,
            ptr_moves: 1_500,
            allocs: 60,
            frees: 60,
        }
    }

    #[test]
    fn comparator_ordering_matches_fig5() {
        let p = profile();
        let bogo = Comparator::Bogo.speedup(&p);
        let narrow = Comparator::WdlNarrow.speedup(&p);
        let wide = Comparator::WdlWide.speedup(&p);
        let hwst = hwst_speedup(&p);
        assert!(bogo < narrow, "BOGO {bogo:.2} < WDL narrow {narrow:.2}");
        assert!(narrow < wide, "narrow {narrow:.2} < wide {wide:.2}");
        assert!(wide < hwst, "wide {wide:.2} < HWST128 {hwst:.2}");
        assert!(bogo > 1.0, "every accelerator beats software");
    }

    #[test]
    fn free_heavy_profiles_hurt_bogo_most() {
        let light = profile();
        let heavy = WorkloadProfile {
            frees: 2_000,
            allocs: 2_000,
            ..light
        };
        let drop_bogo = Comparator::Bogo.speedup(&light) - Comparator::Bogo.speedup(&heavy);
        let drop_wide = Comparator::WdlWide.speedup(&light) - Comparator::WdlWide.speedup(&heavy);
        assert!(
            drop_bogo > drop_wide,
            "BOGO's free-scan must dominate: {drop_bogo:.3} vs {drop_wide:.3}"
        );
    }

    #[test]
    fn cost_model_is_linear_in_events() {
        let m = Comparator::WdlNarrow.cost_model();
        let p = profile();
        let doubled = WorkloadProfile {
            derefs: p.derefs * 2,
            ptr_moves: p.ptr_moves * 2,
            allocs: p.allocs * 2,
            frees: p.frees * 2,
            ..p
        };
        let extra = m.cycles(&doubled) - m.cycles(&p);
        let first = m.cycles(&p) - p.baseline_cycles;
        assert_eq!(extra, first);
    }

    #[test]
    fn zoo_cost_ordering_matches_measured_frontier() {
        // The Z1 frontier ordering must hold for any pointer-heavy
        // profile: hardware tagging (HeapSafe, RV-CURE) under the
        // software signers (CryptSan), under the full wide-pointer
        // scheme (L4 Pointer), all under SoftBoundCETS-at-`-O0`.
        let p = profile();
        let oh = |z: ZooCost| z.overhead_pct(&p);
        let sbcets = (p.sbcets_cycles as f64 / p.baseline_cycles as f64 - 1.0) * 100.0;
        assert!(oh(ZooCost::HeapSafe) <= oh(ZooCost::RvCure));
        assert!(oh(ZooCost::RvCure) < oh(ZooCost::CryptSan));
        assert!(oh(ZooCost::CryptSan) < oh(ZooCost::L4Pointer));
        assert!(
            oh(ZooCost::L4Pointer) < sbcets,
            "L4 Pointer avoids the -O0 call overhead: {:.1} vs {sbcets:.1}",
            oh(ZooCost::L4Pointer)
        );
    }

    #[test]
    fn zoo_models_track_published_shape() {
        // Per-event dominance mirrors each paper's mechanism: software
        // designs pay more per dereference and per pointer move than the
        // hardware ones, and the wide-pointer scheme pays the most.
        let per_deref = |z: ZooCost| z.cost_model().per_deref;
        assert!(per_deref(ZooCost::HeapSafe) <= per_deref(ZooCost::RvCure));
        assert!(per_deref(ZooCost::RvCure) < per_deref(ZooCost::CryptSan));
        assert!(per_deref(ZooCost::CryptSan) < per_deref(ZooCost::L4Pointer));
        let per_move = |z: ZooCost| z.cost_model().per_ptr_move;
        assert!(per_move(ZooCost::CryptSan) < per_move(ZooCost::L4Pointer));
    }
}
