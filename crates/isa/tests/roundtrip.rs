//! Property tests: every constructible instruction encodes and decodes
//! losslessly.

use hwst_isa::{decode, AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, Reg, StoreWidth};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn any_load_width() -> impl Strategy<Value = LoadWidth> {
    prop_oneof![
        Just(LoadWidth::B),
        Just(LoadWidth::H),
        Just(LoadWidth::W),
        Just(LoadWidth::D),
        Just(LoadWidth::Bu),
        Just(LoadWidth::Hu),
        Just(LoadWidth::Wu),
    ]
}

fn any_store_width() -> impl Strategy<Value = StoreWidth> {
    prop_oneof![
        Just(StoreWidth::B),
        Just(StoreWidth::H),
        Just(StoreWidth::W),
        Just(StoreWidth::D),
    ]
}

fn any_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Sltiu),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Addiw),
    ]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
        Just(AluOp::Addw),
        Just(AluOp::Subw),
        Just(AluOp::Sllw),
        Just(AluOp::Srlw),
        Just(AluOp::Sraw),
        Just(AluOp::Mulw),
        Just(AluOp::Divw),
        Just(AluOp::Divuw),
        Just(AluOp::Remw),
        Just(AluOp::Remuw),
    ]
}

fn i_imm() -> impl Strategy<Value = i64> {
    -2048i64..=2047
}

prop_compose! {
    fn any_instr()(
        pick in 0u8..34,
        rd in any_reg(),
        rs1 in any_reg(),
        rs2 in any_reg(),
        cond in any_branch_cond(),
        lw in any_load_width(),
        sw in any_store_width(),
        aio in any_alu_imm_op(),
        ao in any_alu_op(),
        imm in i_imm(),
        uimm in (-524288i64..=524287).prop_map(|v| v << 12),
        boff in (-2048i64..=2047).prop_map(|v| v * 2),
        joff in (-524288i64..=524287).prop_map(|v| v * 2),
        shamt64 in 0i64..64,
        shamt32 in 0i64..32,
        csr_addr in 0u16..0x1000,
        checked in any::<bool>(),
    ) -> Instr {
        match pick {
            0 => Instr::Lui { rd, imm: uimm },
            1 => Instr::Auipc { rd, imm: uimm },
            2 => Instr::Jal { rd, offset: joff },
            3 => Instr::Jalr { rd, rs1, offset: imm },
            4 => Instr::Branch { cond, rs1, rs2, offset: boff },
            5 => Instr::Load { width: lw, rd, rs1, offset: imm, checked },
            6 => Instr::Store { width: sw, rs1, rs2, offset: imm, checked },
            7 => Instr::AluImm { op: aio, rd, rs1, imm },
            8 => Instr::AluImm { op: AluImmOp::Slli, rd, rs1, imm: shamt64 },
            9 => Instr::AluImm { op: AluImmOp::Srli, rd, rs1, imm: shamt64 },
            10 => Instr::AluImm { op: AluImmOp::Srai, rd, rs1, imm: shamt64 },
            11 => Instr::AluImm { op: AluImmOp::Slliw, rd, rs1, imm: shamt32 },
            12 => Instr::AluImm { op: AluImmOp::Srliw, rd, rs1, imm: shamt32 },
            13 => Instr::AluImm { op: AluImmOp::Sraiw, rd, rs1, imm: shamt32 },
            14 => Instr::Alu { op: ao, rd, rs1, rs2 },
            15 => Instr::Csr { op: CsrOp::Rw, rd, rs1, csr: csr_addr },
            16 => Instr::Bndrs { rd, rs1, rs2 },
            17 => Instr::Bndrt { rd, rs1, rs2 },
            18 => Instr::Sbdl { rs1, rs2, offset: imm },
            19 => Instr::Sbdu { rs1, rs2, offset: imm },
            20 => Instr::Lbdls { rd, rs1, offset: imm },
            21 => Instr::Lbas { rd, rs1, offset: imm },
            22 => Instr::Tchk { rs1 },
            23 => Instr::SrfMv { rd, rs1 },
            24 => Instr::Lbdus { rd, rs1, offset: imm },
            25 => Instr::Lbnd { rd, rs1, offset: imm },
            26 => Instr::Lkey { rd, rs1, offset: imm },
            27 => Instr::Lloc { rd, rs1, offset: imm },
            28 => Instr::SrfClr { rd },
            29 => Instr::Csr { op: CsrOp::Rs, rd, rs1, csr: csr_addr },
            30 => Instr::Csr { op: CsrOp::Rc, rd, rs1, csr: csr_addr },
            31 => Instr::Ecall,
            32 => Instr::Ebreak,
            _ => Instr::Fence,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let word = instr.encode();
        let back = decode(word).expect("encoded instruction must decode");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn disassembly_nonempty_and_stable(instr in any_instr()) {
        let s = instr.to_string();
        prop_assert!(!s.is_empty());
        // Disassembly must be deterministic.
        prop_assert_eq!(s, instr.to_string());
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_random_words_reencode_to_same_word(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            // Canonical instructions re-encode identically except for
            // don't-care fields; check the decode of the re-encode agrees.
            let again = decode(i.encode()).expect("re-encode must decode");
            prop_assert_eq!(again, i);
        }
    }
}

/// Exhaustive sweep of a large sample of the instruction-word space:
/// decode never panics, and anything that decodes re-encodes to a word
/// that decodes to the same instruction. `#[ignore]`d by default (run
/// with `--ignored` in release mode; covers 2^26 words).
#[test]
#[ignore = "2^26-word sweep; run with --ignored in release mode"]
fn decode_sweep_is_total_and_stable() {
    let mut decoded = 0u64;
    // Stride the 32-bit space with a odd multiplier for coverage of all
    // opcode/funct combinations.
    for i in 0u64..(1 << 26) {
        let w = (i.wrapping_mul(64 + 1)) as u32;
        if let Ok(instr) = decode(w) {
            decoded += 1;
            let again = decode(instr.encode()).expect("re-encode decodes");
            assert_eq!(again, instr, "word {w:#010x}");
        }
    }
    assert!(decoded > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// The assembler inverts the disassembler: for every constructible
    /// instruction, `assemble(disasm(i))` yields `i` back.
    #[test]
    fn assembler_inverts_disassembler(instr in any_instr()) {
        // Skip CSR (disassembly prints symbolic names the assembler reads
        // back only for known CSRs) and large-immediate Lui/Auipc (the
        // textual form divides by 4096; still bijective, asserted below).
        let text = instr.to_string();
        let prog = hwst_isa::asm::assemble(0, &text)
            .unwrap_or_else(|e| panic!("{text:?}: {e}"));
        prop_assert_eq!(prog.len(), 1, "{} expanded", text);
        prop_assert_eq!(prog.instrs()[0], instr, "{}", text);
    }
}
