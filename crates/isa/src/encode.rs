//! Binary instruction encoding.

use crate::instr::{AluImmOp, AluOp, Instr};
use crate::Reg;

// Major opcodes (RISC-V base opcode map).
pub(crate) const OP_LUI: u32 = 0b0110111;
pub(crate) const OP_AUIPC: u32 = 0b0010111;
pub(crate) const OP_JAL: u32 = 0b1101111;
pub(crate) const OP_JALR: u32 = 0b1100111;
pub(crate) const OP_BRANCH: u32 = 0b1100011;
pub(crate) const OP_LOAD: u32 = 0b0000011;
pub(crate) const OP_STORE: u32 = 0b0100011;
pub(crate) const OP_OP_IMM: u32 = 0b0010011;
pub(crate) const OP_OP: u32 = 0b0110011;
pub(crate) const OP_OP_IMM_32: u32 = 0b0011011;
pub(crate) const OP_OP_32: u32 = 0b0111011;
pub(crate) const OP_SYSTEM: u32 = 0b1110011;
pub(crate) const OP_MISC_MEM: u32 = 0b0001111;
/// custom-0: HWST128 metadata loads and `tchk`.
pub(crate) const OP_CUSTOM0: u32 = 0b0001011;
/// custom-1: HWST128 binds, SRF ops and metadata stores.
pub(crate) const OP_CUSTOM1: u32 = 0b0101011;
/// custom-2: HWST128 bounded (checked) loads.
pub(crate) const OP_CUSTOM2: u32 = 0b1011011;
/// custom-3: HWST128 bounded (checked) stores.
pub(crate) const OP_CUSTOM3: u32 = 0b1111011;

// custom-0 funct3 assignments.
pub(crate) const F3_LBDLS: u32 = 0b000;
pub(crate) const F3_LBDUS: u32 = 0b001;
pub(crate) const F3_LBAS: u32 = 0b010;
pub(crate) const F3_LBND: u32 = 0b011;
pub(crate) const F3_LKEY: u32 = 0b100;
pub(crate) const F3_LLOC: u32 = 0b101;
pub(crate) const F3_TCHK: u32 = 0b110;

// custom-1 funct3/funct7 assignments.
pub(crate) const F3_SRFOP: u32 = 0b000;
pub(crate) const F3_SBDL: u32 = 0b001;
pub(crate) const F3_SBDU: u32 = 0b010;
pub(crate) const F7_BNDRS: u32 = 0b0000000;
pub(crate) const F7_BNDRT: u32 = 0b0000001;
pub(crate) const F7_SRFMV: u32 = 0b0000010;
pub(crate) const F7_SRFCLR: u32 = 0b0000011;

fn r(opcode: u32, funct3: u32, funct7: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (funct7 << 25)
}

fn i(opcode: u32, funct3: u32, rd: Reg, rs1: Reg, imm: i64) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm out of range: {imm}");
    opcode
        | ((rd.index() as u32) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | (((imm as u32) & 0xfff) << 20)
}

fn s(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i64) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm out of range: {imm}");
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

fn b(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, offset: i64) -> u32 {
    debug_assert!(
        (-4096..=4094).contains(&offset) && offset % 2 == 0,
        "B-offset out of range: {offset}"
    );
    let o = offset as u32;
    opcode
        | (((o >> 11) & 1) << 7)
        | (((o >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | ((rs1.index() as u32) << 15)
        | ((rs2.index() as u32) << 20)
        | (((o >> 5) & 0x3f) << 25)
        | (((o >> 12) & 1) << 31)
}

fn u(opcode: u32, rd: Reg, imm: i64) -> u32 {
    debug_assert!(imm % 4096 == 0, "U-imm must have low 12 bits clear");
    opcode | ((rd.index() as u32) << 7) | ((imm as u32) & 0xffff_f000)
}

fn j(opcode: u32, rd: Reg, offset: i64) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "J-offset out of range: {offset}"
    );
    let o = offset as u32;
    opcode
        | ((rd.index() as u32) << 7)
        | (((o >> 12) & 0xff) << 12)
        | (((o >> 11) & 1) << 20)
        | (((o >> 1) & 0x3ff) << 21)
        | (((o >> 20) & 1) << 31)
}

impl Instr {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Panics
    ///
    /// Debug builds panic if an immediate/offset exceeds the encodable
    /// range of its format (the compiler back-end guarantees ranges by
    /// construction).
    pub fn encode(self) -> u32 {
        match self {
            Instr::Lui { rd, imm } => u(OP_LUI, rd, imm),
            Instr::Auipc { rd, imm } => u(OP_AUIPC, rd, imm),
            Instr::Jal { rd, offset } => j(OP_JAL, rd, offset),
            Instr::Jalr { rd, rs1, offset } => i(OP_JALR, 0, rd, rs1, offset),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => b(OP_BRANCH, cond.funct3(), rs1, rs2, offset),
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
                checked,
            } => {
                let op = if checked { OP_CUSTOM2 } else { OP_LOAD };
                i(op, width.funct3(), rd, rs1, offset)
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
                checked,
            } => {
                let op = if checked { OP_CUSTOM3 } else { OP_STORE };
                s(op, width.funct3(), rs1, rs2, offset)
            }
            Instr::AluImm { op, rd, rs1, imm } => encode_alu_imm(op, rd, rs1, imm),
            Instr::Alu { op, rd, rs1, rs2 } => encode_alu(op, rd, rs1, rs2),
            Instr::Csr { op, rd, rs1, csr } => {
                // CSR address is an unsigned 12-bit field in the I-imm slot.
                OP_SYSTEM
                    | ((rd.index() as u32) << 7)
                    | (op.funct3() << 12)
                    | ((rs1.index() as u32) << 15)
                    | (((csr as u32) & 0xfff) << 20)
            }
            Instr::Ecall => OP_SYSTEM,
            Instr::Ebreak => OP_SYSTEM | (1 << 20),
            Instr::Fence => OP_MISC_MEM,
            Instr::Bndrs { rd, rs1, rs2 } => r(OP_CUSTOM1, F3_SRFOP, F7_BNDRS, rd, rs1, rs2),
            Instr::Bndrt { rd, rs1, rs2 } => r(OP_CUSTOM1, F3_SRFOP, F7_BNDRT, rd, rs1, rs2),
            Instr::SrfMv { rd, rs1 } => r(OP_CUSTOM1, F3_SRFOP, F7_SRFMV, rd, rs1, Reg::Zero),
            Instr::SrfClr { rd } => r(OP_CUSTOM1, F3_SRFOP, F7_SRFCLR, rd, Reg::Zero, Reg::Zero),
            Instr::Sbdl { rs1, rs2, offset } => s(OP_CUSTOM1, F3_SBDL, rs1, rs2, offset),
            Instr::Sbdu { rs1, rs2, offset } => s(OP_CUSTOM1, F3_SBDU, rs1, rs2, offset),
            Instr::Lbdls { rd, rs1, offset } => i(OP_CUSTOM0, F3_LBDLS, rd, rs1, offset),
            Instr::Lbdus { rd, rs1, offset } => i(OP_CUSTOM0, F3_LBDUS, rd, rs1, offset),
            Instr::Lbas { rd, rs1, offset } => i(OP_CUSTOM0, F3_LBAS, rd, rs1, offset),
            Instr::Lbnd { rd, rs1, offset } => i(OP_CUSTOM0, F3_LBND, rd, rs1, offset),
            Instr::Lkey { rd, rs1, offset } => i(OP_CUSTOM0, F3_LKEY, rd, rs1, offset),
            Instr::Lloc { rd, rs1, offset } => i(OP_CUSTOM0, F3_LLOC, rd, rs1, offset),
            Instr::Tchk { rs1 } => i(OP_CUSTOM0, F3_TCHK, Reg::Zero, rs1, 0),
        }
    }
}

fn encode_alu_imm(op: AluImmOp, rd: Reg, rs1: Reg, imm: i64) -> u32 {
    use AluImmOp::*;
    let (opcode, funct3) = match op {
        Addi => (OP_OP_IMM, 0b000),
        Slti => (OP_OP_IMM, 0b010),
        Sltiu => (OP_OP_IMM, 0b011),
        Xori => (OP_OP_IMM, 0b100),
        Ori => (OP_OP_IMM, 0b110),
        Andi => (OP_OP_IMM, 0b111),
        Slli => (OP_OP_IMM, 0b001),
        Srli | Srai => (OP_OP_IMM, 0b101),
        Addiw => (OP_OP_IMM_32, 0b000),
        Slliw => (OP_OP_IMM_32, 0b001),
        Srliw | Sraiw => (OP_OP_IMM_32, 0b101),
    };
    match op {
        Slli | Srli | Srai => {
            debug_assert!((0..64).contains(&imm), "RV64 shamt out of range");
            let hi = if op == Srai { 0b010000u32 << 26 } else { 0 };
            i(opcode, funct3, rd, rs1, imm & 0x3f) | hi
        }
        Slliw | Srliw | Sraiw => {
            debug_assert!((0..32).contains(&imm), "RV32 shamt out of range");
            let hi = if op == Sraiw { 0b0100000u32 << 25 } else { 0 };
            i(opcode, funct3, rd, rs1, imm & 0x1f) | hi
        }
        _ => i(opcode, funct3, rd, rs1, imm),
    }
}

fn encode_alu(op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    use AluOp::*;
    let (opcode, funct3, funct7) = match op {
        Add => (OP_OP, 0b000, 0b0000000),
        Sub => (OP_OP, 0b000, 0b0100000),
        Sll => (OP_OP, 0b001, 0b0000000),
        Slt => (OP_OP, 0b010, 0b0000000),
        Sltu => (OP_OP, 0b011, 0b0000000),
        Xor => (OP_OP, 0b100, 0b0000000),
        Srl => (OP_OP, 0b101, 0b0000000),
        Sra => (OP_OP, 0b101, 0b0100000),
        Or => (OP_OP, 0b110, 0b0000000),
        And => (OP_OP, 0b111, 0b0000000),
        Mul => (OP_OP, 0b000, 0b0000001),
        Mulh => (OP_OP, 0b001, 0b0000001),
        Mulhsu => (OP_OP, 0b010, 0b0000001),
        Mulhu => (OP_OP, 0b011, 0b0000001),
        Div => (OP_OP, 0b100, 0b0000001),
        Divu => (OP_OP, 0b101, 0b0000001),
        Rem => (OP_OP, 0b110, 0b0000001),
        Remu => (OP_OP, 0b111, 0b0000001),
        Addw => (OP_OP_32, 0b000, 0b0000000),
        Subw => (OP_OP_32, 0b000, 0b0100000),
        Sllw => (OP_OP_32, 0b001, 0b0000000),
        Srlw => (OP_OP_32, 0b101, 0b0000000),
        Sraw => (OP_OP_32, 0b101, 0b0100000),
        Mulw => (OP_OP_32, 0b000, 0b0000001),
        Divw => (OP_OP_32, 0b100, 0b0000001),
        Divuw => (OP_OP_32, 0b101, 0b0000001),
        Remw => (OP_OP_32, 0b110, 0b0000001),
        Remuw => (OP_OP_32, 0b111, 0b0000001),
    };
    r(opcode, funct3, funct7, rd, rs1, rs2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BranchCond, CsrOp, LoadWidth, StoreWidth};

    #[test]
    fn known_encodings_match_spec() {
        // addi a0, zero, 1  => 0x00100513
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::A0,
            rs1: Reg::Zero,
            imm: 1,
        };
        assert_eq!(i.encode(), 0x0010_0513);
        // add a0, a1, a2 => 0x00c58533
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.encode(), 0x00c5_8533);
        // ld a0, 8(sp) => 0x00813503
        let i = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::Sp,
            offset: 8,
            checked: false,
        };
        assert_eq!(i.encode(), 0x0081_3503);
        // sd a0, 8(sp) => 0x00a13423
        let i = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::Sp,
            rs2: Reg::A0,
            offset: 8,
            checked: false,
        };
        assert_eq!(i.encode(), 0x00a1_3423);
        // ecall => 0x00000073
        assert_eq!(Instr::Ecall.encode(), 0x0000_0073);
        // ebreak => 0x00100073
        assert_eq!(Instr::Ebreak.encode(), 0x0010_0073);
    }

    #[test]
    fn branch_offset_bits() {
        // beq zero, zero, -4 (backwards loop)
        let i = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
            offset: -4,
        };
        // From the spec: beq x0,x0,-4 = 0xfe000ee3
        assert_eq!(i.encode(), 0xfe00_0ee3);
    }

    #[test]
    fn jal_offset_bits() {
        // jal ra, 8 => 0x008000ef
        let i = Instr::Jal {
            rd: Reg::Ra,
            offset: 8,
        };
        assert_eq!(i.encode(), 0x0080_00ef);
    }

    #[test]
    fn srai_sets_high_funct_bits() {
        let srli = Instr::AluImm {
            op: AluImmOp::Srli,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 3,
        };
        let srai = Instr::AluImm {
            op: AluImmOp::Srai,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 3,
        };
        assert_ne!(srli.encode(), srai.encode());
        assert_eq!(srai.encode() >> 26, 0b010000);
    }

    #[test]
    fn csr_encoding_places_address() {
        let i = Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::A0,
            rs1: Reg::A1,
            csr: 0x8C0,
        };
        let w = i.encode();
        assert_eq!(w >> 20, 0x8C0);
        assert_eq!((w >> 12) & 7, 0b001);
    }

    #[test]
    fn hwst_opcodes_live_in_custom_space() {
        let cases = [
            Instr::Bndrs {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::Bndrt {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::Sbdl {
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0,
            },
            Instr::Lbdls {
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 0,
            },
            Instr::Tchk { rs1: Reg::A0 },
        ];
        for c in cases {
            let op = c.encode() & 0x7f;
            assert!(
                op == OP_CUSTOM0 || op == OP_CUSTOM1,
                "{c:?} must encode into a custom opcode, got {op:#x}"
            );
        }
        let checked_load = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true,
        };
        assert_eq!(checked_load.encode() & 0x7f, OP_CUSTOM2);
        let checked_store = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::A1,
            rs2: Reg::A0,
            offset: 0,
            checked: true,
        };
        assert_eq!(checked_store.encode() & 0x7f, OP_CUSTOM3);
    }
}
