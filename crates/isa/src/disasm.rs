//! Disassembly (`Display`) for instructions.

use crate::instr::{AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, StoreWidth};
use std::fmt;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Instr::Auipc { rd, imm } => {
                write!(f, "auipc {rd}, {:#x}", imm >> 12)
            }
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => {
                write!(f, "jalr {rd}, {offset}({rs1})")
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let m = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {offset}")
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
                checked,
            } => {
                let base = match width {
                    LoadWidth::B => "lb",
                    LoadWidth::H => "lh",
                    LoadWidth::W => "lw",
                    LoadWidth::D => "ld",
                    LoadWidth::Bu => "lbu",
                    LoadWidth::Hu => "lhu",
                    LoadWidth::Wu => "lwu",
                };
                if checked {
                    write!(f, "c{base} {rd}, {offset}({rs1})")
                } else {
                    write!(f, "{base} {rd}, {offset}({rs1})")
                }
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
                checked,
            } => {
                let base = match width {
                    StoreWidth::B => "sb",
                    StoreWidth::H => "sh",
                    StoreWidth::W => "sw",
                    StoreWidth::D => "sd",
                };
                if checked {
                    write!(f, "c{base} {rs2}, {offset}({rs1})")
                } else {
                    write!(f, "{base} {rs2}, {offset}({rs1})")
                }
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Sltiu => "sltiu",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Andi => "andi",
                    AluImmOp::Slli => "slli",
                    AluImmOp::Srli => "srli",
                    AluImmOp::Srai => "srai",
                    AluImmOp::Addiw => "addiw",
                    AluImmOp::Slliw => "slliw",
                    AluImmOp::Srliw => "srliw",
                    AluImmOp::Sraiw => "sraiw",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhsu => "mulhsu",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                    AluOp::Addw => "addw",
                    AluOp::Subw => "subw",
                    AluOp::Sllw => "sllw",
                    AluOp::Srlw => "srlw",
                    AluOp::Sraw => "sraw",
                    AluOp::Mulw => "mulw",
                    AluOp::Divw => "divw",
                    AluOp::Divuw => "divuw",
                    AluOp::Remw => "remw",
                    AluOp::Remuw => "remuw",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::Csr { op, rd, rs1, csr } => {
                let m = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                match crate::csr::name(csr) {
                    Some(n) => write!(f, "{m} {rd}, {n}, {rs1}"),
                    None => write!(f, "{m} {rd}, {csr:#x}, {rs1}"),
                }
            }
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Fence => f.write_str("fence"),
            Instr::Bndrs { rd, rs1, rs2 } => {
                write!(f, "bndrs {rd}, {rs1}, {rs2}")
            }
            Instr::Bndrt { rd, rs1, rs2 } => {
                write!(f, "bndrt {rd}, {rs1}, {rs2}")
            }
            Instr::Sbdl { rs1, rs2, offset } => {
                write!(f, "sbdl {rs2}, {offset}({rs1})")
            }
            Instr::Sbdu { rs1, rs2, offset } => {
                write!(f, "sbdu {rs2}, {offset}({rs1})")
            }
            Instr::Lbdls { rd, rs1, offset } => {
                write!(f, "lbdls {rd}, {offset}({rs1})")
            }
            Instr::Lbdus { rd, rs1, offset } => {
                write!(f, "lbdus {rd}, {offset}({rs1})")
            }
            Instr::Lbas { rd, rs1, offset } => {
                write!(f, "lbas {rd}, {offset}({rs1})")
            }
            Instr::Lbnd { rd, rs1, offset } => {
                write!(f, "lbnd {rd}, {offset}({rs1})")
            }
            Instr::Lkey { rd, rs1, offset } => {
                write!(f, "lkey {rd}, {offset}({rs1})")
            }
            Instr::Lloc { rd, rs1, offset } => {
                write!(f, "lloc {rd}, {offset}({rs1})")
            }
            Instr::Tchk { rs1 } => write!(f, "tchk {rs1}"),
            Instr::SrfMv { rd, rs1 } => write!(f, "srfmv {rd}, {rs1}"),
            Instr::SrfClr { rd } => write!(f, "srfclr {rd}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn mnemonics() {
        assert_eq!(
            Instr::Bndrs {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
            .to_string(),
            "bndrs a0, a1, a2"
        );
        assert_eq!(Instr::Tchk { rs1: Reg::S1 }.to_string(), "tchk s1");
        assert_eq!(
            Instr::Load {
                width: LoadWidth::D,
                rd: Reg::A0,
                rs1: Reg::Sp,
                offset: 16,
                checked: true
            }
            .to_string(),
            "cld a0, 16(sp)"
        );
        assert_eq!(
            Instr::Sbdl {
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 0
            }
            .to_string(),
            "sbdl a1, 0(a0)"
        );
        assert_eq!(
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::Zero,
                rs1: Reg::A0,
                csr: crate::csr::HWST_SM_OFFSET
            }
            .to_string(),
            "csrrw zero, hwst.smoffset, a0"
        );
    }

    #[test]
    fn display_is_never_empty() {
        // C-DEBUG-NONEMPTY analogue for the disassembler.
        for i in [Instr::Ecall, Instr::Ebreak, Instr::Fence] {
            assert!(!i.to_string().is_empty());
        }
    }
}
