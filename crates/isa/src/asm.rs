//! A two-pass textual assembler for RV64IM + HWST128.
//!
//! Accepts the subset of GNU-style RISC-V assembly this ISA defines,
//! plus the HWST128 mnemonics, labels and a few pseudo-instructions:
//!
//! ```text
//!     li   a0, 64          # pseudo: materialise immediate
//!     mv   a1, a0          # pseudo: addi a1, a0, 0
//! loop:
//!     addi a0, a0, -1
//!     bnez a0, loop        # pseudo: bne a0, zero, loop
//!     bndrs a2, a3, a4     # HWST128: bind spatial metadata
//!     cld  t0, 8(a2)       # HWST128: bounded load
//!     tchk a2              # HWST128: temporal check
//!     ecall
//! ```
//!
//! Branch/jump targets may be labels or immediate byte offsets.

use crate::instr::{AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, StoreWidth};
use crate::{Program, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles source text into a [`Program`] loaded at `base`.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered (unknown mnemonic or
/// register, malformed operand, undefined label, out-of-range
/// immediate).
///
/// # Example
///
/// ```
/// use hwst_isa::asm::assemble;
///
/// let prog = assemble(0x1_0000, "
///     li   a0, 7
///     li   a7, 93
///     ecall
/// ").unwrap();
/// assert_eq!(prog.len(), 3);
/// ```
pub fn assemble(base: u64, source: &str) -> Result<Program, AsmError> {
    // Pass 1: collect labels by statement index (li expands to a known
    // length, so measure expansion).
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut word_index = 0u64;
    let statements: Vec<(usize, String)> = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_string()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    for (line, stmt) in &statements {
        let mut rest = stmt.as_str();
        while let Some(idx) = rest.find(':') {
            let (label, tail) = rest.split_at(idx);
            let label = label.trim();
            if label.is_empty() || !is_ident(label) {
                return Err(err(*line, format!("bad label {label:?}")));
            }
            if labels
                .insert(label.to_string(), base + word_index * 4)
                .is_some()
            {
                return Err(err(*line, format!("duplicate label {label}")));
            }
            rest = tail[1..].trim_start();
        }
        if !rest.is_empty() {
            word_index += statement_len(*line, rest)? as u64;
        }
    }

    // Pass 2: encode.
    let mut out = Vec::new();
    for (line, stmt) in &statements {
        let mut rest = stmt.as_str();
        while let Some(idx) = rest.find(':') {
            rest = rest[idx + 1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        let pc = base + out.len() as u64 * 4;
        encode_statement(*line, rest, pc, &labels, &mut out)?;
    }
    Ok(Program::from_instrs(base, out))
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn strip_comment(l: &str) -> &str {
    match l.find(['#', ';']) {
        Some(i) => &l[..i],
        None => l,
    }
}

fn is_ident(s: &str) -> bool {
    let ident_char = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == '.';
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if ident_char(c) && !c.is_ascii_digit()) && chars.all(ident_char)
}

/// Number of machine instructions a statement expands to.
fn statement_len(line: usize, stmt: &str) -> Result<usize, AsmError> {
    let (mn, ops) = split_mnemonic(stmt);
    Ok(match mn {
        "li" => {
            let parts = operands(ops);
            let v = parse_imm(line, parts.get(1).copied().unwrap_or(""))?;
            li_len(v)
        }
        "call" | "tail" => 1,
        _ => 1,
    })
}

fn li_len(v: i64) -> usize {
    if (-2048..=2047).contains(&v) {
        1
    } else if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
        let lo = (v << 52) >> 52;
        if lo == 0 {
            1
        } else {
            2
        }
    } else {
        let lo = (v << 52) >> 52;
        let rest = v.wrapping_sub(lo) >> 12;
        li_len(rest) + 1 + usize::from(lo != 0)
    }
}

fn split_mnemonic(stmt: &str) -> (&str, &str) {
    match stmt.find(char::is_whitespace) {
        Some(i) => (&stmt[..i], stmt[i..].trim()),
        None => (stmt, ""),
    }
}

fn operands(s: &str) -> Vec<&str> {
    if s.trim().is_empty() {
        vec![]
    } else {
        s.split(',').map(str::trim).collect()
    }
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    // ABI names first, then xN.
    for r in Reg::ALL {
        if r.name() == s {
            return Ok(r);
        }
    }
    if let Some(n) = s.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if let Some(r) = Reg::from_index(i) {
                return Ok(r);
            }
        }
    }
    if s == "fp" {
        return Ok(Reg::S0);
    }
    Err(err(line, format!("unknown register {s:?}")))
}

fn parse_imm(line: usize, s: &str) -> Result<i64, AsmError> {
    let s = s.trim();
    // Decimal first: i64's own parser handles the full range including
    // i64::MIN, which a strip-minus-then-negate scheme cannot.
    if let Ok(v) = s.parse::<i64>() {
        return Ok(v);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(h) = body.strip_prefix("0x") {
        u64::from_str_radix(h, 16).map(|v| v as i64)
    } else if let Some(b) = body.strip_prefix("0b") {
        u64::from_str_radix(b, 2).map(|v| v as i64)
    } else {
        return Err(err(line, format!("bad immediate {s:?}")));
    }
    .map_err(|_| err(line, format!("bad immediate {s:?}")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

/// A CSR operand: a known symbolic name or a numeric address.
fn parse_csr(line: usize, s: &str) -> Result<u16, AsmError> {
    const NAMED: [(&str, u16); 6] = [
        ("cycle", crate::csr::CYCLE),
        ("instret", crate::csr::INSTRET),
        ("hwst.smoffset", crate::csr::HWST_SM_OFFSET),
        ("hwst.compcfg", crate::csr::HWST_COMP_CFG),
        ("hwst.lockbase", crate::csr::HWST_LOCK_BASE),
        ("hwst.status", crate::csr::HWST_STATUS),
    ];
    if let Some(&(_, addr)) = NAMED.iter().find(|(n, _)| *n == s.trim()) {
        return Ok(addr);
    }
    Ok(parse_imm(line, s)? as u16)
}

/// `offset(reg)` operand.
fn parse_mem(line: usize, s: &str) -> Result<(i64, Reg), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(reg), got {s:?}")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("unbalanced parens in {s:?}")))?;
    let off = if s[..open].trim().is_empty() {
        0
    } else {
        parse_imm(line, &s[..open])?
    };
    let reg = parse_reg(line, s[open + 1..close].trim())?;
    Ok((off, reg))
}

fn parse_target(
    line: usize,
    s: &str,
    pc: u64,
    labels: &HashMap<String, u64>,
) -> Result<i64, AsmError> {
    if let Some(&addr) = labels.get(s.trim()) {
        Ok(addr as i64 - pc as i64)
    } else {
        parse_imm(line, s)
    }
}

#[allow(clippy::too_many_lines)]
fn encode_statement(
    line: usize,
    stmt: &str,
    pc: u64,
    labels: &HashMap<String, u64>,
    out: &mut Vec<Instr>,
) -> Result<(), AsmError> {
    let (mn, rest) = split_mnemonic(stmt);
    let ops = operands(rest);
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("{mn} expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    let reg = |i: usize| parse_reg(line, ops[i]);
    let imm = |i: usize| parse_imm(line, ops[i]);

    // R-type ALU table.
    let alu = |op: AluOp| -> Result<Instr, AsmError> {
        want(3)?;
        Ok(Instr::Alu {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        })
    };
    let alui = |op: AluImmOp| -> Result<Instr, AsmError> {
        want(3)?;
        Ok(Instr::AluImm {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            imm: imm(2)?,
        })
    };
    let branch = |cond: BranchCond| -> Result<Instr, AsmError> {
        want(3)?;
        Ok(Instr::Branch {
            cond,
            rs1: reg(0)?,
            rs2: reg(1)?,
            offset: parse_target(line, ops[2], pc, labels)?,
        })
    };
    let load = |width: LoadWidth, checked: bool| -> Result<Instr, AsmError> {
        want(2)?;
        let (offset, rs1) = parse_mem(line, ops[1])?;
        Ok(Instr::Load {
            width,
            rd: reg(0)?,
            rs1,
            offset,
            checked,
        })
    };
    let store = |width: StoreWidth, checked: bool| -> Result<Instr, AsmError> {
        want(2)?;
        let (offset, rs1) = parse_mem(line, ops[1])?;
        Ok(Instr::Store {
            width,
            rs1,
            rs2: reg(0)?,
            offset,
            checked,
        })
    };
    let meta_i = |f: fn(Reg, Reg, i64) -> Instr| -> Result<Instr, AsmError> {
        want(2)?;
        let (offset, rs1) = parse_mem(line, ops[1])?;
        Ok(f(reg(0)?, rs1, offset))
    };

    let instr = match mn {
        // Pseudo-instructions.
        "li" => {
            want(2)?;
            let rd = reg(0)?;
            let v = imm(1)?;
            emit_li(out, rd, v);
            return Ok(());
        }
        "mv" => {
            want(2)?;
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: 0,
            }
        }
        "nop" => {
            want(0)?;
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::Zero,
                rs1: Reg::Zero,
                imm: 0,
            }
        }
        "not" => {
            want(2)?;
            Instr::AluImm {
                op: AluImmOp::Xori,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: -1,
            }
        }
        "neg" => {
            want(2)?;
            Instr::Alu {
                op: AluOp::Sub,
                rd: reg(0)?,
                rs1: Reg::Zero,
                rs2: reg(1)?,
            }
        }
        "beqz" => {
            want(2)?;
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: reg(0)?,
                rs2: Reg::Zero,
                offset: parse_target(line, ops[1], pc, labels)?,
            }
        }
        "bnez" => {
            want(2)?;
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: reg(0)?,
                rs2: Reg::Zero,
                offset: parse_target(line, ops[1], pc, labels)?,
            }
        }
        "j" => {
            want(1)?;
            Instr::Jal {
                rd: Reg::Zero,
                offset: parse_target(line, ops[0], pc, labels)?,
            }
        }
        "call" => {
            want(1)?;
            Instr::Jal {
                rd: Reg::Ra,
                offset: parse_target(line, ops[0], pc, labels)?,
            }
        }
        "ret" => {
            want(0)?;
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            }
        }

        // Base ISA.
        "lui" => {
            want(2)?;
            Instr::Lui {
                rd: reg(0)?,
                imm: imm(1)? << 12,
            }
        }
        "auipc" => {
            want(2)?;
            Instr::Auipc {
                rd: reg(0)?,
                imm: imm(1)? << 12,
            }
        }
        "jal" => match ops.len() {
            1 => Instr::Jal {
                rd: Reg::Ra,
                offset: parse_target(line, ops[0], pc, labels)?,
            },
            2 => Instr::Jal {
                rd: reg(0)?,
                offset: parse_target(line, ops[1], pc, labels)?,
            },
            _ => return Err(err(line, "jal expects 1 or 2 operands")),
        },
        "jalr" => {
            want(2)?;
            let (offset, rs1) = parse_mem(line, ops[1])?;
            Instr::Jalr {
                rd: reg(0)?,
                rs1,
                offset,
            }
        }
        "beq" => branch(BranchCond::Eq)?,
        "bne" => branch(BranchCond::Ne)?,
        "blt" => branch(BranchCond::Lt)?,
        "bge" => branch(BranchCond::Ge)?,
        "bltu" => branch(BranchCond::Ltu)?,
        "bgeu" => branch(BranchCond::Geu)?,
        "lb" => load(LoadWidth::B, false)?,
        "lh" => load(LoadWidth::H, false)?,
        "lw" => load(LoadWidth::W, false)?,
        "ld" => load(LoadWidth::D, false)?,
        "lbu" => load(LoadWidth::Bu, false)?,
        "lhu" => load(LoadWidth::Hu, false)?,
        "lwu" => load(LoadWidth::Wu, false)?,
        "sb" => store(StoreWidth::B, false)?,
        "sh" => store(StoreWidth::H, false)?,
        "sw" => store(StoreWidth::W, false)?,
        "sd" => store(StoreWidth::D, false)?,
        "addi" => alui(AluImmOp::Addi)?,
        "slti" => alui(AluImmOp::Slti)?,
        "sltiu" => alui(AluImmOp::Sltiu)?,
        "xori" => alui(AluImmOp::Xori)?,
        "ori" => alui(AluImmOp::Ori)?,
        "andi" => alui(AluImmOp::Andi)?,
        "slli" => alui(AluImmOp::Slli)?,
        "srli" => alui(AluImmOp::Srli)?,
        "srai" => alui(AluImmOp::Srai)?,
        "addiw" => alui(AluImmOp::Addiw)?,
        "slliw" => alui(AluImmOp::Slliw)?,
        "srliw" => alui(AluImmOp::Srliw)?,
        "sraiw" => alui(AluImmOp::Sraiw)?,
        "add" => alu(AluOp::Add)?,
        "sub" => alu(AluOp::Sub)?,
        "sll" => alu(AluOp::Sll)?,
        "slt" => alu(AluOp::Slt)?,
        "sltu" => alu(AluOp::Sltu)?,
        "xor" => alu(AluOp::Xor)?,
        "srl" => alu(AluOp::Srl)?,
        "sra" => alu(AluOp::Sra)?,
        "or" => alu(AluOp::Or)?,
        "and" => alu(AluOp::And)?,
        "mul" => alu(AluOp::Mul)?,
        "mulh" => alu(AluOp::Mulh)?,
        "mulhsu" => alu(AluOp::Mulhsu)?,
        "mulhu" => alu(AluOp::Mulhu)?,
        "div" => alu(AluOp::Div)?,
        "divu" => alu(AluOp::Divu)?,
        "rem" => alu(AluOp::Rem)?,
        "remu" => alu(AluOp::Remu)?,
        "addw" => alu(AluOp::Addw)?,
        "subw" => alu(AluOp::Subw)?,
        "sllw" => alu(AluOp::Sllw)?,
        "srlw" => alu(AluOp::Srlw)?,
        "sraw" => alu(AluOp::Sraw)?,
        "mulw" => alu(AluOp::Mulw)?,
        "divw" => alu(AluOp::Divw)?,
        "divuw" => alu(AluOp::Divuw)?,
        "remw" => alu(AluOp::Remw)?,
        "remuw" => alu(AluOp::Remuw)?,
        "csrrw" | "csrrs" | "csrrc" => {
            want(3)?;
            let op = match mn {
                "csrrw" => CsrOp::Rw,
                "csrrs" => CsrOp::Rs,
                _ => CsrOp::Rc,
            };
            let csr = parse_csr(line, ops[1])?;
            Instr::Csr {
                op,
                rd: reg(0)?,
                rs1: reg(2)?,
                csr,
            }
        }
        "ecall" => {
            want(0)?;
            Instr::Ecall
        }
        "ebreak" => {
            want(0)?;
            Instr::Ebreak
        }
        "fence" => Instr::Fence,

        // HWST128 extension.
        "bndrs" => alu_hwst(line, &ops, |rd, rs1, rs2| Instr::Bndrs { rd, rs1, rs2 })?,
        "bndrt" => alu_hwst(line, &ops, |rd, rs1, rs2| Instr::Bndrt { rd, rs1, rs2 })?,
        "sbdl" => {
            want(2)?;
            let (offset, rs1) = parse_mem(line, ops[1])?;
            Instr::Sbdl {
                rs1,
                rs2: reg(0)?,
                offset,
            }
        }
        "sbdu" => {
            want(2)?;
            let (offset, rs1) = parse_mem(line, ops[1])?;
            Instr::Sbdu {
                rs1,
                rs2: reg(0)?,
                offset,
            }
        }
        "lbdls" => meta_i(|rd, rs1, offset| Instr::Lbdls { rd, rs1, offset })?,
        "lbdus" => meta_i(|rd, rs1, offset| Instr::Lbdus { rd, rs1, offset })?,
        "lbas" => meta_i(|rd, rs1, offset| Instr::Lbas { rd, rs1, offset })?,
        "lbnd" => meta_i(|rd, rs1, offset| Instr::Lbnd { rd, rs1, offset })?,
        "lkey" => meta_i(|rd, rs1, offset| Instr::Lkey { rd, rs1, offset })?,
        "lloc" => meta_i(|rd, rs1, offset| Instr::Lloc { rd, rs1, offset })?,
        "tchk" => {
            want(1)?;
            Instr::Tchk { rs1: reg(0)? }
        }
        "srfmv" => {
            want(2)?;
            Instr::SrfMv {
                rd: reg(0)?,
                rs1: reg(1)?,
            }
        }
        "srfclr" => {
            want(1)?;
            Instr::SrfClr { rd: reg(0)? }
        }
        "clb" => load(LoadWidth::B, true)?,
        "clh" => load(LoadWidth::H, true)?,
        "clw" => load(LoadWidth::W, true)?,
        "cld" => load(LoadWidth::D, true)?,
        "clbu" => load(LoadWidth::Bu, true)?,
        "clhu" => load(LoadWidth::Hu, true)?,
        "clwu" => load(LoadWidth::Wu, true)?,
        "csb" => store(StoreWidth::B, true)?,
        "csh" => store(StoreWidth::H, true)?,
        "csw" => store(StoreWidth::W, true)?,
        "csd" => store(StoreWidth::D, true)?,

        other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
    };
    out.push(instr);
    Ok(())
}

fn alu_hwst(line: usize, ops: &[&str], f: fn(Reg, Reg, Reg) -> Instr) -> Result<Instr, AsmError> {
    if ops.len() != 3 {
        return Err(err(line, "expected 3 register operands"));
    }
    Ok(f(
        parse_reg(line, ops[0])?,
        parse_reg(line, ops[1])?,
        parse_reg(line, ops[2])?,
    ))
}

fn emit_li(out: &mut Vec<Instr>, rd: Reg, v: i64) {
    if (-2048..=2047).contains(&v) {
        out.push(Instr::AluImm {
            op: AluImmOp::Addi,
            rd,
            rs1: Reg::Zero,
            imm: v,
        });
    } else if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
        let lo = (v << 52) >> 52;
        let hi = v - lo;
        out.push(Instr::Lui {
            rd,
            imm: (hi as i32) as i64,
        });
        if lo != 0 {
            out.push(Instr::AluImm {
                op: AluImmOp::Addiw,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
    } else {
        let lo = (v << 52) >> 52;
        let rest = v.wrapping_sub(lo) >> 12;
        emit_li(out, rd, rest);
        out.push(Instr::AluImm {
            op: AluImmOp::Slli,
            rd,
            rs1: rd,
            imm: 12,
        });
        if lo != 0 {
            out.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1: rd,
                imm: lo,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_and_round_trips_through_disasm() {
        let src = "
            addi a0, zero, 5
            add  a1, a0, a0
            ld   t0, 8(sp)
            sd   t0, 16(sp)
            bndrs a2, a0, a1
            bndrt a2, t0, t1
            sbdl a2, 0(s1)
            lbdus a2, 8(s1)
            cld  t2, 0(a2)
            csw  t2, 4(a2)
            tchk a2
            srfclr a2
            ecall
        ";
        let p = assemble(0, src).unwrap();
        assert_eq!(p.len(), 13);
        // Every instruction re-assembles from its own disassembly.
        for i in p.instrs() {
            let again = assemble(0, &i.to_string()).unwrap();
            assert_eq!(again.instrs()[0], *i, "round trip of {i}");
        }
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let src = "
        start:
            addi a0, zero, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            j    done
            nop
        done:
            ecall
        ";
        let p = assemble(0x100, src).unwrap();
        // bnez at index 2 targets index 1: offset -4.
        match p.instrs()[2] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("expected branch, got {other}"),
        }
        // j at index 3 targets index 5: offset +8.
        match p.instrs()[3] {
            Instr::Jal { offset, .. } => assert_eq!(offset, 8),
            ref other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn li_expansion_matches_pass1_length() {
        for v in [0i64, 1, -2048, 4096, 0x7fff_f000, 0x1_0000_0000, i64::MIN] {
            let src = format!("li t0, {v}\necall");
            let p = assemble(0, &src).unwrap();
            // The label-free program still checks statement_len coherence:
            // ecall must be the last instruction.
            assert_eq!(*p.instrs().last().unwrap(), Instr::Ecall);
            assert_eq!(p.len(), li_len(v) + 1);
        }
    }

    #[test]
    fn li_label_interaction() {
        // A label *after* a multi-instruction li must account for the
        // expansion.
        let src = "
            li t0, 0x12345678
            j target
            nop
        target:
            ecall
        ";
        let p = assemble(0, src).unwrap();
        let jal_idx = p
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Jal { .. }))
            .unwrap();
        match p.instrs()[jal_idx] {
            Instr::Jal { offset, .. } => assert_eq!(offset, 8),
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(0, "nop\nbogus a0, a1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble(0, "addi a0, zero").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = assemble(0, "ld a0, 8[sp]").unwrap_err();
        assert!(e.message.contains("offset(reg)"));

        let e = assemble(0, "j nowhere").unwrap_err();
        assert!(e.message.contains("bad immediate"));

        let e = assemble(0, "x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn csr_names_are_accepted() {
        let p = assemble(0, "csrrw zero, hwst.smoffset, a0").unwrap();
        match p.instrs()[0] {
            Instr::Csr { csr, .. } => {
                assert_eq!(csr, crate::csr::HWST_SM_OFFSET)
            }
            ref other => panic!("{other}"),
        }
        let p = assemble(0, "csrrs a1, 0xc00, zero").unwrap();
        match p.instrs()[0] {
            Instr::Csr { csr, .. } => assert_eq!(csr, 0xc00),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn registers_by_abi_and_index() {
        let p = assemble(0, "add x10, x11, fp").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::S0
            }
        );
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble(0, "# header\n\n  nop  # trailing\n; asm style\necall").unwrap();
        assert_eq!(p.len(), 2);
    }
}
