//! General-purpose register names.

use std::fmt;

/// One of the 32 RV64 general-purpose registers, named by ABI mnemonic.
///
/// The discriminant is the architectural register index, so
/// `Reg::A0 as u8 == 10`.
///
/// # Example
///
/// ```
/// use hwst_isa::Reg;
///
/// assert_eq!(Reg::A0.index(), 10);
/// assert_eq!(Reg::from_index(10), Some(Reg::A0));
/// assert_eq!(Reg::A0.to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

impl Reg {
    /// All 32 registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::Gp,
        Reg::Tp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// Caller-saved temporaries available to a register allocator, in
    /// preferred allocation order (argument registers last so simple
    /// functions keep their arguments in place).
    pub const ALLOCATABLE: [Reg; 22] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ];

    /// The architectural index (0..=31).
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Looks a register up by architectural index.
    ///
    /// Returns `None` if `idx > 31`.
    pub const fn from_index(idx: u8) -> Option<Reg> {
        if idx < 32 {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }

    /// The ABI mnemonic, e.g. `"a0"`.
    pub const fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self as usize]
    }

    /// Whether writes to this register are discarded (only `zero`).
    pub const fn is_zero(self) -> bool {
        matches!(self, Reg::Zero)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn names_are_abi_names() {
        assert_eq!(Reg::Zero.name(), "zero");
        assert_eq!(Reg::Sp.name(), "sp");
        assert_eq!(Reg::S11.name(), "s11");
        assert_eq!(Reg::T6.name(), "t6");
    }

    #[test]
    fn allocatable_excludes_special_registers() {
        for special in [Reg::Zero, Reg::Ra, Reg::Sp, Reg::Gp, Reg::Tp, Reg::S0] {
            assert!(
                !Reg::ALLOCATABLE.contains(&special),
                "{special} must not be allocatable"
            );
        }
    }

    #[test]
    fn allocatable_registers_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in Reg::ALLOCATABLE {
            assert!(seen.insert(r), "{r} listed twice");
        }
    }
}
