//! Machine-level control-flow-graph recovery.
//!
//! Rebuilds basic blocks and successor edges from a decoded instruction
//! stream — the first stage of any binary-level analysis (the
//! translation validator in `hwst-compiler::binval` is the in-tree
//! consumer). Recovery is purely structural: it needs no symbol
//! information beyond the half-open instruction-index range of the
//! region to analyse (one function, or a whole image).
//!
//! Conventions (matching the `-O0` back-end and standard RISC-V
//! lowering):
//!
//! * `jal` with a non-zero link register is a **call**: control falls
//!   through to the next instruction from the analysis' point of view.
//! * `jal zero` is an unconditional jump and ends its block.
//! * `jalr` ends its block; with `rd = zero` it is a return (no
//!   in-range successors). Indirect in-range targets are unknown, so a
//!   `jalr` never contributes an edge.
//! * A conditional branch has two successors: the fall-through block
//!   and the (in-range) target.
//! * Branch/jump targets outside the analysed range are dropped rather
//!   than followed — a corrupted image degrades to fewer edges, never
//!   to a panic.
//!
//! # Example
//!
//! ```
//! use hwst_isa::{cfg, Instr, Reg, BranchCond};
//!
//! let code = [
//!     Instr::Branch { cond: BranchCond::Eq, rs1: Reg::A0, rs2: Reg::Zero, offset: 8 },
//!     Instr::Jal { rd: Reg::Zero, offset: 8 },
//!     Instr::AluImm { op: hwst_isa::AluImmOp::Addi, rd: Reg::A0, rs1: Reg::Zero, imm: 1 },
//!     Instr::Jalr { rd: Reg::Zero, rs1: Reg::Ra, offset: 0 },
//! ];
//! let g = cfg::recover(&code, 0..code.len());
//! assert_eq!(g.blocks.len(), 4);
//! assert_eq!(g.blocks[0].succs, vec![1, 2]); // fall-through + branch target
//! ```

use crate::Instr;
use crate::Reg;
use std::ops::Range;

/// One recovered basic block: the half-open instruction-index range
/// `[start, end)` plus successor *block* indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of the first instruction (into the analysed slice's
    /// coordinate system, i.e. absolute indices).
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor block indices (within [`MachineCfg::blocks`]).
    pub succs: Vec<usize>,
}

/// A recovered machine CFG over an instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCfg {
    /// The analysed instruction-index range.
    pub range: Range<usize>,
    /// Basic blocks in ascending address order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl MachineCfg {
    /// The block containing instruction index `at`, if any.
    pub fn block_of(&self, at: usize) -> Option<usize> {
        self.blocks.iter().position(|b| b.start <= at && at < b.end)
    }
}

/// Is `i` a block terminator for CFG-recovery purposes? Calls
/// (`jal` with a link register) are *not* terminators.
fn is_terminator(i: &Instr) -> bool {
    match *i {
        Instr::Jal { rd, .. } => rd == Reg::Zero,
        Instr::Jalr { .. } | Instr::Branch { .. } => true,
        _ => false,
    }
}

/// The in-range instruction-index target of a PC-relative transfer at
/// `at`, if the instruction has one.
fn target_of(i: &Instr, at: usize, range: &Range<usize>) -> Option<usize> {
    let offset = match *i {
        Instr::Jal {
            rd: Reg::Zero,
            offset,
        } => offset,
        Instr::Branch { offset, .. } => offset,
        _ => return None,
    };
    // Instructions are 4 bytes; misaligned offsets cannot land on an
    // instruction boundary and are treated as out of range.
    if offset % 4 != 0 {
        return None;
    }
    let t = at as i64 + offset / 4;
    if t >= 0 && range.contains(&(t as usize)) {
        Some(t as usize)
    } else {
        None
    }
}

/// Recovers basic blocks and successor edges for `instrs[range]`.
///
/// Indices in the result are absolute (into `instrs`), so callers can
/// analyse one function of a larger image without re-basing. An empty
/// range yields an empty CFG.
pub fn recover(instrs: &[Instr], range: Range<usize>) -> MachineCfg {
    let range = range.start.min(instrs.len())..range.end.min(instrs.len());
    if range.is_empty() {
        return MachineCfg {
            range,
            blocks: Vec::new(),
        };
    }
    // Pass 1: leaders.
    let mut leader = vec![false; range.end - range.start];
    leader[0] = true;
    for at in range.clone() {
        let i = &instrs[at];
        if let Some(t) = target_of(i, at, &range) {
            leader[t - range.start] = true;
        }
        if is_terminator(i) && at + 1 < range.end {
            leader[at + 1 - range.start] = true;
        }
    }
    // Pass 2: block spans.
    let starts: Vec<usize> = leader
        .iter()
        .enumerate()
        .filter(|(_, &l)| l)
        .map(|(i, _)| range.start + i)
        .collect();
    let mut blocks: Vec<BasicBlock> = starts
        .iter()
        .enumerate()
        .map(|(bi, &s)| BasicBlock {
            start: s,
            end: starts.get(bi + 1).copied().unwrap_or(range.end),
            succs: Vec::new(),
        })
        .collect();
    // Pass 3: edges.
    let block_at = |at: usize| starts.partition_point(|&s| s <= at) - 1;
    for bi in 0..blocks.len() {
        let last = blocks[bi].end - 1;
        let i = &instrs[last];
        let mut succs = Vec::new();
        match *i {
            Instr::Jal { rd: Reg::Zero, .. } => {
                if let Some(t) = target_of(i, last, &range) {
                    succs.push(block_at(t));
                }
            }
            Instr::Jalr { .. } => {} // return / indirect: no known edges
            Instr::Branch { .. } => {
                if bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
                if let Some(t) = target_of(i, last, &range) {
                    let tb = block_at(t);
                    if !succs.contains(&tb) {
                        succs.push(tb);
                    }
                }
            }
            _ => {
                if bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
            }
        }
        blocks[bi].succs = succs;
    }
    MachineCfg { range, blocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluImmOp, BranchCond};

    fn nop() -> Instr {
        Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        }
    }

    #[test]
    fn empty_range_is_empty_cfg() {
        let g = recover(&[], 0..0);
        assert!(g.blocks.is_empty());
    }

    #[test]
    fn straight_line_is_one_block() {
        let code = vec![nop(); 5];
        let g = recover(&code, 0..5);
        assert_eq!(g.blocks.len(), 1);
        assert_eq!(g.blocks[0].start, 0);
        assert_eq!(g.blocks[0].end, 5);
        assert!(g.blocks[0].succs.is_empty());
    }

    #[test]
    fn call_does_not_split_blocks() {
        let code = [
            nop(),
            Instr::Jal {
                rd: Reg::Ra,
                offset: 400,
            },
            nop(),
        ];
        let g = recover(&code, 0..3);
        assert_eq!(g.blocks.len(), 1);
    }

    #[test]
    fn diamond_has_expected_edges() {
        // 0: beq -> +8 (idx 2)
        // 1: jal zero +8 (idx 3)
        // 2: nop        (then-side target of the branch)
        // 3: jalr ret
        let code = [
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: 8,
            },
            Instr::Jal {
                rd: Reg::Zero,
                offset: 8,
            },
            nop(),
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
        ];
        let g = recover(&code, 0..4);
        assert_eq!(g.blocks.len(), 4);
        assert_eq!(g.blocks[0].succs, vec![1, 2]);
        assert_eq!(g.blocks[1].succs, vec![3]);
        assert_eq!(g.blocks[2].succs, vec![3]);
        assert!(g.blocks[3].succs.is_empty());
    }

    #[test]
    fn backward_branch_forms_a_loop() {
        let code = [
            nop(),
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: -4,
            },
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
        ];
        let g = recover(&code, 0..3);
        // Branch at idx 1, offset -4 → target idx 0 (the entry leader).
        // Leaders: 0 (entry + target), 2 (after the branch terminator).
        assert_eq!(g.blocks.len(), 2);
        assert_eq!(g.blocks[0].succs, vec![1, 0]);
    }

    #[test]
    fn out_of_range_targets_are_dropped() {
        let code = [Instr::Jal {
            rd: Reg::Zero,
            offset: 4000,
        }];
        let g = recover(&code, 0..1);
        assert_eq!(g.blocks.len(), 1);
        assert!(g.blocks[0].succs.is_empty());
    }

    #[test]
    fn sub_range_keeps_absolute_indices() {
        let code = [nop(), nop(), nop(), nop()];
        let g = recover(&code, 2..4);
        assert_eq!(g.blocks.len(), 1);
        assert_eq!(g.blocks[0].start, 2);
        assert_eq!(g.blocks[0].end, 4);
    }

    #[test]
    fn block_of_finds_containing_block() {
        let code = [
            Instr::Jal {
                rd: Reg::Zero,
                offset: 8,
            },
            nop(),
            nop(),
        ];
        let g = recover(&code, 0..3);
        assert_eq!(g.block_of(0), Some(0));
        assert_eq!(g.block_of(2), g.block_of(2)); // stable
        assert_eq!(g.block_of(99), None);
    }
}
