//! # hwst-isa
//!
//! Instruction-set definitions for the HWST128 memory-safety accelerator
//! reproduction: the RV64IM base integer ISA (plus `Zicsr`), extended with
//! the HWST128 custom instructions described in the DAC 2022 paper
//! *"HWST128: Complete Memory Safety Accelerator on RISC-V with Metadata
//! Compression"*.
//!
//! The crate provides:
//!
//! * [`Reg`] — the 32 general-purpose registers with ABI names,
//! * [`Instr`] — a structured instruction type covering RV64IM, `Zicsr`
//!   and the HWST128 extension,
//! * [`encode`](Instr::encode) / [`decode`] — lossless binary
//!   encode/decode of every instruction,
//! * a disassembler via [`std::fmt::Display`],
//! * [`csr`] — the control/status register map, including the HWST128
//!   CSRs (shadow-memory offset and compression configuration).
//!
//! ## HWST128 extension summary
//!
//! | Mnemonic | Format | Purpose |
//! |---|---|---|
//! | `bndrs rd, rs1, rs2` | R (custom-1) | compress base/bound, bind spatial half into `SRF[rd]` |
//! | `bndrt rd, rs1, rs2` | R (custom-1) | compress key/lock, bind temporal half into `SRF[rd]` |
//! | `sbdl/sbdu rs2, off(rs1)` | S (custom-1) | store `SRF[rs2]` lower/upper to shadow memory |
//! | `lbdls/lbdus rd, off(rs1)` | I (custom-0) | load shadow word into `SRF[rd]` without decompressing |
//! | `lbas/lbnd/lkey/lloc rd, off(rs1)` | I (custom-0) | load one *decompressed* field into a GPR |
//! | `tchk rs1` | I (custom-0) | temporal check through the keybuffer |
//! | `srfmv rd, rs1` / `srfclr rd` | R (custom-1) | explicit SRF move / invalidate |
//! | `clb..cld / csb..csd` | I/S (custom-2/3) | bounded (spatially checked) loads and stores |
//!
//! ## Example
//!
//! ```
//! use hwst_isa::{Instr, Reg, decode};
//!
//! let i = Instr::Bndrs { rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! let word = i.encode();
//! assert_eq!(decode(word).unwrap(), i);
//! assert_eq!(i.to_string(), "bndrs a0, a1, a2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod cfg;
pub mod csr;
mod decode;
mod disasm;
mod encode;
mod instr;
mod reg;

pub use decode::{decode, DecodeError};
pub use instr::{AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, StoreWidth};
pub use reg::Reg;

/// A program: a contiguous sequence of 32-bit instruction words starting at
/// a base address.
///
/// This is the unit handed from the compiler back-end to the simulator.
///
/// # Example
///
/// ```
/// use hwst_isa::{Program, Instr, Reg};
///
/// let prog = Program::from_instrs(0x1000, vec![Instr::Ecall]);
/// assert_eq!(prog.len(), 1);
/// assert_eq!(prog.base(), 0x1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    base: u64,
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from decoded instructions at `base`.
    pub fn from_instrs(base: u64, instrs: Vec<Instr>) -> Self {
        Self { base, instrs }
    }

    /// The load address of the first instruction.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Encodes every instruction into a flat little-endian byte image,
    /// suitable for loading at [`base`](Self::base).
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.instrs.len() * 4);
        for i in &self.instrs {
            out.extend_from_slice(&i.encode().to_le_bytes());
        }
        out
    }

    /// Fetches the instruction at absolute address `pc`, if it lies inside
    /// the program and is 4-byte aligned.
    pub fn fetch(&self, pc: u64) -> Option<&Instr> {
        if pc < self.base || !(pc - self.base).is_multiple_of(4) {
            return None;
        }
        self.instrs.get(((pc - self.base) / 4) as usize)
    }

    /// Address one past the last instruction.
    pub fn end(&self) -> u64 {
        self.base + self.instrs.len() as u64 * 4
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (idx, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{:#010x}: {}", self.base + idx as u64 * 4, i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_fetch_alignment() {
        let p = Program::from_instrs(0x100, vec![Instr::Ecall, Instr::Ebreak, Instr::Fence]);
        assert_eq!(p.fetch(0x100), Some(&Instr::Ecall));
        assert_eq!(p.fetch(0x104), Some(&Instr::Ebreak));
        assert_eq!(p.fetch(0x102), None, "misaligned fetch must fail");
        assert_eq!(p.fetch(0x10c), None, "past-the-end fetch must fail");
        assert_eq!(p.fetch(0xfc), None, "below-base fetch must fail");
        assert_eq!(p.end(), 0x10c);
    }

    #[test]
    fn program_image_round_trips() {
        let p = Program::from_instrs(
            0,
            vec![
                Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: 42,
                },
                Instr::Ecall,
            ],
        );
        let img = p.to_image();
        assert_eq!(img.len(), 8);
        let w0 = u32::from_le_bytes(img[0..4].try_into().unwrap());
        assert_eq!(decode(w0).unwrap(), p.instrs()[0]);
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.to_image(), Vec::<u8>::new());
    }
}
