//! Control and status register (CSR) map.
//!
//! Besides the standard user counters, HWST128 adds four CSRs (paper §3.2,
//! §3.3, Fig. 3) that configure the shadow-memory mapping and the metadata
//! compression bit widths. They are placed in the custom read/write range
//! `0x8c0..`.

/// `cycle` — cycle counter (read-only shadow of `mcycle`).
pub const CYCLE: u16 = 0xC00;
/// `instret` — instructions-retired counter.
pub const INSTRET: u16 = 0xC02;

/// `hwst.smoffset` — base offset of the linear-mapped shadow memory.
///
/// Paper Eq. 1: `addr_lmsm = (addr_container << 2) + CSR_offset`.
pub const HWST_SM_OFFSET: u16 = 0x8C0;

/// `hwst.compcfg` — 24-bit compression configuration.
///
/// Field packing (paper §3.3: "The bit width for each metadata is set
/// within a 24-bit CSR at the beginning of the program"):
///
/// ```text
/// bits [ 5: 0] base width  (BIT_base,  after 8-byte-alignment shift)
/// bits [11: 6] range width (BIT_range, after alignment shift)
/// bits [17:12] lock width  (BIT_lock)
/// bits [23:18] key width   (BIT_key)
/// ```
pub const HWST_COMP_CFG: u16 = 0x8C1;

/// `hwst.lockbase` — base address of the lock_location region.
pub const HWST_LOCK_BASE: u16 = 0x8C2;

/// `hwst.status` — enable bits for the safety machinery.
///
/// bit 0: spatial checks enabled, bit 1: temporal checks enabled,
/// bit 2: keybuffer enabled.
pub const HWST_STATUS: u16 = 0x8C3;

/// Bit in [`HWST_STATUS`]: spatial checking enabled.
pub const STATUS_SPATIAL: u64 = 1 << 0;
/// Bit in [`HWST_STATUS`]: temporal checking enabled.
pub const STATUS_TEMPORAL: u64 = 1 << 1;
/// Bit in [`HWST_STATUS`]: keybuffer enabled (`tchk` may hit in it).
pub const STATUS_KEYBUFFER: u64 = 1 << 2;

/// Packs the four compression bit-widths into the 24-bit
/// [`HWST_COMP_CFG`] value.
///
/// # Example
///
/// ```
/// use hwst_isa::csr::{pack_comp_cfg, unpack_comp_cfg};
///
/// let v = pack_comp_cfg(35, 29, 20, 44);
/// assert_eq!(unpack_comp_cfg(v), (35, 29, 20, 44));
/// ```
pub const fn pack_comp_cfg(base: u8, range: u8, lock: u8, key: u8) -> u64 {
    (base as u64 & 0x3f)
        | ((range as u64 & 0x3f) << 6)
        | ((lock as u64 & 0x3f) << 12)
        | ((key as u64 & 0x3f) << 18)
}

/// Unpacks a [`HWST_COMP_CFG`] value into `(base, range, lock, key)`
/// bit widths.
pub const fn unpack_comp_cfg(v: u64) -> (u8, u8, u8, u8) {
    (
        (v & 0x3f) as u8,
        ((v >> 6) & 0x3f) as u8,
        ((v >> 12) & 0x3f) as u8,
        ((v >> 18) & 0x3f) as u8,
    )
}

/// Returns the canonical name of a CSR address, or `None` for unknown CSRs.
pub fn name(addr: u16) -> Option<&'static str> {
    Some(match addr {
        CYCLE => "cycle",
        INSTRET => "instret",
        HWST_SM_OFFSET => "hwst.smoffset",
        HWST_COMP_CFG => "hwst.compcfg",
        HWST_LOCK_BASE => "hwst.lockbase",
        HWST_STATUS => "hwst.status",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_cfg_round_trip() {
        for (b, r, l, k) in [
            (35, 29, 20, 44),
            (0, 0, 0, 0),
            (63, 63, 63, 63),
            (38, 25, 20, 45),
        ] {
            assert_eq!(unpack_comp_cfg(pack_comp_cfg(b, r, l, k)), (b, r, l, k));
        }
    }

    #[test]
    fn comp_cfg_fits_24_bits() {
        assert!(pack_comp_cfg(63, 63, 63, 63) < (1 << 24));
    }

    #[test]
    fn csr_names() {
        assert_eq!(name(HWST_SM_OFFSET), Some("hwst.smoffset"));
        assert_eq!(name(CYCLE), Some("cycle"));
        assert_eq!(name(0x123), None);
    }

    #[test]
    fn status_bits_distinct() {
        assert_eq!(STATUS_SPATIAL & STATUS_TEMPORAL, 0);
        assert_eq!(STATUS_TEMPORAL & STATUS_KEYBUFFER, 0);
    }
}
