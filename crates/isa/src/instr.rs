//! The structured instruction type.

use crate::Reg;

/// Branch comparison condition (RV64I `BRANCH` major opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    /// The `funct3` field value for this condition.
    pub const fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }

    /// Evaluates the condition on two 64-bit register values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Load access width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadWidth {
    B,
    H,
    W,
    D,
    Bu,
    Hu,
    Wu,
}

impl LoadWidth {
    /// The `funct3` field value.
    pub const fn funct3(self) -> u32 {
        match self {
            LoadWidth::B => 0b000,
            LoadWidth::H => 0b001,
            LoadWidth::W => 0b010,
            LoadWidth::D => 0b011,
            LoadWidth::Bu => 0b100,
            LoadWidth::Hu => 0b101,
            LoadWidth::Wu => 0b110,
        }
    }

    /// Number of bytes accessed.
    pub const fn bytes(self) -> u64 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W | LoadWidth::Wu => 4,
            LoadWidth::D => 8,
        }
    }

    /// Extends a raw little-endian value of [`bytes`](Self::bytes) width to
    /// a 64-bit register value (sign- or zero-extended as appropriate).
    pub fn extend(self, raw: u64) -> u64 {
        match self {
            LoadWidth::B => raw as u8 as i8 as i64 as u64,
            LoadWidth::H => raw as u16 as i16 as i64 as u64,
            LoadWidth::W => raw as u32 as i32 as i64 as u64,
            LoadWidth::D => raw,
            LoadWidth::Bu => raw as u8 as u64,
            LoadWidth::Hu => raw as u16 as u64,
            LoadWidth::Wu => raw as u32 as u64,
        }
    }
}

/// Store access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreWidth {
    B,
    H,
    W,
    D,
}

impl StoreWidth {
    /// The `funct3` field value.
    pub const fn funct3(self) -> u32 {
        match self {
            StoreWidth::B => 0b000,
            StoreWidth::H => 0b001,
            StoreWidth::W => 0b010,
            StoreWidth::D => 0b011,
        }
    }

    /// Number of bytes accessed.
    pub const fn bytes(self) -> u64 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
            StoreWidth::D => 8,
        }
    }
}

/// Register-immediate ALU operation (`OP-IMM` / `OP-IMM-32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

impl AluImmOp {
    /// Whether this is a 32-bit (`W`-suffixed) operation.
    pub const fn is_word(self) -> bool {
        matches!(
            self,
            AluImmOp::Addiw | AluImmOp::Slliw | AluImmOp::Srliw | AluImmOp::Sraiw
        )
    }

    /// Evaluates the operation.
    pub fn eval(self, rs1: u64, imm: i64) -> u64 {
        match self {
            AluImmOp::Addi => rs1.wrapping_add(imm as u64),
            AluImmOp::Slti => ((rs1 as i64) < imm) as u64,
            AluImmOp::Sltiu => (rs1 < imm as u64) as u64,
            AluImmOp::Xori => rs1 ^ imm as u64,
            AluImmOp::Ori => rs1 | imm as u64,
            AluImmOp::Andi => rs1 & imm as u64,
            AluImmOp::Slli => rs1 << (imm as u64 & 0x3f),
            AluImmOp::Srli => rs1 >> (imm as u64 & 0x3f),
            AluImmOp::Srai => ((rs1 as i64) >> (imm as u64 & 0x3f)) as u64,
            AluImmOp::Addiw => (rs1 as i32).wrapping_add(imm as i32) as i64 as u64,
            AluImmOp::Slliw => ((rs1 as i32) << (imm as u32 & 0x1f)) as i64 as u64,
            AluImmOp::Srliw => (((rs1 as u32) >> (imm as u32 & 0x1f)) as i32) as i64 as u64,
            AluImmOp::Sraiw => ((rs1 as i32) >> (imm as u32 & 0x1f)) as i64 as u64,
        }
    }
}

/// Register-register ALU operation (`OP` / `OP-32`), including the M
/// extension multiply/divide ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl AluOp {
    /// Whether this is a 32-bit (`W`-suffixed) operation.
    pub const fn is_word(self) -> bool {
        matches!(
            self,
            AluOp::Addw
                | AluOp::Subw
                | AluOp::Sllw
                | AluOp::Srlw
                | AluOp::Sraw
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Whether this is an M-extension (multi-cycle) operation.
    pub const fn is_muldiv(self) -> bool {
        matches!(
            self,
            AluOp::Mul
                | AluOp::Mulh
                | AluOp::Mulhsu
                | AluOp::Mulhu
                | AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Mulw
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }

    /// Evaluates the operation on two 64-bit register values.
    // The div/rem arms mirror the RISC-V spec's case tables verbatim;
    // rewriting them via checked_div would obscure that correspondence.
    #[allow(clippy::manual_checked_ops)]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << (b & 0x3f),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a >> (b & 0x3f),
            AluOp::Sra => ((a as i64) >> (b & 0x3f)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
            AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    a
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Divu => {
                if b == 0 {
                    u64::MAX
                } else {
                    a / b
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if a as i64 == i64::MIN && b as i64 == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
            AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
            AluOp::Sllw => ((a as i32) << (b as u32 & 0x1f)) as i64 as u64,
            AluOp::Srlw => (((a as u32) >> (b as u32 & 0x1f)) as i32) as i64 as u64,
            AluOp::Sraw => ((a as i32) >> (b as u32 & 0x1f)) as i64 as u64,
            AluOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            AluOp::Divw => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    u64::MAX
                } else if a == i32::MIN && b == -1 {
                    a as i64 as u64
                } else {
                    (a / b) as i64 as u64
                }
            }
            AluOp::Divuw => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    u64::MAX
                } else {
                    ((a / b) as i32) as i64 as u64
                }
            }
            AluOp::Remw => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    a as i64 as u64
                } else if a == i32::MIN && b == -1 {
                    0
                } else {
                    (a % b) as i64 as u64
                }
            }
            AluOp::Remuw => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    (a as i32) as i64 as u64
                } else {
                    ((a % b) as i32) as i64 as u64
                }
            }
        }
    }
}

/// `Zicsr` operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

impl CsrOp {
    /// The `funct3` field value (register-source form).
    pub const fn funct3(self) -> u32 {
        match self {
            CsrOp::Rw => 0b001,
            CsrOp::Rs => 0b010,
            CsrOp::Rc => 0b011,
        }
    }

    /// Applies the operation: returns the new CSR value given the old value
    /// and the source operand.
    pub fn apply(self, old: u64, src: u64) -> u64 {
        match self {
            CsrOp::Rw => src,
            CsrOp::Rs => old | src,
            CsrOp::Rc => old & !src,
        }
    }
}

/// A decoded RV64IM + `Zicsr` + HWST128 instruction.
///
/// Every variant encodes losslessly to a 32-bit word via
/// [`encode`](Instr::encode) and back via [`decode`](crate::decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- RV64I ----
    /// `lui rd, imm` — load upper immediate (`imm` is the final 32-bit
    /// sign-extended value with low 12 bits zero).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Sign-extended upper-immediate value (low 12 bits zero).
        imm: i64,
    },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Sign-extended upper-immediate value (low 12 bits zero).
        imm: i64,
    },
    /// `jal rd, offset` — jump and link.
    Jal {
        /// Link register.
        rd: Reg,
        /// PC-relative byte offset (±1 MiB, even).
        offset: i64,
    },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// PC-relative byte offset (±4 KiB, even).
        offset: i64,
    },
    /// Memory load. `checked` selects the HWST128 bounded form
    /// (`clb`/`clh`/… in custom-2) that performs the spatial check against
    /// `SRF[rs1]` in the execute stage.
    Load {
        /// Access width and sign extension.
        width: LoadWidth,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
        /// HWST128 bounded (spatially checked) form.
        checked: bool,
    },
    /// Memory store. `checked` selects the HWST128 bounded form
    /// (`csb`/`csh`/… in custom-3).
    Store {
        /// Access width.
        width: StoreWidth,
        /// Base address register.
        rs1: Reg,
        /// Source data register.
        rs2: Reg,
        /// Byte offset.
        offset: i64,
        /// HWST128 bounded (spatially checked) form.
        checked: bool,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate (12-bit sign-extended; shift amount for shifts).
        imm: i64,
    },
    /// Register-register ALU operation (incl. M extension).
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `Zicsr` register-form CSR access.
    Csr {
        /// Operation kind.
        op: CsrOp,
        /// Destination register (receives old CSR value).
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// CSR address (12 bits).
        csr: u16,
    },
    /// `ecall` — environment call (proxy-kernel syscall).
    Ecall,
    /// `ebreak` — breakpoint.
    Ebreak,
    /// `fence` — memory ordering (no-op in this model).
    Fence,

    // ---- HWST128 extension ----
    /// `bndrs rd, rs1, rs2` — compress `base=rs1`, `bound=rs2` and bind the
    /// spatial (lower) half into `SRF[rd]` (paper Fig. 1-a2, §3.3).
    Bndrs {
        /// SRF entry to bind (same index as the pointer's GPR).
        rd: Reg,
        /// Base address.
        rs1: Reg,
        /// Bound address (one past the allocation).
        rs2: Reg,
    },
    /// `bndrt rd, rs1, rs2` — compress `key=rs1`, `lock=rs2` and bind the
    /// temporal (upper) half into `SRF[rd]`.
    Bndrt {
        /// SRF entry to bind.
        rd: Reg,
        /// Key value.
        rs1: Reg,
        /// Lock (address of the lock_location).
        rs2: Reg,
    },
    /// `sbdl rs2, offset(rs1)` — store the lower 64 bits of `SRF[rs2]` to
    /// the shadow address `SMAC(rs1 + offset)`.
    Sbdl {
        /// Pointer-container base address register.
        rs1: Reg,
        /// SRF source entry.
        rs2: Reg,
        /// Byte offset added to the container address.
        offset: i64,
    },
    /// `sbdu rs2, offset(rs1)` — store the upper 64 bits of `SRF[rs2]`.
    Sbdu {
        /// Pointer-container base address register.
        rs1: Reg,
        /// SRF source entry.
        rs2: Reg,
        /// Byte offset added to the container address.
        offset: i64,
    },
    /// `lbdls rd, offset(rs1)` — load the lower shadow word into `SRF[rd]`
    /// *without decompression* (benefits `memcpy`-style transfers, §3.3).
    Lbdls {
        /// SRF destination entry.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `lbdus rd, offset(rs1)` — load the upper shadow word into `SRF[rd]`.
    Lbdus {
        /// SRF destination entry.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `lbas rd, offset(rs1)` — load the *decompressed* base into GPR `rd`
    /// (used by wrapper-instrumented library code, Fig. 1-d7).
    Lbas {
        /// GPR destination.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `lbnd rd, offset(rs1)` — load the decompressed bound into GPR `rd`.
    Lbnd {
        /// GPR destination.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `lkey rd, offset(rs1)` — load the decompressed key into GPR `rd`.
    Lkey {
        /// GPR destination.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `lloc rd, offset(rs1)` — load the decompressed lock into GPR `rd`.
    Lloc {
        /// GPR destination.
        rd: Reg,
        /// Pointer-container base address register.
        rs1: Reg,
        /// Byte offset.
        offset: i64,
    },
    /// `tchk rs1` — temporal check of `SRF[rs1]`: fetch the key stored at
    /// the lock_location (through the keybuffer when it hits) and compare
    /// with the pointer's key; trap on mismatch (paper §3.5).
    Tchk {
        /// Register whose SRF entry is checked.
        rs1: Reg,
    },
    /// `srfmv rd, rs1` — copy `SRF[rs1]` to `SRF[rd]` (explicit metadata
    /// move for spills/reloads).
    SrfMv {
        /// SRF destination entry.
        rd: Reg,
        /// SRF source entry.
        rs1: Reg,
    },
    /// `srfclr rd` — invalidate `SRF[rd]`.
    SrfClr {
        /// SRF entry to invalidate.
        rd: Reg,
    },
}

impl Instr {
    /// Whether the instruction belongs to the HWST128 extension.
    pub const fn is_hwst(self) -> bool {
        matches!(
            self,
            Instr::Bndrs { .. }
                | Instr::Bndrt { .. }
                | Instr::Sbdl { .. }
                | Instr::Sbdu { .. }
                | Instr::Lbdls { .. }
                | Instr::Lbdus { .. }
                | Instr::Lbas { .. }
                | Instr::Lbnd { .. }
                | Instr::Lkey { .. }
                | Instr::Lloc { .. }
                | Instr::Tchk { .. }
                | Instr::SrfMv { .. }
                | Instr::SrfClr { .. }
        ) || matches!(
            self,
            Instr::Load { checked: true, .. } | Instr::Store { checked: true, .. }
        )
    }

    /// Whether the instruction accesses data memory (user or shadow).
    pub const fn is_mem(self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Sbdl { .. }
                | Instr::Sbdu { .. }
                | Instr::Lbdls { .. }
                | Instr::Lbdus { .. }
                | Instr::Lbas { .. }
                | Instr::Lbnd { .. }
                | Instr::Lkey { .. }
                | Instr::Lloc { .. }
        )
    }

    /// Whether the instruction may redirect control flow.
    pub const fn is_control(self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }
        )
    }

    /// The destination GPR written by this instruction, if any.
    ///
    /// HWST128 instructions that write only the SRF (e.g. [`Instr::Bndrs`])
    /// return `None`; the metadata-to-GPR loads (`lbas` family) return
    /// their destination.
    pub fn dest_gpr(self) -> Option<Reg> {
        let rd = match self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Alu { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => rd,
            _ => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// The GPRs read by this instruction.
    pub fn src_gprs(self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match self {
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::AluImm { rs1, .. }
            | Instr::Csr { rs1, .. }
            | Instr::Lbdls { rs1, .. }
            | Instr::Lbdus { rs1, .. }
            | Instr::Lbas { rs1, .. }
            | Instr::Lbnd { rs1, .. }
            | Instr::Lkey { rs1, .. }
            | Instr::Lloc { rs1, .. }
            | Instr::Tchk { rs1 } => v.push(rs1),
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Alu { rs1, rs2, .. }
            | Instr::Bndrs { rs1, rs2, .. }
            | Instr::Bndrt { rs1, rs2, .. } => {
                v.push(rs1);
                v.push(rs2);
            }
            Instr::Sbdl { rs1, .. } | Instr::Sbdu { rs1, .. } => v.push(rs1),
            _ => {}
        }
        v.retain(|r| !r.is_zero());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(!BranchCond::Ne.eval(5, 5));
        assert!(BranchCond::Lt.eval(-1i64 as u64, 0));
        assert!(!BranchCond::Ltu.eval(-1i64 as u64, 0));
        assert!(BranchCond::Geu.eval(-1i64 as u64, 0));
        assert!(BranchCond::Ge.eval(0, -1i64 as u64));
    }

    #[test]
    fn load_width_extend() {
        assert_eq!(LoadWidth::B.extend(0xff), u64::MAX);
        assert_eq!(LoadWidth::Bu.extend(0xff), 0xff);
        assert_eq!(LoadWidth::H.extend(0x8000), 0xffff_ffff_ffff_8000);
        assert_eq!(LoadWidth::Hu.extend(0x8000), 0x8000);
        assert_eq!(LoadWidth::W.extend(0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(LoadWidth::Wu.extend(0x8000_0000), 0x8000_0000);
        assert_eq!(LoadWidth::D.extend(u64::MAX), u64::MAX);
    }

    #[test]
    fn alu_div_by_zero_follows_spec() {
        assert_eq!(AluOp::Div.eval(10, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(10, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(10, 0), 10);
        assert_eq!(AluOp::Remu.eval(10, 0), 10);
        assert_eq!(AluOp::Divw.eval(10, 0), u64::MAX);
        assert_eq!(AluOp::Remw.eval(10, 0), 10);
    }

    #[test]
    fn alu_div_overflow_follows_spec() {
        let min = i64::MIN as u64;
        assert_eq!(AluOp::Div.eval(min, -1i64 as u64), min);
        assert_eq!(AluOp::Rem.eval(min, -1i64 as u64), 0);
        let minw = i32::MIN as i64 as u64;
        assert_eq!(AluOp::Divw.eval(minw, -1i64 as u64), minw);
        assert_eq!(AluOp::Remw.eval(minw, -1i64 as u64), 0);
    }

    #[test]
    fn alu_mulh_variants() {
        assert_eq!(AluOp::Mulhu.eval(u64::MAX, 2), 1);
        assert_eq!(AluOp::Mulh.eval(-1i64 as u64, 2), u64::MAX); // -1*2 >> 64 = -1
        assert_eq!(AluOp::Mulhsu.eval(-1i64 as u64, 1), u64::MAX);
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(
            AluOp::Addw.eval(0x7fff_ffff, 1),
            0xffff_ffff_8000_0000,
            "addw must wrap and sign-extend"
        );
        assert_eq!(AluImmOp::Addiw.eval(0xffff_ffff, 1), 0);
    }

    #[test]
    fn csr_op_apply() {
        assert_eq!(CsrOp::Rw.apply(0xff, 0x0f), 0x0f);
        assert_eq!(CsrOp::Rs.apply(0xf0, 0x0f), 0xff);
        assert_eq!(CsrOp::Rc.apply(0xff, 0x0f), 0xf0);
    }

    #[test]
    fn hwst_classification() {
        assert!(Instr::Bndrs {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2
        }
        .is_hwst());
        assert!(Instr::Tchk { rs1: Reg::A0 }.is_hwst());
        assert!(Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true
        }
        .is_hwst());
        assert!(!Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: false
        }
        .is_hwst());
        assert!(!Instr::Ecall.is_hwst());
    }

    #[test]
    fn dest_and_src_registers() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.dest_gpr(), Some(Reg::A0));
        assert_eq!(i.src_gprs(), vec![Reg::A1, Reg::A2]);

        // Writes to zero are discarded.
        let i = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::Zero,
            rs1: Reg::A1,
            imm: 0,
        };
        assert_eq!(i.dest_gpr(), None);

        // bndrs writes only the SRF.
        let i = Instr::Bndrs {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.dest_gpr(), None);
        assert_eq!(i.src_gprs(), vec![Reg::A1, Reg::A2]);

        // lbas writes a GPR.
        let i = Instr::Lbas {
            rd: Reg::A3,
            rs1: Reg::A1,
            offset: 0,
        };
        assert_eq!(i.dest_gpr(), Some(Reg::A3));

        // zero sources are filtered (never create hazards).
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::Zero,
            rs2: Reg::A2,
        };
        assert_eq!(i.src_gprs(), vec![Reg::A2]);
    }
}
