//! Binary instruction decoding.

use crate::encode::*;
use crate::instr::{AluImmOp, AluOp, BranchCond, CsrOp, Instr, LoadWidth, StoreWidth};
use crate::Reg;
use std::fmt;

/// Error returned by [`decode`] for words that are not valid RV64IM +
/// `Zicsr` + HWST128 instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Infallible: the index is masked to 5 bits and `Reg` has 32 variants.
#[allow(clippy::expect_used)]
fn rd(w: u32) -> Reg {
    Reg::from_index(((w >> 7) & 0x1f) as u8).expect("5-bit index")
}
#[allow(clippy::expect_used)]
fn rs1(w: u32) -> Reg {
    Reg::from_index(((w >> 15) & 0x1f) as u8).expect("5-bit index")
}
#[allow(clippy::expect_used)]
fn rs2(w: u32) -> Reg {
    Reg::from_index(((w >> 20) & 0x1f) as u8).expect("5-bit index")
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended [11:5]
    let lo = ((w >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}
fn imm_b(w: u32) -> i64 {
    let b12 = ((w as i32) >> 31) as i64; // sign
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3f) as i64;
    let b4_1 = ((w >> 8) & 0xf) as i64;
    (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}
fn imm_u(w: u32) -> i64 {
    (w & 0xffff_f000) as i32 as i64
}
fn imm_j(w: u32) -> i64 {
    let b20 = ((w as i32) >> 31) as i64;
    let b19_12 = ((w >> 12) & 0xff) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3ff) as i64;
    (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes a 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not correspond to any
/// instruction this ISA defines.
///
/// # Example
///
/// ```
/// use hwst_isa::{decode, Instr};
///
/// assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
/// assert!(decode(0xffff_ffff).is_err());
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let w = word;
    Ok(match w & 0x7f {
        OP_LUI => Instr::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        OP_AUIPC => Instr::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        OP_JAL => Instr::Jal {
            rd: rd(w),
            offset: imm_j(w),
        },
        OP_JALR if funct3(w) == 0 => Instr::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        },
        OP_BRANCH => {
            let cond = match funct3(w) {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return err,
            };
            Instr::Branch {
                cond,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }
        }
        op @ (OP_LOAD | OP_CUSTOM2) => {
            let width = decode_load_width(funct3(w)).ok_or(DecodeError { word })?;
            Instr::Load {
                width,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
                checked: op == OP_CUSTOM2,
            }
        }
        op @ (OP_STORE | OP_CUSTOM3) => {
            let width = match funct3(w) {
                0b000 => StoreWidth::B,
                0b001 => StoreWidth::H,
                0b010 => StoreWidth::W,
                0b011 => StoreWidth::D,
                _ => return err,
            };
            Instr::Store {
                width,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
                checked: op == OP_CUSTOM3,
            }
        }
        OP_OP_IMM => decode_op_imm(w).ok_or(DecodeError { word })?,
        OP_OP_IMM_32 => decode_op_imm_32(w).ok_or(DecodeError { word })?,
        OP_OP => decode_op(w, false).ok_or(DecodeError { word })?,
        OP_OP_32 => decode_op(w, true).ok_or(DecodeError { word })?,
        OP_MISC_MEM => Instr::Fence,
        OP_SYSTEM => match funct3(w) {
            0b000 => match w >> 20 {
                0 => Instr::Ecall,
                1 => Instr::Ebreak,
                _ => return err,
            },
            0b001 => csr_instr(w, CsrOp::Rw),
            0b010 => csr_instr(w, CsrOp::Rs),
            0b011 => csr_instr(w, CsrOp::Rc),
            _ => return err,
        },
        OP_CUSTOM0 => {
            let (r_d, r_s1, off) = (rd(w), rs1(w), imm_i(w));
            match funct3(w) {
                F3_LBDLS => Instr::Lbdls {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_LBDUS => Instr::Lbdus {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_LBAS => Instr::Lbas {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_LBND => Instr::Lbnd {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_LKEY => Instr::Lkey {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_LLOC => Instr::Lloc {
                    rd: r_d,
                    rs1: r_s1,
                    offset: off,
                },
                F3_TCHK => Instr::Tchk { rs1: r_s1 },
                _ => return err,
            }
        }
        OP_CUSTOM1 => match funct3(w) {
            F3_SRFOP => match funct7(w) {
                F7_BNDRS => Instr::Bndrs {
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                },
                F7_BNDRT => Instr::Bndrt {
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                },
                F7_SRFMV => Instr::SrfMv {
                    rd: rd(w),
                    rs1: rs1(w),
                },
                F7_SRFCLR => Instr::SrfClr { rd: rd(w) },
                _ => return err,
            },
            F3_SBDL => Instr::Sbdl {
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
            },
            F3_SBDU => Instr::Sbdu {
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
            },
            _ => return err,
        },
        _ => return err,
    })
}

fn csr_instr(w: u32, op: CsrOp) -> Instr {
    Instr::Csr {
        op,
        rd: rd(w),
        rs1: rs1(w),
        csr: (w >> 20) as u16,
    }
}

fn decode_load_width(f3: u32) -> Option<LoadWidth> {
    Some(match f3 {
        0b000 => LoadWidth::B,
        0b001 => LoadWidth::H,
        0b010 => LoadWidth::W,
        0b011 => LoadWidth::D,
        0b100 => LoadWidth::Bu,
        0b101 => LoadWidth::Hu,
        0b110 => LoadWidth::Wu,
        _ => return None,
    })
}

fn decode_op_imm(w: u32) -> Option<Instr> {
    let (r_d, r_s1) = (rd(w), rs1(w));
    let op = match funct3(w) {
        0b000 => AluImmOp::Addi,
        0b010 => AluImmOp::Slti,
        0b011 => AluImmOp::Sltiu,
        0b100 => AluImmOp::Xori,
        0b110 => AluImmOp::Ori,
        0b111 => AluImmOp::Andi,
        0b001 => {
            if w >> 26 != 0 {
                return None;
            }
            return Some(Instr::AluImm {
                op: AluImmOp::Slli,
                rd: r_d,
                rs1: r_s1,
                imm: ((w >> 20) & 0x3f) as i64,
            });
        }
        0b101 => {
            let op = match w >> 26 {
                0b000000 => AluImmOp::Srli,
                0b010000 => AluImmOp::Srai,
                _ => return None,
            };
            return Some(Instr::AluImm {
                op,
                rd: r_d,
                rs1: r_s1,
                imm: ((w >> 20) & 0x3f) as i64,
            });
        }
        _ => unreachable!(),
    };
    Some(Instr::AluImm {
        op,
        rd: r_d,
        rs1: r_s1,
        imm: imm_i(w),
    })
}

fn decode_op_imm_32(w: u32) -> Option<Instr> {
    let (r_d, r_s1) = (rd(w), rs1(w));
    match funct3(w) {
        0b000 => Some(Instr::AluImm {
            op: AluImmOp::Addiw,
            rd: r_d,
            rs1: r_s1,
            imm: imm_i(w),
        }),
        0b001 if funct7(w) == 0 => Some(Instr::AluImm {
            op: AluImmOp::Slliw,
            rd: r_d,
            rs1: r_s1,
            imm: ((w >> 20) & 0x1f) as i64,
        }),
        0b101 => {
            let op = match funct7(w) {
                0b0000000 => AluImmOp::Srliw,
                0b0100000 => AluImmOp::Sraiw,
                _ => return None,
            };
            Some(Instr::AluImm {
                op,
                rd: r_d,
                rs1: r_s1,
                imm: ((w >> 20) & 0x1f) as i64,
            })
        }
        _ => None,
    }
}

fn decode_op(w: u32, word_form: bool) -> Option<Instr> {
    use AluOp::*;
    let op = match (funct7(w), funct3(w), word_form) {
        (0b0000000, 0b000, false) => Add,
        (0b0100000, 0b000, false) => Sub,
        (0b0000000, 0b001, false) => Sll,
        (0b0000000, 0b010, false) => Slt,
        (0b0000000, 0b011, false) => Sltu,
        (0b0000000, 0b100, false) => Xor,
        (0b0000000, 0b101, false) => Srl,
        (0b0100000, 0b101, false) => Sra,
        (0b0000000, 0b110, false) => Or,
        (0b0000000, 0b111, false) => And,
        (0b0000001, 0b000, false) => Mul,
        (0b0000001, 0b001, false) => Mulh,
        (0b0000001, 0b010, false) => Mulhsu,
        (0b0000001, 0b011, false) => Mulhu,
        (0b0000001, 0b100, false) => Div,
        (0b0000001, 0b101, false) => Divu,
        (0b0000001, 0b110, false) => Rem,
        (0b0000001, 0b111, false) => Remu,
        (0b0000000, 0b000, true) => Addw,
        (0b0100000, 0b000, true) => Subw,
        (0b0000000, 0b001, true) => Sllw,
        (0b0000000, 0b101, true) => Srlw,
        (0b0100000, 0b101, true) => Sraw,
        (0b0000001, 0b000, true) => Mulw,
        (0b0000001, 0b100, true) => Divw,
        (0b0000001, 0b101, true) => Divuw,
        (0b0000001, 0b110, true) => Remw,
        (0b0000001, 0b111, true) => Remuw,
        _ => return None,
    };
    Some(Instr::Alu {
        op,
        rd: rd(w),
        rs1: rs1(w),
        rs2: rs2(w),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0).is_err()); // all-zero is defined illegal in RISC-V
        let e = decode(0xffff_ffff).unwrap_err();
        assert!(e.to_string().contains("0xffffffff"));
    }

    #[test]
    fn decodes_known_words() {
        assert_eq!(decode(0x0000_0073).unwrap(), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Instr::Ebreak);
        assert_eq!(
            decode(0x0010_0513).unwrap(),
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 1
            }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1 => 0xfff50513
        assert_eq!(
            decode(0xfff5_0513).unwrap(),
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: -1
            }
        );
    }

    #[test]
    fn rejects_bad_shift_funct() {
        // slli with funct6 != 0
        let w = Instr::AluImm {
            op: AluImmOp::Slli,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        }
        .encode()
            | (1 << 30);
        assert!(decode(w).is_err());
    }

    #[test]
    fn rejects_unknown_custom_funct() {
        // custom-0 with funct3 = 7 is reserved.
        let w = OP_CUSTOM0 | (0b111 << 12);
        assert!(decode(w).is_err());
        // custom-1 funct3=0 with unknown funct7.
        let w = OP_CUSTOM1 | (0x7f << 25);
        assert!(decode(w).is_err());
    }
}
