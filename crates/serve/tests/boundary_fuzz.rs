//! The fuzzed service boundary (CI's zero-panic gate).
//!
//! Arbitrary tenants, payload bytes, IR modules, scheme names,
//! compression CSRs and fuel values are thrown at the full service
//! lifecycle (`submit` → `drain` → `into_report`). The contract under
//! test:
//!
//! 1. The service itself never panics — hostile input of any shape maps
//!    to a typed [`ServeError`] (worker panics are a separate, isolated
//!    channel, and without chaos probes in the mix there must be none).
//! 2. Every submission — shed or admitted — yields exactly one report.
//! 3. Admission never blocks: a full queue is an immediate typed shed.

use hwst128::compiler::ModuleBuilder;
use hwst128::workloads::Scale;
use hwst_harness::NullSink;
use hwst_serve::{Payload, Serve, ServeConfig, Submission, TenantQuota, Verdict};
use proptest::prelude::*;
use std::time::Duration;

/// A small, watchdogged service so fuzz cases stay fast.
fn fuzz_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 16,
        workers: 2,
        timeout: Some(Duration::from_secs(10)),
        batch: 4,
        default_fuel: 4_096,
        quota: TenantQuota {
            max_fuel: 4_096,
            max_image_bytes: 1 << 12,
            max_module_insts: 256,
            max_in_flight: 8,
            trips_to_open: 2,
            cooldown_ticks: 4,
        },
        cache_capacity: 8,
        max_ticks: 400,
        ..ServeConfig::default()
    }
}

fn arb_tenant() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("alice".to_string()),
        Just(String::new()),
        Just("x".repeat(100)),
        Just("bad\u{0}name".to_string()),
        prop::collection::vec(any::<u8>(), 0..12)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ]
}

fn arb_module_payload() -> impl Strategy<Value = Payload> {
    (0usize..12, any::<bool>(), any::<i64>()).prop_map(|(konsts, mainless, seed)| {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func(if mainless { "helper" } else { "main" });
        for k in 0..konsts as i64 {
            let _ = f.konst(seed.wrapping_add(k));
        }
        f.ret(None);
        f.finish();
        Payload::Module(Box::new(mb.finish()))
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        // Raw bytes at assorted bases: ragged, undecodable, occasionally
        // decodable garbage that runs into a trap or the fuel quota.
        (
            prop::collection::vec(any::<u8>(), 0..64),
            prop_oneof![
                Just(0x1_0000u64),
                Just(0u64),
                Just(u64::MAX),
                Just(u64::MAX - 3),
                any::<u64>()
            ]
        )
            .prop_map(|(bytes, base)| Payload::Image { base, bytes }),
        arb_module_payload(),
        prop_oneof![
            Just("string".to_string()),
            Just("no-such-workload".to_string()),
            prop::collection::vec(any::<u8>(), 0..8)
                .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
        ]
        .prop_map(|name| Payload::Workload {
            name,
            scale: Scale::Test
        }),
    ]
}

fn arb_scheme() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("HWST128".to_string()),
        Just("baseline".to_string()),
        Just("hwst128_TCHK".to_string()),
        Just("MPX".to_string()),
        Just(String::new()),
        prop::collection::vec(any::<u8>(), 0..6)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ]
}

fn arb_submission() -> impl Strategy<Value = Submission> {
    (
        arb_tenant(),
        arb_payload(),
        arb_scheme(),
        prop_oneof![Just(None), Just(Some(0u64)), any::<u64>().prop_map(Some)],
        prop_oneof![
            Just(None),
            Just(Some(0u64)),
            Just(Some(u64::MAX)),
            any::<u64>().prop_map(Some)
        ],
    )
        .prop_map(|(tenant, payload, scheme, compcfg_csr, fuel)| Submission {
            tenant,
            payload,
            scheme,
            compcfg_csr,
            fuel,
            trace: false,
        })
}

/// Drives one full service lifecycle and checks the boundary contract.
fn exercise(subs: Vec<Submission>) -> Result<(), TestCaseError> {
    let n = subs.len();
    let mut serve = Serve::new(fuzz_config());
    for s in subs {
        // Both outcomes are legal; panics and blocking are not.
        let _ = serve.submit(s);
    }
    serve.drain(&mut NullSink);
    let report = serve.into_report();
    prop_assert_eq!(report.reports.len(), n, "one report per submission");
    prop_assert_eq!(report.stats.submitted, n as u64);
    // No chaos probes in the fuzz mix: any isolated worker panic is a
    // real bug in the execution path, not an expected probe.
    prop_assert_eq!(report.stats.panics_isolated, 0);
    for (i, r) in report.reports.iter().enumerate() {
        prop_assert_eq!(r.id, i as u64, "ids are dense and ordered");
        prop_assert!(!r.verdict.slug().is_empty());
        if let Verdict::Rejected(e) = &r.verdict {
            prop_assert!(!e.code().is_empty());
            prop_assert!(!e.to_string().is_empty());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn service_boundary_never_panics(subs in prop::collection::vec(arb_submission(), 1..6)) {
        exercise(subs)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The deep sweep CI's heavy-gates job runs (`--ignored`).
    #[test]
    #[ignore = "deep fuzz sweep; run explicitly or in heavy gates"]
    fn service_boundary_never_panics_deep(subs in prop::collection::vec(arb_submission(), 1..10)) {
        exercise(subs)?;
    }
}
