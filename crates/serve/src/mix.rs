//! Deterministic mixed workloads: benign tenants, duplicates (cache
//! exercise), hostile submissions of every rejection shape, chaos
//! probes (retry exercise), and a flooding tenant (admission-control
//! exercise).
//!
//! The mix is the input of the S1 service-robustness experiment
//! (EXPERIMENTS.md): every hostile submission must end in a typed
//! [`crate::ServeError`], never a panic. Generation is seeded
//! splitmix64, so the same [`MixConfig`] always produces the same
//! submission vector — which is what lets the determinism gates compare
//! decision logs across worker counts.

use crate::clock::splitmix64;
use crate::quota::TenantQuota;
use crate::service::{Payload, Submission};
use hwst128::compiler::ModuleBuilder;
use hwst128::workloads::Scale;

/// Which part of the mix a submission belongs to (drives the S1
/// summary's per-category accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixCategory {
    /// A well-formed workload from a cooperative tenant.
    Benign,
    /// An exact duplicate of an earlier benign submission (should hit
    /// the image cache once the original has compiled).
    Duplicate,
    /// A submission engineered to be rejected with a typed error.
    Hostile,
    /// A chaos probe that panics on its first attempt(s) and then
    /// succeeds (exercises panic isolation + retry-after-backoff).
    Chaos,
    /// One tenant submitting past its admission limits.
    Flood,
}

impl MixCategory {
    /// Stable lowercase name for JSON and logs.
    pub const fn name(self) -> &'static str {
        match self {
            MixCategory::Benign => "benign",
            MixCategory::Duplicate => "duplicate",
            MixCategory::Hostile => "hostile",
            MixCategory::Chaos => "chaos",
            MixCategory::Flood => "flood",
        }
    }
}

/// One generated submission, tagged with its category.
#[derive(Debug, Clone)]
pub struct MixedSubmission {
    /// Which part of the mix this is.
    pub category: MixCategory,
    /// The submission itself.
    pub submission: Submission,
}

/// How much of each category to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixConfig {
    /// Benign workload submissions.
    pub benign: usize,
    /// Duplicates of the first benign submissions.
    pub duplicates: usize,
    /// Hostile submissions (cycling through every rejection shape).
    pub hostile: usize,
    /// Fuel bombs from the `mallory-bomber` tenant (each exhausts its
    /// tiny fuel quota; enough of them open the tenant's circuit).
    pub bombs: usize,
    /// Chaos probes.
    pub chaos: usize,
    /// Flood submissions from the `flooder` tenant.
    pub flood: usize,
    /// Seed of the content stream.
    pub seed: u64,
}

impl MixConfig {
    /// The CI smoke mix: one of every hostile shape, enough bombs to
    /// open a circuit, a small flood.
    pub const fn smoke() -> Self {
        MixConfig {
            benign: 6,
            duplicates: 4,
            hostile: 11,
            bombs: 4,
            chaos: 2,
            flood: 8,
            seed: 0x00C0_FFEE,
        }
    }

    /// The full S1 mix.
    pub const fn full() -> Self {
        MixConfig {
            benign: 18,
            duplicates: 8,
            hostile: 22,
            bombs: 6,
            chaos: 4,
            flood: 16,
            seed: 0x00C0_FFEE,
        }
    }

    /// Total submissions this config generates (the `+1` is the
    /// bomber's follow-up that demonstrates the open circuit shedding).
    pub const fn total(&self) -> usize {
        self.benign + self.duplicates + self.hostile + self.bombs + self.chaos + self.flood + 1
    }
}

/// Small, fast workloads the benign tenants rotate through.
const BENIGN_WORKLOADS: [&str; 4] = ["string", "CRC32", "bitcounts", "treeadd"];
const BENIGN_TENANTS: [&str; 3] = ["alice", "bob", "carol"];
const BENIGN_SCHEMES: [&str; 3] = ["HWST128", "HWST128_tchk", "baseline"];

fn benign_submission(i: usize) -> Submission {
    Submission::new(
        BENIGN_TENANTS[i % BENIGN_TENANTS.len()],
        Payload::Workload {
            name: BENIGN_WORKLOADS[i % BENIGN_WORKLOADS.len()].to_string(),
            scale: Scale::Test,
        },
        BENIGN_SCHEMES[i % BENIGN_SCHEMES.len()],
    )
}

/// An IR module that exceeds `limit` instructions.
fn oversized_module(limit: usize) -> Payload {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    for k in 0..(limit as i64 + 8) {
        let _ = f.konst(k);
    }
    f.ret(None);
    f.finish();
    Payload::Module(Box::new(mb.finish()))
}

/// An IR module with no `main` — compiles are rejected server-side.
fn mainless_module() -> Payload {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("helper");
    let _ = f.konst(1);
    f.ret(None);
    f.finish();
    Payload::Module(Box::new(mb.finish()))
}

/// One hostile submission per rejection shape, cycled by `i`.
fn hostile_submission(i: usize, quota: &TenantQuota, rng: &mut u64) -> Submission {
    match i % 10 {
        0 => {
            // Ragged image: length not a multiple of 4.
            let len = 4 * (1 + (splitmix64(rng) % 6) as usize) + 1 + (splitmix64(rng) % 3) as usize;
            Submission::new(
                "mallory-ragged",
                Payload::Image {
                    base: 0x1_0000,
                    bytes: vec![0x13; len],
                },
                "HWST128",
            )
        }
        1 => {
            // Undecodable image: words drawn from the two encodings
            // that are undecodable by construction.
            let words = 2 + (splitmix64(rng) % 6) as usize;
            let mut bytes = Vec::with_capacity(words * 4);
            for _ in 0..words {
                let w: u32 = if splitmix64(rng).is_multiple_of(2) {
                    0
                } else {
                    u32::MAX
                };
                bytes.extend_from_slice(&w.to_le_bytes());
            }
            Submission::new(
                "mallory-undecodable",
                Payload::Image {
                    base: 0x1_0000,
                    bytes,
                },
                "HWST128",
            )
        }
        2 => Submission::new(
            "mallory-workload",
            Payload::Workload {
                name: "no-such-workload".to_string(),
                scale: Scale::Test,
            },
            "HWST128",
        ),
        3 => Submission::new(
            "mallory-scheme",
            Payload::Workload {
                name: "string".to_string(),
                scale: Scale::Test,
            },
            "MPX",
        ),
        4 => {
            // CSR 0 encodes all-zero field widths, which the codec
            // rejects.
            let mut s = Submission::new(
                "mallory-compcfg",
                Payload::Workload {
                    name: "string".to_string(),
                    scale: Scale::Test,
                },
                "HWST128",
            );
            s.compcfg_csr = Some(0);
            s
        }
        5 => Submission::new(
            "mallory-oversized",
            Payload::Image {
                base: 0x1_0000,
                bytes: vec![0; quota.max_image_bytes + 4],
            },
            "HWST128",
        ),
        6 => Submission::new(
            "mallory-bigmodule",
            oversized_module(quota.max_module_insts),
            "HWST128",
        ),
        7 => Submission::new(
            "", // empty tenant name
            Payload::Workload {
                name: "string".to_string(),
                scale: Scale::Test,
            },
            "HWST128",
        ),
        8 => Submission::new(
            "mallory-empty",
            Payload::Image {
                base: 0x1_0000,
                bytes: Vec::new(),
            },
            "HWST128",
        ),
        _ => Submission::new("mallory-nomain", mainless_module(), "HWST128"),
    }
}

/// A fuel bomb: a legitimate workload with a fuel allowance far below
/// what it needs, so every run trips the fuel quota.
fn bomb_submission() -> Submission {
    let mut s = Submission::new(
        "mallory-bomber",
        Payload::Workload {
            name: "string".to_string(),
            scale: Scale::Test,
        },
        "baseline",
    );
    s.fuel = Some(64);
    s
}

/// Generates the full mixed submission vector for `cfg`, in a fixed
/// category order (benign, duplicates, hostile, bombs, chaos, flood,
/// bomber follow-up) so ids — and therefore the decision log — are
/// reproducible.
pub fn mixed_submissions(cfg: &MixConfig, quota: &TenantQuota) -> Vec<MixedSubmission> {
    let mut rng = cfg.seed;
    let mut out = Vec::with_capacity(cfg.total());
    for i in 0..cfg.benign {
        out.push(MixedSubmission {
            category: MixCategory::Benign,
            submission: benign_submission(i),
        });
    }
    for i in 0..cfg.duplicates {
        // Same payload/scheme as a benign submission, different tenant:
        // the cache is content-addressed, not tenant-scoped.
        let mut dup = benign_submission(i);
        dup.tenant = format!("dup-{}", i % 2);
        out.push(MixedSubmission {
            category: MixCategory::Duplicate,
            submission: dup,
        });
    }
    for i in 0..cfg.hostile {
        out.push(MixedSubmission {
            category: MixCategory::Hostile,
            submission: hostile_submission(i, quota, &mut rng),
        });
    }
    for _ in 0..cfg.bombs {
        out.push(MixedSubmission {
            category: MixCategory::Hostile,
            submission: bomb_submission(),
        });
    }
    for i in 0..cfg.chaos {
        out.push(MixedSubmission {
            category: MixCategory::Chaos,
            submission: Submission::new(
                "chaos",
                Payload::ChaosPanic {
                    fail_attempts: 1 + (i % 2) as u32,
                },
                "baseline",
            ),
        });
    }
    for _ in 0..cfg.flood {
        let mut s = Submission::new(
            "flooder",
            Payload::Workload {
                name: "string".to_string(),
                scale: Scale::Test,
            },
            "baseline",
        );
        s.fuel = Some(quota.max_fuel);
        out.push(MixedSubmission {
            category: MixCategory::Flood,
            submission: s,
        });
    }
    // The bomber comes back while (if the bombs landed) its circuit is
    // open — this submission demonstrates the suspended-tenant shed.
    out.push(MixedSubmission {
        category: MixCategory::Hostile,
        submission: Submission::new(
            "mallory-bomber",
            Payload::Workload {
                name: "string".to_string(),
                scale: Scale::Test,
            },
            "baseline",
        ),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let q = TenantQuota::default();
        let a = mixed_submissions(&MixConfig::smoke(), &q);
        let b = mixed_submissions(&MixConfig::smoke(), &q);
        assert_eq!(a.len(), MixConfig::smoke().total());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.category, y.category);
            assert_eq!(x.submission, y.submission);
        }
    }

    #[test]
    fn hostile_covers_every_shape() {
        let q = TenantQuota::default();
        let mut rng = 7;
        let shapes: Vec<Submission> = (0..10)
            .map(|i| hostile_submission(i, &q, &mut rng))
            .collect();
        // All ten shapes are pairwise distinct submissions.
        for (i, a) in shapes.iter().enumerate() {
            for b in shapes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
