//! The service's logical clock and its deterministic random stream.
//!
//! Nothing in the scheduling core reads wall time: admission, backoff
//! and circuit cool-downs are all expressed in *ticks* of this clock,
//! which advances exactly once per drain round. That is what makes the
//! decision log byte-identical for any `--jobs N` (the determinism
//! gate in `tests/serve.rs` at the workspace root).

/// One step of the splitmix64 generator — the same deterministic
/// stream the fault-injection and mutation campaigns use.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A monotone logical clock counted in drain rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickClock {
    now: u64,
}

impl TickClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by one tick.
    pub fn advance(&mut self) {
        self.now += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        let mut a = 42;
        let mut b = 42;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::BTreeSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn clock_advances() {
        let mut c = TickClock::new();
        assert_eq!(c.now(), 0);
        c.advance();
        c.advance();
        assert_eq!(c.now(), 2);
    }
}
