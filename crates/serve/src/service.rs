//! The service core: admission, scheduling, execution, reporting.
//!
//! A [`Serve`] instance accepts [`Submission`]s (shedding hostile or
//! over-quota ones at admission with a typed [`ServeError`]), then
//! [`Serve::drain`]s the queue in deterministic *drain rounds*: each
//! round dispatches up to a bounded batch of due jobs (by submission id)
//! onto the `hwst-harness` worker pool, folds the results back in id
//! order, schedules retries with deterministic backoff, and advances
//! the logical [`TickClock`] by one. Because every scheduling decision
//! reads only the tick clock and id-ordered results — never wall time —
//! the [`Decision`] log is byte-identical for any worker count.

use crate::backoff::BackoffPolicy;
use crate::cache::{cache_key, CacheKey, CachedRun, ImageCache};
use crate::clock::TickClock;
use crate::error::ServeError;
use crate::quota::{TenantQuota, TenantState};
use hwst128::compiler::ir::Module;
use hwst128::compiler::{compile_with_options, CompileOptions, OptLevel, Scheme};
use hwst128::exec::{BlockCache, Engine};
use hwst128::metadata::CompressionConfig;
use hwst128::sim::{Machine, SafetyConfig, Snapshot, Trap};
use hwst128::telemetry::{chrome_trace, Profiler};
use hwst128::workloads::{Scale, Workload};
use hwst_harness::{run, Job, JobOutcome, Json, OutcomeKind, PoolConfig, Sink};
use std::collections::BTreeMap;
use std::time::Duration;

/// Ring capacity of the span recorder when a submission asks for a
/// Chrome trace.
const TRACE_RING: usize = 4096;

/// What a tenant submits for execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// A named workload from the `hwst-workloads` catalogue.
    Workload {
        /// The workload name (see [`hwst128::workloads::all`]).
        name: String,
        /// The problem size.
        scale: Scale,
    },
    /// A raw RV64+HWST128 image of little-endian instruction words.
    Image {
        /// Load address of the first word.
        base: u64,
        /// The image bytes.
        bytes: Vec<u8>,
    },
    /// An IR module compiled server-side with the submission's scheme.
    Module(Box<Module>),
    /// A chaos probe: the run attempt panics while `attempt <=
    /// fail_attempts`, then succeeds — exercising panic isolation and
    /// retry-after-backoff deterministically.
    ChaosPanic {
        /// Attempts that panic before the probe succeeds.
        fail_attempts: u32,
    },
}

impl Payload {
    /// A short display label for reports and decisions.
    pub fn label(&self) -> String {
        match self {
            Payload::Workload { name, .. } => name.clone(),
            Payload::Image { bytes, .. } => format!("image[{}B]", bytes.len()),
            Payload::Module(m) => format!("module[{}i]", m.inst_count()),
            Payload::ChaosPanic { fail_attempts } => format!("chaos[{fail_attempts}]"),
        }
    }

    /// Canonical content bytes for the cache key, when the payload is
    /// cacheable (chaos probes are not).
    fn canonical_bytes(&self) -> Option<Vec<u8>> {
        match self {
            Payload::Workload { name, scale } => {
                let mut v = b"wl:".to_vec();
                v.extend_from_slice(name.as_bytes());
                v.push(b'@');
                v.extend_from_slice(&scale.factor().to_le_bytes());
                Some(v)
            }
            Payload::Image { base, bytes } => {
                let mut v = b"img:".to_vec();
                v.extend_from_slice(&base.to_le_bytes());
                v.extend_from_slice(bytes);
                Some(v)
            }
            Payload::Module(m) => {
                let mut v = b"mod:".to_vec();
                v.extend_from_slice(m.to_string().as_bytes());
                Some(v)
            }
            Payload::ChaosPanic { .. } => None,
        }
    }
}

/// One request to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// The submitting tenant.
    pub tenant: String,
    /// What to run.
    pub payload: Payload,
    /// Instrumentation scheme, by label (`"baseline"`, `"SBCETS"`,
    /// `"HWST128"`, `"HWST128_tchk"`, `"SHORE"`; case-insensitive).
    pub scheme: String,
    /// Optional compression-config CSR override; `None` keeps the
    /// scheme's default.
    pub compcfg_csr: Option<u64>,
    /// Optional instruction budget; clamped to the tenant fuel quota.
    pub fuel: Option<u64>,
    /// Whether to attach a Chrome trace to the report.
    pub trace: bool,
}

impl Submission {
    /// A plain submission with scheme defaults and no trace.
    pub fn new(tenant: impl Into<String>, payload: Payload, scheme: impl Into<String>) -> Self {
        Submission {
            tenant: tenant.into(),
            payload,
            scheme: scheme.into(),
            compcfg_csr: None,
            fuel: None,
            trace: false,
        }
    }
}

/// Looks an instrumentation scheme up by its paper label,
/// case-insensitively.
pub fn scheme_by_name(name: &str) -> Option<Scheme> {
    [
        Scheme::None,
        Scheme::Sbcets,
        Scheme::Hwst128,
        Scheme::Hwst128Tchk,
        Scheme::Shore,
    ]
    .into_iter()
    .find(|s| s.label().eq_ignore_ascii_case(name))
}

/// How an admitted job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The program ran to `exit`.
    Completed {
        /// The exit code.
        exit_code: u64,
        /// Total pipeline cycles.
        cycles: u64,
        /// Instructions retired.
        instret: u64,
    },
    /// A memory-safety violation was detected — the service's *success*
    /// case for hostile programs.
    Violation {
        /// `"spatial"` or `"temporal"`.
        kind: &'static str,
        /// The trap, rendered.
        detail: String,
    },
    /// The program faulted on a non-safety trap (bad fetch, misaligned
    /// access, ...).
    Faulted {
        /// The trap, rendered.
        detail: String,
    },
    /// The submission was rejected with a typed error (at admission or
    /// during execution).
    Rejected(ServeError),
}

impl Verdict {
    /// A stable slug for logs and JSON.
    pub fn slug(&self) -> String {
        match self {
            Verdict::Completed { .. } => "completed".to_string(),
            Verdict::Violation { kind, .. } => format!("violation-{kind}"),
            Verdict::Faulted { .. } => "faulted".to_string(),
            Verdict::Rejected(e) => format!("rejected-{}", e.code()),
        }
    }

    /// Whether this is a typed rejection.
    pub fn is_rejection(&self) -> bool {
        matches!(self, Verdict::Rejected(_))
    }
}

/// The final record of one submission (every submission gets exactly
/// one, rejected-at-admission ones included).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Submission id (dense, in submission order).
    pub id: u64,
    /// The tenant.
    pub tenant: String,
    /// The payload label.
    pub label: String,
    /// Run attempts made (0 when shed at admission).
    pub attempts: u32,
    /// Whether any attempt warm-started from the image cache.
    pub cache_hit: bool,
    /// Total ticks spent waiting on retry backoff.
    pub backoff_ticks: u64,
    /// How it ended.
    pub verdict: Verdict,
    /// Program output (`putchar`/`print_u64`), when it completed.
    pub output: String,
    /// The Chrome trace, when requested and the run completed.
    pub trace: Option<Json>,
}

/// One line of the deterministic decision log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The tick the decision was taken at.
    pub tick: u64,
    /// The submission it concerns.
    pub job: u64,
    /// The tenant.
    pub tenant: String,
    /// What was decided.
    pub action: String,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t{:04} job{:04} {}: {}",
            self.tick, self.job, self.tenant, self.action
        )
    }
}

/// Service-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions received (admitted or not).
    pub submitted: u64,
    /// Submissions shed at admission.
    pub shed_at_submit: u64,
    /// Submissions admitted to the queue.
    pub admitted: u64,
    /// Admitted jobs shed later because their tenant's circuit opened.
    pub shed_suspended: u64,
    /// Jobs that ran to `exit`.
    pub completed: u64,
    /// Jobs stopped by a safety violation.
    pub violations: u64,
    /// Jobs stopped by a non-safety trap.
    pub faulted: u64,
    /// Jobs finalized with a typed rejection (admission sheds included).
    pub rejected: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Jobs that succeeded on attempt > 1.
    pub retry_successes: u64,
    /// Image-cache hits.
    pub cache_hits: u64,
    /// Image-cache misses.
    pub cache_misses: u64,
    /// Decoded blocks inherited by warm starts instead of re-decoded
    /// (always 0 on the cycle engine, which never decodes blocks).
    pub decode_skips: u64,
    /// Worker panics isolated by the pool.
    pub panics_isolated: u64,
    /// Quota trips (fuel exhaustion or watchdog expiry).
    pub quota_trips: u64,
    /// Times a tenant circuit opened.
    pub circuit_opens: u64,
    /// Drain rounds executed.
    pub ticks: u64,
}

/// Service sizing and policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue capacity; admissions beyond it are shed with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads per drain round.
    pub workers: usize,
    /// Per-attempt wall-clock watchdog (see
    /// [`hwst_harness::PoolConfig`]).
    pub timeout: Option<Duration>,
    /// Jobs dispatched per drain round (bounds tail latency and lets
    /// later duplicates hit the cache entries earlier rounds filled).
    pub batch: usize,
    /// Fuel when the submission names none (still clamped to the
    /// tenant quota).
    pub default_fuel: u64,
    /// The per-tenant limits.
    pub quota: TenantQuota,
    /// The retry policy.
    pub backoff: BackoffPolicy,
    /// Image-cache capacity, in entries.
    pub cache_capacity: usize,
    /// The execution engine run attempts use. Both engines are
    /// bit-identical (state, stats, traps, decision log); `Fast` — the
    /// default — additionally populates and reuses decoded-block
    /// caches across warm starts.
    pub engine: Engine,
    /// Back-end optimization level for server-side compilation of
    /// workload and module payloads. Part of the image-cache key, so
    /// tiers never share cache entries.
    pub opt: OptLevel,
    /// Hard bound on drain rounds — the service's own watchdog; jobs
    /// still pending at this tick are finalized as
    /// [`ServeError::WorkerLost`].
    pub max_ticks: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            workers: 1,
            timeout: None,
            batch: 8,
            default_fuel: 2_000_000,
            quota: TenantQuota::default(),
            backoff: BackoffPolicy::default(),
            cache_capacity: 64,
            engine: Engine::default(),
            opt: OptLevel::O0,
            max_ticks: 10_000,
        }
    }
}

/// A queued, admitted job.
#[derive(Debug, Clone)]
struct QueuedJob {
    id: u64,
    tenant: String,
    label: String,
    payload: Payload,
    scheme: Scheme,
    compression: Option<CompressionConfig>,
    fuel: u64,
    trace: bool,
    attempt: u32,
    due: u64,
    backoff_ticks: u64,
    cache_hit: bool,
    key: Option<CacheKey>,
}

/// What one run attempt produced (the worker closure's return value).
#[derive(Debug, Clone)]
struct RunArtifact {
    /// The post-load snapshot and the decoded-block cache the run
    /// populated, present on cache misses of cacheable payloads so the
    /// coordinator can fill the image cache.
    cache_entry: Option<(Snapshot, BlockCache)>,
    /// Decoded blocks this attempt inherited from a warm cache entry
    /// instead of decoding itself (0 on cold starts and on the cycle
    /// engine).
    decode_skips: u64,
    /// The Chrome trace, when requested.
    trace: Option<Json>,
    /// The run result: a machine outcome or a typed rejection.
    result: Result<RunOutcome, ServeError>,
}

#[derive(Debug, Clone)]
enum RunOutcome {
    /// Ran to `exit`.
    Exit(hwst128::sim::ExitStatus),
    /// Stopped on a trap.
    Trapped(Trap),
    /// A chaos probe that reached its succeeding attempt.
    Probe,
}

/// Everything a worker needs to run one attempt, owned.
struct AttemptSpec {
    payload: Payload,
    scheme: Scheme,
    compression: Option<CompressionConfig>,
    fuel: u64,
    trace: bool,
    attempt: u32,
    engine: Engine,
    opt: OptLevel,
    cached: Option<(Snapshot, BlockCache)>,
    want_cache_entry: bool,
}

/// Runs one attempt. Panics only when the payload is a chaos probe in
/// its failing window — everything else maps to a typed result.
fn run_attempt(spec: AttemptSpec) -> RunArtifact {
    let no_artifact = |e: ServeError| RunArtifact {
        cache_entry: None,
        decode_skips: 0,
        trace: None,
        result: Err(e),
    };
    if let Payload::ChaosPanic { fail_attempts } = spec.payload {
        if spec.attempt <= fail_attempts {
            panic!(
                "chaos probe: induced failure on attempt {} of {}",
                spec.attempt,
                fail_attempts + 1
            );
        }
        return RunArtifact {
            cache_entry: None,
            decode_skips: 0,
            trace: None,
            result: Ok(RunOutcome::Probe),
        };
    }
    let mut cfg = hwst128::config_for(spec.scheme);
    if let Some(c) = spec.compression {
        cfg.compression = c;
    }
    let (mut machine, mut blocks) = match spec.cached {
        Some((ref snap, ref warm)) => (snap.restore(), warm.clone()),
        None => match build_machine(&spec.payload, spec.scheme, spec.opt, cfg) {
            Ok(m) => (m, BlockCache::new()),
            Err(e) => return no_artifact(e),
        },
    };
    // Every block already decoded in the warm cache is decode work
    // this attempt inherits instead of repeating.
    let decode_skips = blocks.decodes();
    let snapshot = if spec.want_cache_entry && spec.cached.is_none() {
        Some(machine.snapshot())
    } else {
        None
    };
    let (run_result, trace) = if spec.trace {
        let mut prof = Profiler::with_recorder(TRACE_RING);
        let r = spec
            .engine
            .run_profiled(&mut machine, spec.fuel, &mut prof, &mut blocks);
        let events: Vec<_> = prof
            .recorder
            .as_ref()
            .map(|r| r.to_vec())
            .unwrap_or_default();
        (r, Some(chrome_trace(&events)))
    } else {
        (spec.engine.run(&mut machine, spec.fuel, &mut blocks), None)
    };
    RunArtifact {
        // The block cache travels with the snapshot so warm starts
        // resume with every block the cold run decoded.
        cache_entry: snapshot.map(|snap| (snap, blocks)),
        decode_skips,
        trace,
        result: Ok(match run_result {
            Ok(exit) => RunOutcome::Exit(exit),
            Err(trap) => RunOutcome::Trapped(trap),
        }),
    }
}

/// Builds the machine for a cold start, mapping every failure to a
/// typed error.
fn build_machine(
    payload: &Payload,
    scheme: Scheme,
    opt: OptLevel,
    cfg: SafetyConfig,
) -> Result<Machine, ServeError> {
    let opts = CompileOptions::new(scheme).with_opt(opt);
    match payload {
        Payload::Workload { name, scale } => {
            let wl = Workload::by_name(name)
                .ok_or_else(|| ServeError::UnknownWorkload { name: name.clone() })?;
            let module = wl.module(*scale);
            let prog = compile_with_options(&module, opts)
                .map_err(|e| ServeError::CompileRejected { why: e.to_string() })?
                .program;
            Ok(Machine::new(prog, cfg))
        }
        Payload::Image { base, bytes } => Machine::from_image(*base, bytes, cfg)
            .map_err(|e| ServeError::BadImage { why: e.to_string() }),
        Payload::Module(m) => {
            let prog = compile_with_options(m, opts)
                .map_err(|e| ServeError::CompileRejected { why: e.to_string() })?
                .program;
            Ok(Machine::new(prog, cfg))
        }
        Payload::ChaosPanic { .. } => Err(ServeError::WorkerLost {
            why: "chaos probe reached the machine builder".to_string(),
        }),
    }
}

/// The service.
#[derive(Debug)]
pub struct Serve {
    cfg: ServeConfig,
    clock: TickClock,
    queue: Vec<QueuedJob>,
    tenants: BTreeMap<String, TenantState>,
    cache: ImageCache,
    next_id: u64,
    decisions: Vec<Decision>,
    stats: ServeStats,
    finished: Vec<JobReport>,
}

impl Serve {
    /// A fresh service with the given configuration.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = ImageCache::new(cfg.cache_capacity);
        Serve {
            cfg,
            clock: TickClock::new(),
            queue: Vec::new(),
            tenants: BTreeMap::new(),
            cache,
            next_id: 0,
            decisions: Vec::new(),
            stats: ServeStats::default(),
            finished: Vec::new(),
        }
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    fn decide(&mut self, job: u64, tenant: &str, action: String) {
        self.decisions.push(Decision {
            tick: self.clock.now(),
            job,
            tenant: tenant.to_string(),
            action,
        });
    }

    /// Validates `sub` and either queues it (returning its id) or sheds
    /// it with a typed error. Never blocks, never panics: a full queue
    /// or over-quota tenant is an immediate typed rejection. Every
    /// submission — shed ones included — gets an id and a final
    /// [`JobReport`].
    pub fn submit(&mut self, sub: Submission) -> Result<u64, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;
        let label = sub.payload.label();
        match self.admit(&sub) {
            Ok((scheme, compression, fuel)) => {
                let tenant = self.tenants.entry(sub.tenant.clone()).or_default();
                tenant.admitted += 1;
                tenant.in_flight += 1;
                self.stats.admitted += 1;
                let key = sub.payload.canonical_bytes().map(|payload_bytes| {
                    cache_key(&[
                        &payload_bytes,
                        scheme.label().as_bytes(),
                        self.cfg.opt.label().as_bytes(),
                        &compression
                            .unwrap_or(hwst128::config_for(scheme).compression)
                            .to_csr()
                            .to_le_bytes(),
                    ])
                });
                self.decide(
                    id,
                    &sub.tenant,
                    format!("admit {label} scheme={}", scheme.label()),
                );
                self.queue.push(QueuedJob {
                    id,
                    tenant: sub.tenant,
                    label,
                    payload: sub.payload,
                    scheme,
                    compression,
                    fuel,
                    trace: sub.trace,
                    attempt: 1,
                    due: self.clock.now(),
                    backoff_ticks: 0,
                    cache_hit: false,
                    key,
                });
                Ok(id)
            }
            Err(e) => {
                self.stats.shed_at_submit += 1;
                self.stats.rejected += 1;
                // Bad tenant names get no per-tenant state (they would
                // pollute the tenant table with attacker-chosen keys).
                if !matches!(e, ServeError::BadTenant { .. }) {
                    self.tenants.entry(sub.tenant.clone()).or_default().shed += 1;
                }
                let tenant_label = if matches!(e, ServeError::BadTenant { .. }) {
                    "<invalid>".to_string()
                } else {
                    sub.tenant.clone()
                };
                self.decide(id, &tenant_label, format!("shed {}", e.code()));
                self.finished.push(JobReport {
                    id,
                    tenant: tenant_label,
                    label,
                    attempts: 0,
                    cache_hit: false,
                    backoff_ticks: 0,
                    verdict: Verdict::Rejected(e.clone()),
                    output: String::new(),
                    trace: None,
                });
                Err(e)
            }
        }
    }

    /// The admission checks, in a fixed order (structural before
    /// capacity, so the decision log is stable).
    fn admit(
        &self,
        sub: &Submission,
    ) -> Result<(Scheme, Option<CompressionConfig>, u64), ServeError> {
        if sub.tenant.is_empty() {
            return Err(ServeError::BadTenant { why: "empty name" });
        }
        if sub.tenant.len() > 64 {
            return Err(ServeError::BadTenant {
                why: "name longer than 64 bytes",
            });
        }
        if sub.tenant.chars().any(|c| c.is_control()) {
            return Err(ServeError::BadTenant {
                why: "name contains control characters",
            });
        }
        match &sub.payload {
            Payload::Image { bytes, .. } => {
                if bytes.is_empty() {
                    return Err(ServeError::EmptyImage);
                }
                if bytes.len() % 4 != 0 {
                    return Err(ServeError::BadImage {
                        why: format!("image length {} is not a multiple of 4", bytes.len()),
                    });
                }
                if bytes.len() > self.cfg.quota.max_image_bytes {
                    return Err(ServeError::OversizedImage {
                        len: bytes.len(),
                        limit: self.cfg.quota.max_image_bytes,
                    });
                }
            }
            Payload::Module(m) => {
                if m.inst_count() > self.cfg.quota.max_module_insts {
                    return Err(ServeError::OversizedModule {
                        insts: m.inst_count(),
                        limit: self.cfg.quota.max_module_insts,
                    });
                }
            }
            Payload::Workload { name, .. } => {
                if Workload::by_name(name).is_none() {
                    return Err(ServeError::UnknownWorkload { name: name.clone() });
                }
            }
            Payload::ChaosPanic { .. } => {}
        }
        let scheme = scheme_by_name(&sub.scheme).ok_or_else(|| ServeError::UnknownScheme {
            name: sub.scheme.clone(),
        })?;
        let compression =
            match sub.compcfg_csr {
                None => None,
                Some(csr) => Some(CompressionConfig::from_csr(csr).map_err(|e| {
                    ServeError::InvalidCompCfg {
                        csr,
                        why: e.to_string(),
                    }
                })?),
            };
        if let Some(t) = self.tenants.get(&sub.tenant) {
            if t.in_flight >= self.cfg.quota.max_in_flight {
                return Err(ServeError::QuotaExceeded {
                    tenant: sub.tenant.clone(),
                    quota: "in-flight",
                    limit: self.cfg.quota.max_in_flight as u64,
                });
            }
        }
        if self.queue.len() >= self.cfg.queue_capacity {
            return Err(ServeError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        let fuel = sub
            .fuel
            .unwrap_or(self.cfg.default_fuel)
            .min(self.cfg.quota.max_fuel);
        Ok((scheme, compression, fuel))
    }

    /// Finalizes one job: report, tenant in-flight decrement, decision.
    fn finalize(&mut self, job: QueuedJob, verdict: Verdict, output: String, trace: Option<Json>) {
        if let Some(t) = self.tenants.get_mut(&job.tenant) {
            t.in_flight = t.in_flight.saturating_sub(1);
        }
        match &verdict {
            Verdict::Completed { .. } => self.stats.completed += 1,
            Verdict::Violation { .. } => self.stats.violations += 1,
            Verdict::Faulted { .. } => self.stats.faulted += 1,
            Verdict::Rejected(_) => self.stats.rejected += 1,
        }
        if !verdict.is_rejection() && job.attempt > 1 {
            self.stats.retry_successes += 1;
        }
        self.decide(job.id, &job.tenant, format!("done {}", verdict.slug()));
        self.finished.push(JobReport {
            id: job.id,
            tenant: job.tenant,
            label: job.label,
            attempts: job.attempt,
            cache_hit: job.cache_hit,
            backoff_ticks: job.backoff_ticks,
            verdict,
            output,
            trace,
        });
    }

    /// Records a quota trip for `job`'s tenant; emits the circuit-open
    /// decision when the breaker trips.
    fn trip(&mut self, job: &QueuedJob) {
        self.stats.quota_trips += 1;
        let now = self.clock.now();
        let quota = self.cfg.quota;
        let opened = self
            .tenants
            .entry(job.tenant.clone())
            .or_default()
            .record_trip(&quota, now);
        if let Some(until) = opened {
            self.stats.circuit_opens += 1;
            self.decide(
                job.id,
                &job.tenant,
                format!("circuit open until t{until:04}"),
            );
        }
    }

    /// Either schedules a retry for `job` (if the backoff budget
    /// allows) or finalizes it as retries-exhausted. `kind` names the
    /// retryable failure.
    fn retry_or_exhaust(&mut self, mut job: QueuedJob, kind: OutcomeKind) {
        if job.attempt < self.cfg.backoff.max_attempts.max(1) {
            let delay = self.cfg.backoff.delay_ticks(job.attempt, job.id);
            let next = job.attempt + 1;
            self.decide(
                job.id,
                &job.tenant,
                format!("retry {next} in {delay} ticks after {}", kind.name()),
            );
            self.stats.retries += 1;
            job.attempt = next;
            job.due = self.clock.now() + delay;
            job.backoff_ticks += delay;
            self.queue.push(job);
        } else {
            let attempts = job.attempt;
            self.finalize(
                job,
                Verdict::Rejected(ServeError::RetriesExhausted {
                    attempts,
                    last: kind.name().to_string(),
                }),
                String::new(),
                None,
            );
        }
    }

    /// Runs drain rounds until the queue is empty (or the tick budget
    /// expires). Progress events stream to `sink`.
    pub fn drain(&mut self, sink: &mut dyn Sink) {
        while !self.queue.is_empty() {
            if self.clock.now() >= self.cfg.max_ticks {
                for job in std::mem::take(&mut self.queue) {
                    self.finalize(
                        job,
                        Verdict::Rejected(ServeError::WorkerLost {
                            why: format!("tick budget ({}) exhausted", self.cfg.max_ticks),
                        }),
                        String::new(),
                        None,
                    );
                }
                break;
            }
            self.round(sink);
            self.clock.advance();
            self.stats.ticks = self.clock.now();
        }
    }

    /// One drain round: select, shed-or-dispatch, fold results.
    fn round(&mut self, sink: &mut dyn Sink) {
        let now = self.clock.now();
        // Select up to `batch` due jobs, lowest id first.
        self.queue.sort_by_key(|j| j.id);
        let mut selected = Vec::new();
        let mut rest = Vec::with_capacity(self.queue.len());
        for job in std::mem::take(&mut self.queue) {
            if job.due <= now && selected.len() < self.cfg.batch.max(1) {
                selected.push(job);
            } else {
                rest.push(job);
            }
        }
        self.queue = rest;
        if selected.is_empty() {
            return;
        }
        // Circuit check and cache lookup, in id order on the
        // coordinator (the cache is not shared with workers).
        let mut wave: Vec<QueuedJob> = Vec::with_capacity(selected.len());
        let mut jobs: Vec<Job<RunArtifact>> = Vec::with_capacity(selected.len());
        for mut job in selected {
            let open = self
                .tenants
                .get(&job.tenant)
                .and_then(|t| t.circuit_open(now));
            if let Some(until) = open {
                self.stats.shed_suspended += 1;
                if let Some(t) = self.tenants.get_mut(&job.tenant) {
                    t.shed += 1;
                }
                self.decide(
                    job.id,
                    &job.tenant,
                    format!("shed tenant-suspended until t{until:04}"),
                );
                let tenant = job.tenant.clone();
                self.finalize(
                    job,
                    Verdict::Rejected(ServeError::TenantSuspended {
                        tenant,
                        until_tick: until,
                    }),
                    String::new(),
                    None,
                );
                continue;
            }
            let cached = job.key.and_then(|k| {
                self.cache
                    .lookup(k)
                    .map(|c| (c.snapshot.clone(), c.blocks.clone()))
            });
            let warm = cached.is_some();
            if warm {
                job.cache_hit = true;
            }
            self.decide(
                job.id,
                &job.tenant,
                format!(
                    "dispatch attempt {}{}",
                    job.attempt,
                    if warm { " (warm)" } else { "" }
                ),
            );
            let spec = AttemptSpec {
                payload: job.payload.clone(),
                scheme: job.scheme,
                compression: job.compression,
                fuel: job.fuel,
                trace: job.trace,
                attempt: job.attempt,
                engine: self.cfg.engine,
                opt: self.cfg.opt,
                cached,
                want_cache_entry: job.key.is_some(),
            };
            jobs.push(Job::new(
                format!("job{:04}:{}", job.id, job.label),
                move || Ok(run_attempt(spec)),
            ));
            wave.push(job);
        }
        if jobs.is_empty() {
            return;
        }
        let pool = PoolConfig {
            workers: self.cfg.workers,
            timeout: self.cfg.timeout,
        };
        let results = run(jobs, &pool, sink);
        // Results are in JobId order, which is `wave` order; fold them
        // back in that (submission-id) order.
        for (job, res) in wave.into_iter().zip(results) {
            match res.outcome {
                JobOutcome::Ok(artifact) => {
                    self.stats.decode_skips += artifact.decode_skips;
                    if let (Some(key), Some((snap, blocks))) = (job.key, artifact.cache_entry) {
                        self.cache.insert(
                            key,
                            CachedRun {
                                snapshot: snap,
                                blocks,
                            },
                        );
                    }
                    match artifact.result {
                        Err(e) => self.finalize(job, Verdict::Rejected(e), String::new(), None),
                        Ok(RunOutcome::Probe) => {
                            if let Some(t) = self.tenants.get_mut(&job.tenant) {
                                t.record_success();
                            }
                            self.finalize(
                                job,
                                Verdict::Completed {
                                    exit_code: 0,
                                    cycles: 0,
                                    instret: 0,
                                },
                                String::new(),
                                None,
                            );
                        }
                        Ok(RunOutcome::Exit(exit)) => {
                            if let Some(t) = self.tenants.get_mut(&job.tenant) {
                                t.record_success();
                            }
                            let output = exit.output_string();
                            let verdict = Verdict::Completed {
                                exit_code: exit.code,
                                cycles: exit.stats.total_cycles(),
                                instret: exit.stats.instret,
                            };
                            self.finalize(job, verdict, output, artifact.trace);
                        }
                        Ok(RunOutcome::Trapped(trap)) => match trap {
                            Trap::OutOfFuel { .. } => {
                                self.trip(&job);
                                let tenant = job.tenant.clone();
                                let limit = job.fuel;
                                self.finalize(
                                    job,
                                    Verdict::Rejected(ServeError::QuotaExceeded {
                                        tenant,
                                        quota: "fuel",
                                        limit,
                                    }),
                                    String::new(),
                                    None,
                                );
                            }
                            t if t.is_violation() => {
                                if let Some(state) = self.tenants.get_mut(&job.tenant) {
                                    state.record_success();
                                }
                                let kind = match t {
                                    Trap::TemporalViolation { .. } => "temporal",
                                    _ => "spatial",
                                };
                                self.finalize(
                                    job,
                                    Verdict::Violation {
                                        kind,
                                        detail: t.to_string(),
                                    },
                                    String::new(),
                                    artifact.trace,
                                );
                            }
                            t => {
                                if let Some(state) = self.tenants.get_mut(&job.tenant) {
                                    state.record_success();
                                }
                                self.finalize(
                                    job,
                                    Verdict::Faulted {
                                        detail: t.to_string(),
                                    },
                                    String::new(),
                                    artifact.trace,
                                );
                            }
                        },
                    }
                }
                JobOutcome::Panicked(_) => {
                    self.stats.panics_isolated += 1;
                    self.retry_or_exhaust(job, OutcomeKind::Panicked);
                }
                JobOutcome::TimedOut(_) => {
                    self.trip(&job);
                    self.retry_or_exhaust(job, OutcomeKind::TimedOut);
                }
                JobOutcome::Failed(why) => {
                    self.finalize(
                        job,
                        Verdict::Rejected(ServeError::WorkerLost { why }),
                        String::new(),
                        None,
                    );
                }
                JobOutcome::Cancelled => {
                    self.finalize(
                        job,
                        Verdict::Rejected(ServeError::WorkerLost {
                            why: "cancelled".to_string(),
                        }),
                        String::new(),
                        None,
                    );
                }
            }
        }
    }

    /// Consumes the service into its final report. Call after
    /// [`Serve::drain`]; any still-queued jobs are finalized as
    /// worker-lost so reports always align 1:1 with submissions.
    pub fn into_report(mut self) -> ServeReport {
        for job in std::mem::take(&mut self.queue) {
            self.finalize(
                job,
                Verdict::Rejected(ServeError::WorkerLost {
                    why: "service shut down before the job ran".to_string(),
                }),
                String::new(),
                None,
            );
        }
        self.stats.cache_hits = self.cache.hits;
        self.stats.cache_misses = self.cache.misses;
        let mut reports = self.finished;
        reports.sort_by_key(|r| r.id);
        ServeReport {
            reports,
            decisions: self.decisions,
            stats: self.stats,
            tenants: self.tenants,
        }
    }
}

/// The full outcome of one service run.
#[derive(Debug)]
pub struct ServeReport {
    /// One report per submission, in submission order.
    pub reports: Vec<JobReport>,
    /// The deterministic decision log, in decision order.
    pub decisions: Vec<Decision>,
    /// Service-wide counters.
    pub stats: ServeStats,
    /// Per-tenant bookkeeping at shutdown.
    pub tenants: BTreeMap<String, TenantState>,
}

impl ServeReport {
    /// The decision log as one newline-joined string — the value the
    /// determinism gates compare byte-for-byte across worker counts.
    pub fn decision_log(&self) -> String {
        let mut s = String::new();
        for d in &self.decisions {
            s.push_str(&d.to_string());
            s.push('\n');
        }
        s
    }

    /// The report as a BENCH-style JSON document (the
    /// `BENCH_serve.json` schema in EXPERIMENTS.md).
    pub fn json(&self) -> Json {
        let stats = self.stats;
        let stats_json = Json::obj()
            .set("submitted", stats.submitted)
            .set("shed_at_submit", stats.shed_at_submit)
            .set("admitted", stats.admitted)
            .set("shed_suspended", stats.shed_suspended)
            .set("completed", stats.completed)
            .set("violations", stats.violations)
            .set("faulted", stats.faulted)
            .set("rejected", stats.rejected)
            .set("retries", stats.retries)
            .set("retry_successes", stats.retry_successes)
            .set("cache_hits", stats.cache_hits)
            .set("cache_misses", stats.cache_misses)
            .set("decode_skips", stats.decode_skips)
            .set("panics_isolated", stats.panics_isolated)
            .set("quota_trips", stats.quota_trips)
            .set("circuit_opens", stats.circuit_opens)
            .set("ticks", stats.ticks);
        let tenants = Json::Arr(
            self.tenants
                .iter()
                .map(|(name, t)| {
                    Json::obj()
                        .set("tenant", name.as_str())
                        .set("admitted", t.admitted)
                        .set("shed", t.shed)
                        .set("quota_trips", t.quota_trips)
                        .set("completed", t.completed)
                        .set("suspensions", t.suspensions)
                })
                .collect(),
        );
        let jobs = Json::Arr(
            self.reports
                .iter()
                .map(|r| {
                    let mut j = Json::obj()
                        .set("id", r.id)
                        .set("tenant", r.tenant.as_str())
                        .set("label", r.label.as_str())
                        .set("attempts", r.attempts)
                        .set("cache_hit", r.cache_hit)
                        .set("backoff_ticks", r.backoff_ticks)
                        .set("verdict", r.verdict.slug().as_str());
                    if let Verdict::Rejected(e) = &r.verdict {
                        j = j.set("error", e.to_string().as_str());
                    }
                    if let Verdict::Completed {
                        exit_code,
                        cycles,
                        instret,
                    } = r.verdict
                    {
                        j = j
                            .set("exit_code", exit_code)
                            .set("cycles", cycles)
                            .set("instret", instret);
                    }
                    j
                })
                .collect(),
        );
        Json::obj()
            .set("suite", "serve")
            .set("stats", stats_json)
            .set("tenants", tenants)
            .set("jobs", jobs)
            .set("decisions", self.decisions.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_harness::NullSink;

    fn benign(tenant: &str) -> Submission {
        Submission::new(
            tenant,
            Payload::Workload {
                name: "string".to_string(),
                scale: Scale::Test,
            },
            "HWST128",
        )
    }

    #[test]
    fn benign_workload_completes() {
        let mut s = Serve::new(ServeConfig::default());
        let id = s.submit(benign("alice")).unwrap();
        s.drain(&mut NullSink);
        let report = s.into_report();
        assert_eq!(report.reports.len(), 1);
        let r = &report.reports[0];
        assert_eq!(r.id, id);
        assert!(
            matches!(r.verdict, Verdict::Completed { .. }),
            "got {:?}",
            r.verdict
        );
        assert_eq!(report.stats.completed, 1);
    }

    #[test]
    fn duplicate_submissions_hit_the_cache() {
        // batch of one per round, so round 2 sees round 1's entry
        let cfg = ServeConfig {
            batch: 1,
            ..ServeConfig::default()
        };
        let mut s = Serve::new(cfg);
        s.submit(benign("alice")).unwrap();
        s.submit(benign("bob")).unwrap();
        s.drain(&mut NullSink);
        let report = s.into_report();
        assert_eq!(report.stats.cache_hits, 1, "{}", report.decision_log());
        assert!(report.reports[1].cache_hit);
        assert!(!report.reports[0].cache_hit);
    }

    #[test]
    fn chaos_probe_recovers_after_backoff() {
        let mut s = Serve::new(ServeConfig::default());
        s.submit(Submission::new(
            "carol",
            Payload::ChaosPanic { fail_attempts: 1 },
            "baseline",
        ))
        .unwrap();
        s.drain(&mut NullSink);
        let report = s.into_report();
        let r = &report.reports[0];
        assert_eq!(r.attempts, 2);
        assert!(r.backoff_ticks >= 1);
        assert!(matches!(r.verdict, Verdict::Completed { .. }));
        assert_eq!(report.stats.panics_isolated, 1);
        assert_eq!(report.stats.retry_successes, 1);
    }

    #[test]
    fn queue_full_sheds_without_blocking() {
        let cfg = ServeConfig {
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let mut s = Serve::new(cfg);
        assert!(s.submit(benign("alice")).is_ok());
        let err = s.submit(benign("bob")).unwrap_err();
        assert_eq!(err.code(), "queue-full");
        s.drain(&mut NullSink);
        let report = s.into_report();
        assert_eq!(report.reports.len(), 2, "shed submission still reported");
        assert!(report.reports[1].verdict.is_rejection());
    }
}
