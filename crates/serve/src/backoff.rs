//! Retry scheduling: bounded exponential backoff with deterministic
//! jitter.
//!
//! Delays are counted in ticks of the [`crate::TickClock`], and the
//! jitter is drawn from a [`crate::clock::splitmix64`] stream seeded
//! by `(jitter_seed, job id, attempt)` — so two service instances with
//! the same configuration and submissions schedule *exactly* the same
//! retries, while distinct jobs still spread out (no thundering herd
//! when a whole wave trips the watchdog at once).

use crate::clock::splitmix64;

/// When and how often to retry a retryable failure (watchdog expiry or
/// isolated panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts per job (clamped to at least 1).
    pub max_attempts: u32,
    /// Delay before the first retry, in ticks.
    pub base_ticks: u64,
    /// Multiplier applied per further attempt.
    pub multiplier: u64,
    /// Cap on the exponential part of the delay.
    pub max_ticks: u64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 3,
            base_ticks: 2,
            multiplier: 2,
            max_ticks: 16,
            jitter_seed: 0x5EED_CAFE,
        }
    }
}

impl BackoffPolicy {
    /// The delay, in ticks, before retry number `attempt` (1 = the
    /// first retry) of job `job`. Always at least 1: a retry never
    /// lands in the round that scheduled it.
    pub fn delay_ticks(&self, attempt: u32, job: u64) -> u64 {
        let exp = self
            .base_ticks
            .max(1)
            .saturating_mul(
                self.multiplier
                    .max(1)
                    .saturating_pow(attempt.saturating_sub(1)),
            )
            .min(self.max_ticks.max(1));
        let mut s = self
            .jitter_seed
            .wrapping_add(job.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(attempt) << 32);
        let jitter = splitmix64(&mut s) % (exp / 2 + 1);
        exp + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_grow() {
        let p = BackoffPolicy::default();
        for job in [0u64, 7, 99] {
            let d1 = p.delay_ticks(1, job);
            let d2 = p.delay_ticks(2, job);
            let d3 = p.delay_ticks(3, job);
            assert_eq!(d1, p.delay_ticks(1, job), "same inputs, same delay");
            assert!(d1 >= 1);
            // The exponential part doubles; jitter is at most half of
            // it, so the windows never invert.
            assert!(d2 > d1 / 2, "job {job}: {d1} → {d2}");
            assert!(d3 <= p.max_ticks + p.max_ticks / 2, "cap holds: {d3}");
        }
    }

    #[test]
    fn jitter_spreads_jobs_apart() {
        let p = BackoffPolicy {
            base_ticks: 8,
            max_ticks: 64,
            ..BackoffPolicy::default()
        };
        let delays: std::collections::BTreeSet<u64> =
            (0..16u64).map(|job| p.delay_ticks(2, job)).collect();
        assert!(delays.len() > 1, "all 16 jobs landed on the same tick");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let p = BackoffPolicy {
            max_attempts: 0,
            base_ticks: 0,
            multiplier: 0,
            max_ticks: 0,
            jitter_seed: 0,
        };
        assert!(p.delay_ticks(1, 0) >= 1);
        assert!(p.delay_ticks(10, 3) >= 1);
    }
}
