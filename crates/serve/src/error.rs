//! The typed rejection taxonomy of the service boundary.
//!
//! Every way a submission can fail to produce a run result is one of
//! these variants — the boundary contract (DESIGN.md §4i) is that
//! hostile input of any shape maps to a [`ServeError`], never a panic
//! and never an unbounded wait. The fuzz suite
//! (`tests/boundary_fuzz.rs`) holds the service to that.

use std::fmt;

/// A typed rejection from the service: either shed at admission or
/// produced while executing an admitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is full; the submission is shed immediately
    /// (the service never blocks an admitter).
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The tenant's circuit breaker is open after repeated quota
    /// trips.
    TenantSuspended {
        /// The suspended tenant.
        tenant: String,
        /// First tick at which the tenant may run again.
        until_tick: u64,
    },
    /// A per-tenant quota would be exceeded (`quota` names which:
    /// `"in-flight"` at admission, `"fuel"` when the instruction
    /// budget expired mid-run).
    QuotaExceeded {
        /// The tenant.
        tenant: String,
        /// Which quota tripped.
        quota: &'static str,
        /// The configured limit.
        limit: u64,
    },
    /// The tenant name is unusable (empty, oversized, or containing
    /// control characters).
    BadTenant {
        /// What was wrong with it.
        why: &'static str,
    },
    /// No workload with the submitted name exists.
    UnknownWorkload {
        /// The name as submitted.
        name: String,
    },
    /// No instrumentation scheme with the submitted name exists.
    UnknownScheme {
        /// The name as submitted.
        name: String,
    },
    /// The submitted compression-config CSR encoding violates the
    /// packing invariants.
    InvalidCompCfg {
        /// The CSR value as submitted.
        csr: u64,
        /// The codec's explanation.
        why: String,
    },
    /// The submitted image is structurally unusable (ragged length or
    /// undecodable words — the [`hwst128::sim::LoadError`] paths).
    BadImage {
        /// The loader's explanation.
        why: String,
    },
    /// The submitted image is empty — nothing to execute.
    EmptyImage,
    /// The submitted image exceeds the tenant's size quota.
    OversizedImage {
        /// Submitted length in bytes.
        len: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The submitted IR module exceeds the tenant's size quota.
    OversizedModule {
        /// Submitted instruction count.
        insts: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The compiler rejected the submitted IR.
    CompileRejected {
        /// The compiler's explanation.
        why: String,
    },
    /// Every attempt the retry policy allows was spent on retryable
    /// failures (watchdog expiries or isolated panics).
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// How the final attempt ended (an
        /// [`hwst_harness::OutcomeKind`] name).
        last: String,
    },
    /// The execution infrastructure itself failed (worker lost,
    /// cancellation, tick budget exhausted) — never the submitter's
    /// fault, always reported rather than silently dropped.
    WorkerLost {
        /// What happened.
        why: String,
    },
}

impl ServeError {
    /// A stable machine-readable slug for logs, decisions and JSON
    /// summaries.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::TenantSuspended { .. } => "tenant-suspended",
            ServeError::QuotaExceeded { .. } => "quota-exceeded",
            ServeError::BadTenant { .. } => "bad-tenant",
            ServeError::UnknownWorkload { .. } => "unknown-workload",
            ServeError::UnknownScheme { .. } => "unknown-scheme",
            ServeError::InvalidCompCfg { .. } => "invalid-compcfg",
            ServeError::BadImage { .. } => "bad-image",
            ServeError::EmptyImage => "empty-image",
            ServeError::OversizedImage { .. } => "oversized-image",
            ServeError::OversizedModule { .. } => "oversized-module",
            ServeError::CompileRejected { .. } => "compile-rejected",
            ServeError::RetriesExhausted { .. } => "retries-exhausted",
            ServeError::WorkerLost { .. } => "worker-lost",
        }
    }

    /// Whether this rejection was decided at admission (before any
    /// cycle was spent on the job).
    pub fn shed_at_admission(&self) -> bool {
        matches!(
            self,
            ServeError::QueueFull { .. }
                | ServeError::TenantSuspended { .. }
                | ServeError::BadTenant { .. }
                | ServeError::UnknownWorkload { .. }
                | ServeError::UnknownScheme { .. }
                | ServeError::InvalidCompCfg { .. }
                | ServeError::EmptyImage
                | ServeError::OversizedImage { .. }
                | ServeError::OversizedModule { .. }
        ) || matches!(
            self,
            ServeError::QuotaExceeded {
                quota: "in-flight",
                ..
            }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} jobs); submission shed")
            }
            ServeError::TenantSuspended { tenant, until_tick } => {
                write!(f, "tenant `{tenant}` suspended until tick {until_tick}")
            }
            ServeError::QuotaExceeded {
                tenant,
                quota,
                limit,
            } => write!(
                f,
                "tenant `{tenant}` exceeded {quota} quota (limit {limit})"
            ),
            ServeError::BadTenant { why } => write!(f, "bad tenant name: {why}"),
            ServeError::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
            ServeError::UnknownScheme { name } => write!(f, "unknown scheme `{name}`"),
            ServeError::InvalidCompCfg { csr, why } => {
                write!(f, "invalid compression config {csr:#x}: {why}")
            }
            ServeError::BadImage { why } => write!(f, "bad image: {why}"),
            ServeError::EmptyImage => write!(f, "empty image"),
            ServeError::OversizedImage { len, limit } => {
                write!(f, "image of {len} bytes exceeds the {limit}-byte quota")
            }
            ServeError::OversizedModule { insts, limit } => write!(
                f,
                "module of {insts} instructions exceeds the {limit}-instruction quota"
            ),
            ServeError::CompileRejected { why } => write!(f, "compile rejected: {why}"),
            ServeError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempt(s); last {last}"
                )
            }
            ServeError::WorkerLost { why } => write!(f, "worker lost: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_printable() {
        let all = [
            ServeError::QueueFull { capacity: 4 },
            ServeError::TenantSuspended {
                tenant: "t".into(),
                until_tick: 9,
            },
            ServeError::QuotaExceeded {
                tenant: "t".into(),
                quota: "fuel",
                limit: 100,
            },
            ServeError::BadTenant { why: "empty" },
            ServeError::UnknownWorkload { name: "x".into() },
            ServeError::UnknownScheme { name: "x".into() },
            ServeError::InvalidCompCfg {
                csr: 0,
                why: "zero widths".into(),
            },
            ServeError::BadImage {
                why: "ragged".into(),
            },
            ServeError::EmptyImage,
            ServeError::OversizedImage { len: 9, limit: 8 },
            ServeError::OversizedModule { insts: 9, limit: 8 },
            ServeError::CompileRejected {
                why: "no main".into(),
            },
            ServeError::RetriesExhausted {
                attempts: 3,
                last: "panicked".into(),
            },
            ServeError::WorkerLost { why: "gone".into() },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in &all {
            assert!(!e.to_string().is_empty());
            assert!(seen.insert(e.code()), "duplicate code {}", e.code());
        }
    }

    #[test]
    fn admission_classification() {
        assert!(ServeError::QueueFull { capacity: 1 }.shed_at_admission());
        assert!(ServeError::QuotaExceeded {
            tenant: "t".into(),
            quota: "in-flight",
            limit: 1
        }
        .shed_at_admission());
        assert!(!ServeError::QuotaExceeded {
            tenant: "t".into(),
            quota: "fuel",
            limit: 1
        }
        .shed_at_admission());
        assert!(!ServeError::RetriesExhausted {
            attempts: 1,
            last: "timed-out".into()
        }
        .shed_at_admission());
    }
}
