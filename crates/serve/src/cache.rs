//! Content-addressed cache of loaded machines.
//!
//! The key is a digest of `(canonical payload bytes, scheme label,
//! compression-config CSR)` — exactly the inputs that determine the
//! compiled image and the machine's initial state. A hit skips
//! compilation *and* machine setup entirely: the cached value is a
//! [`Snapshot`] taken right after load, and every run (first or
//! retried) warm-starts from a restored copy, which the snapshot
//! bit-identity guarantee makes indistinguishable from a cold start.
//!
//! Eviction is FIFO with a bounded capacity, so a hostile tenant
//! cannot balloon the cache; all counters are deterministic because
//! lookups and inserts happen on the coordinator in job-ID order.

use crate::clock::splitmix64;
use hwst128::exec::BlockCache;
use hwst128::sim::Snapshot;
use std::collections::{HashMap, VecDeque};

/// A content digest over the inputs that determine a compiled image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

/// Digests the given byte slices (order-sensitive, length-prefixed so
/// `["ab","c"]` and `["a","bc"]` differ) into a [`CacheKey`].
pub fn cache_key(parts: &[&[u8]]) -> CacheKey {
    // FNV-1a over the length-prefixed concatenation, finished with a
    // splitmix64 avalanche.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for part in parts {
        for b in (part.len() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in *part {
            eat(b);
        }
    }
    let mut s = h;
    CacheKey(splitmix64(&mut s))
}

/// One cached machine: the post-load snapshot that warm-starts every
/// subsequent run of the same `(payload, scheme, compcfg)`, plus the
/// decoded-block cache the first (fast-engine) run populated, so warm
/// starts skip block decoding as well as compilation and load.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// The post-load machine state.
    pub snapshot: Snapshot,
    /// The decoded blocks from the populating run (empty when the
    /// service ran it on the cycle engine, which never decodes).
    /// Cloning is cheap: blocks are `Arc`-shared.
    pub blocks: BlockCache,
}

/// The bounded FIFO cache.
#[derive(Debug, Default)]
pub struct ImageCache {
    capacity: usize,
    map: HashMap<u64, CachedRun>,
    order: VecDeque<u64>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
}

impl ImageCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ImageCache {
            capacity,
            ..Self::default()
        }
    }

    /// Looks up `key`, counting the hit or miss.
    pub fn lookup(&mut self, key: CacheKey) -> Option<&CachedRun> {
        match self.map.get(&key.0) {
            Some(run) => {
                self.hits += 1;
                Some(run)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `run` under `key` unless present, evicting the oldest
    /// entry if the cache is full.
    pub fn insert(&mut self, key: CacheKey, run: CachedRun) {
        if self.capacity == 0 || self.map.contains_key(&key.0) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
                self.evictions += 1;
            }
        }
        self.map.insert(key.0, run);
        self.order.push_back(key.0);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst128::prelude::*;

    fn snapshot() -> Snapshot {
        let prog = Program::from_instrs(0x1_0000, vec![Instr::Ecall]);
        Machine::new(prog, SafetyConfig::default()).snapshot()
    }

    #[test]
    fn keys_separate_parts_and_contents() {
        let a = cache_key(&[b"ab", b"c"]);
        let b = cache_key(&[b"a", b"bc"]);
        let c = cache_key(&[b"ab", b"c"]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(cache_key(&[b"x"]), cache_key(&[b"y"]));
    }

    #[test]
    fn fifo_eviction_is_bounded() {
        let mut cache = ImageCache::new(2);
        for i in 0..4u64 {
            cache.insert(
                CacheKey(i),
                CachedRun {
                    snapshot: snapshot(),
                    blocks: BlockCache::new(),
                },
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions, 2);
        assert!(cache.lookup(CacheKey(0)).is_none(), "oldest evicted");
        assert!(cache.lookup(CacheKey(3)).is_some(), "newest kept");
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ImageCache::new(0);
        cache.insert(
            CacheKey(1),
            CachedRun {
                snapshot: snapshot(),
                blocks: BlockCache::new(),
            },
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(CacheKey(1)).is_none());
    }
}
