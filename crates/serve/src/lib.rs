//! # hwst-serve
//!
//! A hardened, deterministic multi-tenant batch service over the
//! HWST128 simulation stack — the "robustness" layer of the
//! reproduction (DESIGN.md §4i).
//!
//! Tenants submit work ([`Submission`]: a catalogue workload, a raw
//! instruction image, or an IR module, plus a scheme and an optional
//! compression-config CSR) and get back exactly one [`JobReport`] per
//! submission. The service guarantees:
//!
//! - **Admission control** — a bounded queue and per-tenant in-flight
//!   caps; over-capacity submissions are *shed* with a typed
//!   [`ServeError`], never blocked on.
//! - **Quota enforcement** — per-attempt fuel budgets ride the
//!   machine's instruction fuel, size quotas are checked at admission,
//!   and the wall-clock watchdog is the `hwst-harness` pool's.
//! - **Retry with backoff** — watchdog expiries and isolated panics
//!   are retried with deterministic exponential backoff + jitter
//!   ([`BackoffPolicy`]), bounded attempts, on a logical tick clock.
//! - **Circuit breaking** — tenants that trip quotas repeatedly are
//!   suspended for a deterministic cool-down ([`TenantQuota`]).
//! - **Content-addressed caching** — compiled images are cached by
//!   `(payload, scheme, compcfg)` ([`ImageCache`]), so duplicate
//!   submissions and retries warm-start from a
//!   [`hwst128::sim::Snapshot`] instead of recompiling.
//! - **A fuzzed boundary** — arbitrary bytes, IR and configs map to
//!   typed errors; the proptest suite in `tests/boundary_fuzz.rs`
//!   holds the whole surface to *zero panics*.
//!
//! Everything is deterministic by construction: scheduling reads only
//! the logical [`TickClock`], results fold in submission-id order, and
//! the [`Decision`] log is byte-identical for any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod clock;
pub mod error;
pub mod mix;
pub mod quota;
pub mod service;

pub use backoff::BackoffPolicy;
pub use cache::{cache_key, CacheKey, CachedRun, ImageCache};
pub use clock::{splitmix64, TickClock};
pub use error::ServeError;
pub use mix::{mixed_submissions, MixCategory, MixConfig, MixedSubmission};
pub use quota::{TenantQuota, TenantState};
pub use service::{
    scheme_by_name, Decision, JobReport, Payload, Serve, ServeConfig, ServeReport, ServeStats,
    Submission, Verdict,
};
