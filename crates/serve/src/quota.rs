//! Per-tenant quotas and the circuit breaker.
//!
//! Quotas are the enforcement points the ROADMAP names: the fuel limit
//! rides on the machine's instruction budget
//! ([`hwst128::sim::Trap::OutOfFuel`]), size limits are checked at
//! admission, and the wall-clock limit is the `hwst-harness` watchdog.
//! A tenant that keeps tripping quotas gets its circuit opened: every
//! submission is shed with
//! [`crate::ServeError::TenantSuspended`] until a deterministic
//! cool-down (in ticks) expires, after which the tenant is half-open —
//! one clean completion closes the circuit, another trip re-opens it.

/// The per-tenant resource limits. One [`TenantQuota`] applies to every
/// tenant of a service instance (per-tenant overrides would slot in
/// here as a map keyed by tenant name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Instruction budget per run attempt; runs that exhaust it are
    /// quota trips.
    pub max_fuel: u64,
    /// Largest acceptable raw image, in bytes.
    pub max_image_bytes: usize,
    /// Largest acceptable IR module, in instructions.
    pub max_module_insts: usize,
    /// Jobs a tenant may have queued or running at once; admissions
    /// beyond this are shed.
    pub max_in_flight: usize,
    /// Consecutive quota trips that open the circuit.
    pub trips_to_open: u32,
    /// Ticks a tenant stays suspended once the circuit opens.
    pub cooldown_ticks: u64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_fuel: 2_000_000,
            max_image_bytes: 1 << 20,
            max_module_insts: 4096,
            max_in_flight: 64,
            trips_to_open: 3,
            cooldown_ticks: 8,
        }
    }
}

/// Mutable per-tenant bookkeeping: in-flight count, breaker state and
/// lifetime counters (reported in the service summary).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantState {
    /// Jobs currently queued or running.
    pub in_flight: usize,
    /// Quota trips since the last clean completion.
    pub consecutive_trips: u32,
    /// When `Some(t)`, submissions are shed until tick `t`.
    pub suspended_until: Option<u64>,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions shed (admission or suspension).
    pub shed: u64,
    /// Quota trips (fuel exhaustion or watchdog expiry).
    pub quota_trips: u64,
    /// Jobs that ran to a verdict.
    pub completed: u64,
    /// Times the circuit opened.
    pub suspensions: u64,
}

impl TenantState {
    /// If the circuit is open at `now`, the tick it re-closes at.
    pub fn circuit_open(&self, now: u64) -> Option<u64> {
        self.suspended_until.filter(|&until| now < until)
    }

    /// Records a quota trip; returns `Some(until_tick)` when this trip
    /// opened the circuit.
    pub fn record_trip(&mut self, quota: &TenantQuota, now: u64) -> Option<u64> {
        self.quota_trips += 1;
        self.consecutive_trips += 1;
        if self.consecutive_trips >= quota.trips_to_open.max(1) {
            let until = now + quota.cooldown_ticks.max(1);
            self.suspended_until = Some(until);
            self.suspensions += 1;
            // The tenant gets a fresh allowance after the cool-down
            // (half-open semantics: the next trip needs a full streak
            // again — but one clean run also resets the streak).
            self.consecutive_trips = 0;
            Some(until)
        } else {
            None
        }
    }

    /// Records a clean completion: closes a half-open circuit and
    /// resets the trip streak.
    pub fn record_success(&mut self) {
        self.completed += 1;
        self.consecutive_trips = 0;
        self.suspended_until = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_streak_and_cools_down() {
        let q = TenantQuota {
            trips_to_open: 2,
            cooldown_ticks: 5,
            ..TenantQuota::default()
        };
        let mut t = TenantState::default();
        assert_eq!(t.record_trip(&q, 10), None);
        assert_eq!(t.record_trip(&q, 11), Some(16));
        assert_eq!(t.circuit_open(11), Some(16));
        assert_eq!(t.circuit_open(15), Some(16));
        assert_eq!(t.circuit_open(16), None, "cool-down expired");
        assert_eq!(t.suspensions, 1);
        assert_eq!(t.quota_trips, 2);
    }

    #[test]
    fn success_resets_the_streak() {
        let q = TenantQuota {
            trips_to_open: 2,
            ..TenantQuota::default()
        };
        let mut t = TenantState::default();
        assert_eq!(t.record_trip(&q, 0), None);
        t.record_success();
        assert_eq!(t.record_trip(&q, 1), None, "streak was reset");
        assert_eq!(t.record_trip(&q, 2), Some(2 + q.cooldown_ticks));
    }
}
