//! Z1/Z2: the comparative detector zoo — coverage × overhead frontier
//! over the published four designs plus RV-CURE, L4 Pointer, CryptSan
//! and HeapSafe, with a fault-injection campaign per design.
//!
//! `--smoke` runs the reduced CI configuration; the default sweeps all
//! 23 workloads. `--scheme A,B,...` narrows the *printed* frontier
//! table (the sweep and the JSON always carry every design so the
//! artifact stays complete). Harness flags (`--jobs N`, `--json PATH`,
//! `--progress`) as in `hwst_bench::cli`. Exits 1 when a calibration
//! or agreement gate is violated, 2 on hard errors.

use hwst_bench::cli::BenchArgs;
use hwst_bench::summary::write_json;
use hwst_zoo::{
    design_points, frontier_flags, measured_geomeans, model_geomeans, zoo_coverage_results,
    zoo_inject_results, zoo_row_results, zoo_summary, zoo_violations, Design, ZooConfig, ZooReport,
};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.flag("--smoke");
    let scale = args.scale();
    let engine = args.engine();
    let pool = args.pool();
    let cfg = if smoke {
        ZooConfig::smoke()
    } else {
        ZooConfig::default()
    };
    let shown: Vec<Design> = {
        let schemes = args.schemes(&Design::ALL.map(Design::scheme));
        Design::ALL
            .into_iter()
            .filter(|d| schemes.contains(&d.scheme()))
            .collect()
    };
    println!(
        "Z1/Z2 — comparative detector zoo{}, {} worker(s)",
        if smoke { " [smoke]" } else { "" },
        pool.workers
    );
    let start = Instant::now();
    let mut sink = args.sink();
    let (rows, mut failed) = zoo_row_results(&cfg, scale, engine, &pool, sink.as_mut());
    let (coverage, cov_failed) = zoo_coverage_results(&cfg, &pool, sink.as_mut());
    failed.extend(cov_failed);
    let (inject, inj_failed) = zoo_inject_results(&cfg, scale, &pool, sink.as_mut())
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2)
        });
    failed.extend(inj_failed);
    let wall = start.elapsed();
    let report = ZooReport {
        rows,
        coverage,
        inject,
    };

    let measured = measured_geomeans(&report.rows);
    let model = model_geomeans(&report.rows);
    let points = design_points(&report.rows, &report.coverage);
    let flags = frontier_flags(&points);
    println!(
        "\n{:<13} {:>9} {:>9} {:>8} {:>7} {:>6} {:>6} {:>6}  frontier",
        "design", "overhead%", "model%", "cover%", "det", "mask", "silent", "mfault"
    );
    for (di, &design) in Design::ALL.iter().enumerate() {
        if !shown.contains(&design) {
            continue;
        }
        let oh = Design::INSTRUMENTED
            .iter()
            .position(|&d| d == design)
            .map(|i| measured[i])
            .unwrap_or(0.0);
        let model_s = Design::ZOO
            .iter()
            .position(|&d| d == design)
            .map(|i| format!("{:.1}", model[i]))
            .unwrap_or_else(|| "-".to_string());
        let inj = &report.inject[di];
        println!(
            "{:<13} {:>9.1} {:>9} {:>8.2} {:>7} {:>6} {:>6} {:>6}  {}",
            design.label(),
            oh,
            model_s,
            points[di].coverage_pct,
            inj.detected,
            inj.masked,
            inj.silent,
            inj.machine_fault,
            if flags[di] { "*" } else { "" }
        );
    }
    for f in &failed {
        println!("{} FAILED {}", f.label, f.error);
    }
    println!(
        "wall {:.1} ms on {} worker(s)",
        wall.as_secs_f64() * 1e3,
        pool.workers
    );

    // The calibration bands are stated for the full-suite geomean;
    // smoke subsets keep the structural gates only.
    let violations: Vec<String> = zoo_violations(&report)
        .into_iter()
        .filter(|v| !(smoke && v.contains("calibration band")))
        .collect();
    if let Some(path) = args.json_path() {
        let doc = zoo_summary(&cfg, scale, &report, &failed, &violations);
        write_json(path, &doc).unwrap_or_else(|e| {
            eprintln!("error: could not write {}: {e}", path.display());
            std::process::exit(2)
        });
        println!("wrote {}", path.display());
    }
    if violations.is_empty() {
        println!("gate: calibration bands, orderings, model tracking, sample agreement — PASS");
    } else {
        for v in &violations {
            println!("gate VIOLATED: {v}");
        }
        std::process::exit(1);
    }
    if !failed.is_empty() {
        std::process::exit(1);
    }
}
