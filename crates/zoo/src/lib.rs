//! The comparative detector zoo (experiments Z1/Z2): RV-CURE
//! (arXiv:2308.02945), L4 Pointer (arXiv:2302.06819), CryptSan
//! (arXiv:2202.08669) and HeapSafe (arXiv:2105.08712) modeled as
//! first-class designs on the shared compiler/simulator substrate,
//! next to the published four.
//!
//! Each [`Design`] ties together its instrumentation scheme
//! (`hwst_compiler::instrument`), its Juliet detector model
//! (`hwst_juliet::detector`), its analytic cost model
//! (`hwst_baselines::ZooCost`) and the calibration band its *measured*
//! overhead geomean must land in (DESIGN.md §4l). The `hwst-zoo` bin
//! sweeps all designs over the 23-workload suite, a Juliet sample and
//! an `hwst_sim::inject` fault campaign, emits the Z1 coverage ×
//! overhead frontier, and exits non-zero when a calibration or
//! agreement contract is violated.

use hwst128::compiler::Scheme;
use hwst128::exec::Engine;
use hwst128::juliet::{execute_detects, model_detects, sample_reachable, suite, Detector};
use hwst128::sim::inject::{campaign, FaultClass, OutcomeCounts};
use hwst128::sim::Machine;
use hwst128::workloads::{all, Scale, Suite, Workload};
use hwst_baselines::{try_profile_workload, ZooCost};
use hwst_harness::{collect_ok, run, FailedJob, Job, Json, PoolConfig, Sink};

/// One design of the Z1 frontier: the published four plus the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Uninstrumented (`Scheme::None`): the 0-overhead, 0-coverage
    /// anchor of the frontier.
    Baseline,
    /// SoftBoundCETS at `-O0` (software companions + helper calls).
    Sbcets,
    /// HWST128 without the `tchk` temporal path.
    Hwst128,
    /// Full HWST128 (this work's headline configuration).
    Hwst128Tchk,
    /// RV-CURE capability tags.
    RvCure,
    /// L4 Pointer software wide pointers.
    L4Pointer,
    /// CryptSan PAC-style pointer signing.
    CryptSan,
    /// HeapSafe heap-only tagging.
    HeapSafe,
}

impl Design {
    /// Every design, baseline first — Z1 row order.
    pub const ALL: [Design; 8] = [
        Design::Baseline,
        Design::Sbcets,
        Design::Hwst128,
        Design::Hwst128Tchk,
        Design::RvCure,
        Design::L4Pointer,
        Design::CryptSan,
        Design::HeapSafe,
    ];

    /// The instrumented designs (everything but the baseline), in
    /// [`Design::ALL`] order — the measured-overhead columns.
    pub const INSTRUMENTED: [Design; 7] = [
        Design::Sbcets,
        Design::Hwst128,
        Design::Hwst128Tchk,
        Design::RvCure,
        Design::L4Pointer,
        Design::CryptSan,
        Design::HeapSafe,
    ];

    /// The four zoo designs, in [`ZooCost::ALL`] order.
    pub const ZOO: [Design; 4] = [
        Design::RvCure,
        Design::L4Pointer,
        Design::CryptSan,
        Design::HeapSafe,
    ];

    /// The instrumentation scheme realising this design.
    pub const fn scheme(self) -> Scheme {
        match self {
            Design::Baseline => Scheme::None,
            Design::Sbcets => Scheme::Sbcets,
            Design::Hwst128 => Scheme::Hwst128,
            Design::Hwst128Tchk => Scheme::Hwst128Tchk,
            Design::RvCure => Scheme::RvCure,
            Design::L4Pointer => Scheme::L4Pointer,
            Design::CryptSan => Scheme::CryptSan,
            Design::HeapSafe => Scheme::HeapSafe,
        }
    }

    /// The design's Juliet detector model; the baseline detects
    /// nothing and has none.
    pub const fn detector(self) -> Option<Detector> {
        match self {
            Design::Baseline => None,
            Design::Sbcets => Some(Detector::Sbcets),
            Design::Hwst128 | Design::Hwst128Tchk => Some(Detector::Hwst128),
            Design::RvCure => Some(Detector::RvCure),
            Design::L4Pointer => Some(Detector::L4Pointer),
            Design::CryptSan => Some(Detector::CryptSan),
            Design::HeapSafe => Some(Detector::HeapSafe),
        }
    }

    /// The analytic per-event cost model — zoo designs only (the
    /// published designs are measured directly by Fig. 4/5).
    pub const fn zoo_cost(self) -> Option<ZooCost> {
        match self {
            Design::RvCure => Some(ZooCost::RvCure),
            Design::L4Pointer => Some(ZooCost::L4Pointer),
            Design::CryptSan => Some(ZooCost::CryptSan),
            Design::HeapSafe => Some(ZooCost::HeapSafe),
            _ => None,
        }
    }

    /// The calibration band (DESIGN.md §4l): the inclusive range the
    /// measured suite-geomean overhead (percent, `Scale::Test`) must
    /// land in for the design to count as faithfully modeled. The
    /// baseline has no band (its overhead is identically zero).
    pub const fn band(self) -> Option<(f64, f64)> {
        match self {
            Design::Baseline => None,
            Design::Sbcets => Some((250.0, 450.0)),
            Design::Hwst128 => Some((90.0, 170.0)),
            Design::Hwst128Tchk => Some((30.0, 80.0)),
            Design::RvCure => Some((25.0, 75.0)),
            Design::L4Pointer => Some((150.0, 300.0)),
            Design::CryptSan => Some((60.0, 180.0)),
            Design::HeapSafe => Some((20.0, 70.0)),
        }
    }

    /// Display label — the scheme label, so Z1 rows line up with every
    /// other artifact.
    pub const fn label(self) -> &'static str {
        self.scheme().label()
    }
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sweep configuration for the zoo bin.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Workload subset (`None` = the full 23-workload suite).
    pub workloads: Option<&'static [&'static str]>,
    /// Reachable Juliet cases sampled per CWE for the measured
    /// coverage cross-check.
    pub juliet_per_cwe: u32,
    /// Fault-injection targets (drawn from the Fig. 4 set).
    pub inject_workloads: &'static [&'static str],
    /// Faulted runs per (design, workload, fault class) cell.
    pub seeds_per_target: u64,
    /// Base of the deterministic seed sequence.
    pub master_seed: u64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig {
            workloads: None,
            juliet_per_cwe: 2,
            inject_workloads: &["bzip2", "math"],
            seeds_per_target: 4,
            master_seed: 0x0200_C0DE,
        }
    }
}

impl ZooConfig {
    /// The fast CI smoke configuration: fewer workloads, fewer seeds.
    pub fn smoke() -> Self {
        ZooConfig {
            workloads: Some(&["bzip2", "math", "treeadd", "string"]),
            juliet_per_cwe: 1,
            inject_workloads: &["math"],
            seeds_per_target: 2,
            ..Self::default()
        }
    }

    /// The swept workloads, in Fig. 4 row order.
    pub fn workload_list(&self) -> Vec<Workload> {
        match self.workloads {
            None => all(),
            Some(names) => names.iter().filter_map(|n| Workload::by_name(n)).collect(),
        }
    }

    /// The deterministic seed sequence used for every campaign cell.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.seeds_per_target)
            .map(|i| self.master_seed.wrapping_add(i))
            .collect()
    }
}

/// One Z1 workload row: measured overhead per instrumented design plus
/// the analytic model's prediction per zoo design.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooRow {
    /// Workload name.
    pub name: String,
    /// Its suite.
    pub suite: Suite,
    /// Uninstrumented cycles — the Eq. 7 denominator.
    pub baseline_cycles: u64,
    /// Measured overhead (percent), [`Design::INSTRUMENTED`] order.
    pub measured_pct: [f64; 7],
    /// Model-predicted overhead (percent), [`Design::ZOO`] order.
    pub model_pct: [f64; 4],
}

/// Per-design Juliet coverage: the full-suite model count plus the
/// executed sample cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignCoverage {
    /// The design.
    pub design: Design,
    /// Cases the detector model catches over the full 8366-case suite.
    pub model_detected: u32,
    /// Suite size (the coverage denominator).
    pub total_cases: u32,
    /// Sampled cases executed under the design's scheme.
    pub sample_cases: u32,
    /// Sampled cases where execution trapped with a violation.
    pub sample_detected: u32,
    /// Model verdicts over the same sample.
    pub sample_model: u32,
    /// Whether execution agreed with the model on every sampled case
    /// the design's agreement rule covers (CryptSan's modeled spatial
    /// pointer-clobber slice is exempt — see DESIGN.md §4l).
    pub sample_agree: bool,
}

impl DesignCoverage {
    /// Model coverage as a percentage of the suite.
    pub fn coverage_pct(&self) -> f64 {
        f64::from(self.model_detected) * 100.0 / f64::from(self.total_cases.max(1))
    }
}

/// The assembled Z1/Z2 result set.
#[derive(Debug, Clone)]
pub struct ZooReport {
    /// Per-workload overhead rows, Fig. 4 order.
    pub rows: Vec<ZooRow>,
    /// Per-design coverage, [`Design::ALL`] order.
    pub coverage: Vec<DesignCoverage>,
    /// Per-design fault-injection outcomes (merged over targets, fault
    /// classes and seeds), [`Design::ALL`] order.
    pub inject: Vec<OutcomeCounts>,
}

/// Computes one Z1 workload row: the workload profiled once (baseline,
/// SBCETS and HWST128_tchk cycles plus the event counts the cost
/// models consume), the remaining designs executed directly, and every
/// freshly-run design checked to preserve the benign exit code.
///
/// # Errors
///
/// Compile errors, traps and exit-code divergence come back as `Err`.
pub fn try_zoo_row_with(wl: &Workload, scale: Scale, engine: Engine) -> Result<ZooRow, String> {
    let module = wl.module(scale);
    let fuel = wl.fuel(scale);
    let profile = try_profile_workload(&module, fuel).map_err(|e| format!("{}: {e}", wl.name))?;
    let baseline = hwst128::run_scheme_with(&module, Scheme::None, fuel, engine)
        .map_err(|e| format!("{} (baseline): {e}", wl.name))?;
    let overhead = |cycles: u64| (cycles as f64 / profile.baseline_cycles as f64 - 1.0) * 100.0;
    let mut measured = [0f64; 7];
    for (slot, design) in measured.iter_mut().zip(Design::INSTRUMENTED) {
        let cycles = match design {
            // Already executed by the profiler; don't pay for them twice.
            Design::Sbcets => profile.sbcets_cycles,
            Design::Hwst128Tchk => profile.hwst_cycles,
            _ => {
                let exit = hwst128::run_scheme_with(&module, design.scheme(), fuel, engine)
                    .map_err(|e| format!("{} ({design}): {e}", wl.name))?;
                if exit.code != baseline.code {
                    return Err(format!(
                        "{}: {design} changed the exit code ({} vs {})",
                        wl.name, exit.code, baseline.code
                    ));
                }
                exit.stats.total_cycles()
            }
        };
        *slot = overhead(cycles);
    }
    let mut model = [0f64; 4];
    for (slot, cost) in model.iter_mut().zip(ZooCost::ALL) {
        *slot = cost.overhead_pct(&profile);
    }
    Ok(ZooRow {
        name: wl.name.to_string(),
        suite: wl.suite,
        baseline_cycles: profile.baseline_cycles,
        measured_pct: measured,
        model_pct: model,
    })
}

/// Measures one design's Juliet coverage: the detector model over the
/// full suite, plus `per_cwe` reachable cases per CWE executed under
/// the design's scheme and compared against the model.
pub fn design_coverage(design: Design, per_cwe: u32) -> DesignCoverage {
    let cases = suite();
    let verdict = |case: &hwst128::juliet::Case| match design.detector() {
        Some(det) => model_detects(det, case),
        None => false,
    };
    let model_detected = cases.iter().filter(|c| verdict(c)).count() as u32;
    let sample = sample_reachable(per_cwe);
    let mut sample_detected = 0u32;
    let mut sample_model = 0u32;
    let mut sample_agree = true;
    for case in &sample {
        let measured = execute_detects(case, design.scheme());
        let modeled = verdict(case);
        sample_detected += u32::from(measured);
        sample_model += u32::from(modeled);
        // CryptSan's spatial coverage is a modeled probabilistic slice
        // the substrate deliberately does not reproduce (it would need
        // value-level signature collisions); every other design's model
        // is a measured oracle, and CryptSan's temporal/null rows are.
        let covered_by_rule = design != Design::CryptSan || !case.cwe.is_spatial();
        if covered_by_rule && measured != modeled {
            sample_agree = false;
        }
    }
    DesignCoverage {
        design,
        model_detected,
        total_cases: cases.len() as u32,
        sample_cases: sample.len() as u32,
        sample_detected,
        sample_model,
        sample_agree,
    }
}

/// Runs the Z1 workload sweep on the pool; rows in Fig. 4 order.
pub fn zoo_row_results(
    cfg: &ZooConfig,
    scale: Scale,
    engine: Engine,
    pool: &PoolConfig,
    sink: &mut dyn Sink,
) -> (Vec<ZooRow>, Vec<FailedJob>) {
    let jobs: Vec<Job<ZooRow>> = cfg
        .workload_list()
        .into_iter()
        .map(|wl| {
            Job::new(format!("zoo/{}", wl.name), move || {
                try_zoo_row_with(&wl, scale, engine)
            })
        })
        .collect();
    collect_ok(run(jobs, pool, sink))
}

/// Runs the per-design coverage measurement on the pool; results in
/// [`Design::ALL`] order.
pub fn zoo_coverage_results(
    cfg: &ZooConfig,
    pool: &PoolConfig,
    sink: &mut dyn Sink,
) -> (Vec<DesignCoverage>, Vec<FailedJob>) {
    let per_cwe = cfg.juliet_per_cwe;
    let jobs: Vec<Job<DesignCoverage>> = Design::ALL
        .iter()
        .map(|&design| {
            Job::new(format!("zoo-coverage/{design}"), move || {
                Ok(design_coverage(design, per_cwe))
            })
        })
        .collect();
    collect_ok(run(jobs, pool, sink))
}

/// Runs the Z2 fault campaign on the pool: one job per
/// (design, target) cell covering every fault class, merged into one
/// outcome counter per design in job-ID order.
///
/// # Errors
///
/// Returns `Err` when a target fails to compile for some design —
/// nothing has run at that point.
pub fn zoo_inject_results(
    cfg: &ZooConfig,
    scale: Scale,
    pool: &PoolConfig,
    sink: &mut dyn Sink,
) -> Result<(Vec<OutcomeCounts>, Vec<FailedJob>), String> {
    let seeds = cfg.seeds();
    let mut jobs = Vec::new();
    for (di, &design) in Design::ALL.iter().enumerate() {
        for name in cfg.inject_workloads {
            let wl = Workload::by_name(name).ok_or_else(|| format!("unknown workload `{name}`"))?;
            let prog = hwst128::compiler::compile(&wl.module(scale), design.scheme())
                .map_err(|e| format!("{name} ({design}): {e}"))?;
            let fuel = wl.fuel(scale);
            let safety = hwst128::config_for(design.scheme());
            let seeds = seeds.clone();
            jobs.push(Job::new(format!("zoo-inject/{design}/{name}"), move || {
                let mut counts = OutcomeCounts::default();
                for class in FaultClass::ALL {
                    counts.merge(campaign(
                        || Machine::new(prog.clone(), safety),
                        fuel,
                        class,
                        &seeds,
                    ));
                }
                Ok((di, counts))
            }));
        }
    }
    let (cells, failed) = collect_ok(run(jobs, pool, sink));
    let mut merged = vec![OutcomeCounts::default(); Design::ALL.len()];
    for (di, counts) in cells {
        merged[di].merge(counts);
    }
    Ok((merged, failed))
}

/// Suite-geomean measured overhead per instrumented design
/// ([`Design::INSTRUMENTED`] order), as Eq. 7 percentages.
pub fn measured_geomeans(rows: &[ZooRow]) -> [f64; 7] {
    geomeans(rows, |r| &r.measured_pct)
}

/// Suite-geomean model-predicted overhead per zoo design
/// ([`Design::ZOO`] order).
pub fn model_geomeans(rows: &[ZooRow]) -> [f64; 4] {
    geomeans(rows, |r| &r.model_pct)
}

fn geomeans<const N: usize>(rows: &[ZooRow], get: impl Fn(&ZooRow) -> &[f64; N]) -> [f64; N] {
    let mut out = [0f64; N];
    if rows.is_empty() {
        return out;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let logsum: f64 = rows.iter().map(|r| (1.0 + get(r)[i] / 100.0).ln()).sum();
        *slot = ((logsum / rows.len() as f64).exp() - 1.0) * 100.0;
    }
    out
}

/// One point of the Z1 coverage × overhead plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The design.
    pub design: Design,
    /// Measured suite-geomean overhead (percent; 0 for the baseline).
    pub overhead_pct: f64,
    /// Model coverage (percent of the Juliet suite).
    pub coverage_pct: f64,
}

/// Assembles the Z1 frontier points, [`Design::ALL`] order.
pub fn design_points(rows: &[ZooRow], coverage: &[DesignCoverage]) -> Vec<DesignPoint> {
    let measured = measured_geomeans(rows);
    Design::ALL
        .iter()
        .map(|&design| {
            let overhead_pct = Design::INSTRUMENTED
                .iter()
                .position(|&d| d == design)
                .map(|i| measured[i])
                .unwrap_or(0.0);
            let coverage_pct = coverage
                .iter()
                .find(|c| c.design == design)
                .map(DesignCoverage::coverage_pct)
                .unwrap_or(0.0);
            DesignPoint {
                design,
                overhead_pct,
                coverage_pct,
            }
        })
        .collect()
}

/// Pareto flags for the frontier points: `true` when no other design
/// has at-least-equal coverage at at-most-equal overhead with at least
/// one strict improvement.
pub fn frontier_flags(points: &[DesignPoint]) -> Vec<bool> {
    points
        .iter()
        .map(|p| {
            !points.iter().any(|q| {
                q.design != p.design
                    && q.overhead_pct <= p.overhead_pct
                    && q.coverage_pct >= p.coverage_pct
                    && (q.overhead_pct < p.overhead_pct || q.coverage_pct > p.coverage_pct)
            })
        })
        .collect()
}

/// Verifies the Z1 calibration and agreement contracts (DESIGN.md
/// §4l); returns one message per violation, empty on a clean pass.
///
/// * every instrumented design's measured geomean sits in its band,
///   and the baseline's is identically ~0;
/// * the cross-design orderings each paper implies hold;
/// * each zoo design's analytic model tracks its measured overhead
///   within ±25% (ratio of the 1+overhead multipliers);
/// * every executed Juliet sample agreed with its detector model
///   (under CryptSan's spatial exemption);
/// * the coverage structure is the published one (RV-CURE matches the
///   hardware envelope, L4 Pointer the software one, HeapSafe loses
///   exactly the stack category, CryptSan trails the hardware designs);
/// * the fault campaign applied the same outcome total to every design.
pub fn zoo_violations(report: &ZooReport) -> Vec<String> {
    let mut bad = Vec::new();
    let measured = measured_geomeans(&report.rows);
    let model = model_geomeans(&report.rows);
    let design_oh = |d: Design| {
        Design::INSTRUMENTED
            .iter()
            .position(|&x| x == d)
            .map(|i| measured[i])
            .unwrap_or(0.0)
    };
    for (i, design) in Design::INSTRUMENTED.iter().enumerate() {
        if let Some((lo, hi)) = design.band() {
            let oh = measured[i];
            if !(lo..=hi).contains(&oh) {
                bad.push(format!(
                    "{design}: measured geomean overhead {oh:.1}% outside its \
                     calibration band [{lo:.0}%, {hi:.0}%]"
                ));
            }
        }
    }
    let orderings: [(Design, Design); 6] = [
        (Design::Hwst128Tchk, Design::Hwst128),
        (Design::Hwst128, Design::Sbcets),
        (Design::RvCure, Design::CryptSan),
        (Design::CryptSan, Design::L4Pointer),
        (Design::L4Pointer, Design::Sbcets),
        (Design::HeapSafe, Design::CryptSan),
    ];
    for (cheap, dear) in orderings {
        if design_oh(cheap) >= design_oh(dear) {
            bad.push(format!(
                "ordering violated: {cheap} ({:.1}%) must undercut {dear} ({:.1}%)",
                design_oh(cheap),
                design_oh(dear)
            ));
        }
    }
    // HeapSafe and RV-CURE bound each other tightly (both ride the
    // cached hardware check); allow a small stack-vs-heap wobble.
    if design_oh(Design::HeapSafe) > design_oh(Design::RvCure) + 5.0 {
        bad.push(format!(
            "ordering violated: HeapSafe ({:.1}%) must stay within 5 points of \
             RV-CURE ({:.1}%)",
            design_oh(Design::HeapSafe),
            design_oh(Design::RvCure)
        ));
    }
    for (i, design) in Design::ZOO.iter().enumerate() {
        let pos = Design::INSTRUMENTED
            .iter()
            .position(|&d| d == *design)
            .unwrap_or(0);
        let ratio = (1.0 + model[i] / 100.0) / (1.0 + measured[pos] / 100.0);
        if !(0.8..=1.25).contains(&ratio) {
            bad.push(format!(
                "{design}: analytic model geomean {:.1}% drifts beyond ±25% of the \
                 measured {:.1}% (ratio {ratio:.3})",
                model[i], measured[pos]
            ));
        }
    }
    for cov in &report.coverage {
        if !cov.sample_agree {
            bad.push(format!(
                "{}: executed Juliet sample disagrees with the detector model \
                 ({}/{} detected vs {} modeled)",
                cov.design, cov.sample_detected, cov.sample_cases, cov.sample_model
            ));
        }
    }
    let model_count = |d: Design| {
        report
            .coverage
            .iter()
            .find(|c| c.design == d)
            .map(|c| c.model_detected)
            .unwrap_or(0)
    };
    let structure: [(&str, bool); 4] = [
        (
            "RV-CURE must match the HWST128 coverage envelope",
            model_count(Design::RvCure) == model_count(Design::Hwst128),
        ),
        (
            "L4 Pointer must match the SBCETS coverage envelope",
            model_count(Design::L4Pointer) == model_count(Design::Sbcets),
        ),
        (
            "HeapSafe must trail HWST128 (it loses the stack category)",
            model_count(Design::HeapSafe) < model_count(Design::Hwst128),
        ),
        (
            "CryptSan must trail the hardware designs",
            model_count(Design::CryptSan) < model_count(Design::Hwst128),
        ),
    ];
    for (what, ok) in structure {
        if !ok {
            bad.push(format!("coverage structure violated: {what}"));
        }
    }
    let totals: Vec<u64> = report.inject.iter().map(OutcomeCounts::total).collect();
    if let Some(&first) = totals.first() {
        if totals.iter().any(|&t| t != first) {
            bad.push(format!(
                "fault campaign applied unequal outcome totals across designs: {totals:?}"
            ));
        }
    }
    bad
}

/// The `BENCH_zoo.json` document. Deliberately carries no worker count
/// or wall-clock fields: the artifact is byte-identical for any
/// `--jobs N` (the acceptance contract), so timing goes to stdout only.
pub fn zoo_summary(
    cfg: &ZooConfig,
    scale: Scale,
    report: &ZooReport,
    failed: &[FailedJob],
    violations: &[String],
) -> Json {
    let measured = measured_geomeans(&report.rows);
    let model = model_geomeans(&report.rows);
    let points = design_points(&report.rows, &report.coverage);
    let flags = frontier_flags(&points);
    let mut frontier: Vec<&DesignPoint> = points
        .iter()
        .zip(&flags)
        .filter(|(_, &f)| f)
        .map(|(p, _)| p)
        .collect();
    frontier.sort_by(|a, b| a.overhead_pct.total_cmp(&b.overhead_pct));
    let designs = Json::Arr(
        Design::ALL
            .iter()
            .enumerate()
            .map(|(di, &design)| {
                let oh = Design::INSTRUMENTED
                    .iter()
                    .position(|&d| d == design)
                    .map(|i| measured[i])
                    .unwrap_or(0.0);
                let model_oh = Design::ZOO
                    .iter()
                    .position(|&d| d == design)
                    .map(|i| Json::from(model[i]))
                    .unwrap_or(Json::Null);
                let band = design
                    .band()
                    .map(|(lo, hi)| Json::Arr(vec![Json::from(lo), Json::from(hi)]))
                    .unwrap_or(Json::Null);
                let cov = report.coverage.iter().find(|c| c.design == design);
                let coverage = match cov {
                    Some(c) => Json::obj()
                        .set("model_detected", c.model_detected)
                        .set("total_cases", c.total_cases)
                        .set("coverage_pct", c.coverage_pct())
                        .set("sample_cases", c.sample_cases)
                        .set("sample_detected", c.sample_detected)
                        .set("sample_model", c.sample_model)
                        .set("sample_agree", c.sample_agree),
                    None => Json::Null,
                };
                let inject = report
                    .inject
                    .get(di)
                    .map(|c| {
                        Json::obj()
                            .set("detected", c.detected)
                            .set("masked", c.masked)
                            .set("silent", c.silent)
                            .set("machine_fault", c.machine_fault)
                            .set("not_applied", c.not_applied)
                    })
                    .unwrap_or(Json::Null);
                Json::obj()
                    .set("name", design.label())
                    .set("overhead_geomean_pct", oh)
                    .set("model_overhead_geomean_pct", model_oh)
                    .set("band_pct", band)
                    .set("coverage", coverage)
                    .set("inject", inject)
                    .set("on_frontier", flags[di])
            })
            .collect(),
    );
    let rows = Json::Arr(
        report
            .rows
            .iter()
            .map(|r| {
                let mut oh = Json::obj();
                for (i, d) in Design::INSTRUMENTED.iter().enumerate() {
                    oh = oh.set(d.label(), r.measured_pct[i]);
                }
                let mut mp = Json::obj();
                for (i, d) in Design::ZOO.iter().enumerate() {
                    mp = mp.set(d.label(), r.model_pct[i]);
                }
                Json::obj()
                    .set("name", r.name.as_str())
                    .set("suite", r.suite.to_string())
                    .set("baseline_cycles", r.baseline_cycles)
                    .set("overhead_pct", oh)
                    .set("model_pct", mp)
            })
            .collect(),
    );
    Json::obj()
        .set("schema", "hwst-bench/zoo")
        .set("version", hwst_bench::summary::SCHEMA_VERSION)
        .set("scale", format!("{scale:?}"))
        .set(
            "config",
            Json::obj()
                .set("workload_count", report.rows.len())
                .set("juliet_per_cwe", u64::from(cfg.juliet_per_cwe))
                .set(
                    "inject_workloads",
                    Json::Arr(
                        cfg.inject_workloads
                            .iter()
                            .map(|w| Json::from(*w))
                            .collect(),
                    ),
                )
                .set("seeds_per_target", cfg.seeds_per_target)
                .set("master_seed", format!("{:#x}", cfg.master_seed)),
        )
        .set("designs", designs)
        .set("rows", rows)
        .set(
            "frontier",
            Json::Arr(
                frontier
                    .iter()
                    .map(|p| Json::from(p.design.label()))
                    .collect(),
            ),
        )
        .set(
            "failed",
            Json::Arr(
                failed
                    .iter()
                    .map(|f| {
                        Json::obj()
                            .set("label", f.label.as_str())
                            .set("error", f.error.as_str())
                    })
                    .collect(),
            ),
        )
        .set(
            "violations",
            Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
        )
        .set(
            "gate",
            if violations.is_empty() && failed.is_empty() {
                "pass"
            } else {
                "violated"
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_tables_are_consistent() {
        assert_eq!(Design::ALL.len(), 8);
        for (i, d) in Design::INSTRUMENTED.iter().enumerate() {
            assert_eq!(Design::ALL[i + 1], *d);
        }
        for (d, c) in Design::ZOO.iter().zip(ZooCost::ALL) {
            assert_eq!(d.zoo_cost(), Some(c), "{d}: cost model mismatch");
            assert_eq!(d.label(), c.label(), "{d}: label drift");
        }
        assert_eq!(Design::Baseline.detector(), None);
        assert_eq!(Design::Baseline.band(), None);
        for d in Design::INSTRUMENTED {
            let (lo, hi) = d.band().unwrap_or((0.0, 0.0));
            assert!(lo > 0.0 && lo < hi, "{d}: degenerate band");
            assert!(d.detector().is_some(), "{d}: no detector model");
        }
    }

    #[test]
    fn frontier_flags_mark_non_dominated_points() {
        let mk = |design, overhead_pct, coverage_pct| DesignPoint {
            design,
            overhead_pct,
            coverage_pct,
        };
        let points = vec![
            mk(Design::Baseline, 0.0, 0.0),
            mk(Design::Hwst128Tchk, 45.0, 63.6),
            mk(Design::Hwst128, 130.0, 63.6), // dominated by tchk
            mk(Design::Sbcets, 340.0, 64.5),
            mk(Design::HeapSafe, 46.0, 55.0), // dominated by tchk
        ];
        let flags = frontier_flags(&points);
        assert_eq!(flags, vec![true, true, false, true, false]);
        // Sorted by overhead, the frontier's coverage is monotone.
        let mut frontier: Vec<&DesignPoint> = points
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f)
            .map(|(p, _)| p)
            .collect();
        frontier.sort_by(|a, b| a.overhead_pct.total_cmp(&b.overhead_pct));
        for pair in frontier.windows(2) {
            assert!(pair[0].coverage_pct < pair[1].coverage_pct);
        }
    }

    #[test]
    fn coverage_model_matches_detector_tables() {
        let hw = design_coverage(Design::Hwst128Tchk, 0);
        assert_eq!(hw.model_detected, 5323);
        let sb = design_coverage(Design::Sbcets, 0);
        assert_eq!(sb.model_detected, 5395);
        assert_eq!(design_coverage(Design::RvCure, 0).model_detected, 5323);
        assert_eq!(design_coverage(Design::L4Pointer, 0).model_detected, 5395);
        let heap = design_coverage(Design::HeapSafe, 0);
        assert!(heap.model_detected < 5323);
        let base = design_coverage(Design::Baseline, 0);
        assert_eq!(base.model_detected, 0);
        assert_eq!(base.total_cases, 8366);
    }

    #[test]
    fn executed_sample_agrees_with_models() {
        // One reachable case per CWE, executed for every design — the
        // in-crate version of the artifact agreement gate.
        for design in Design::ALL {
            let cov = design_coverage(design, 1);
            assert!(
                cov.sample_agree,
                "{design}: {}/{} detected vs {} modeled",
                cov.sample_detected, cov.sample_cases, cov.sample_model
            );
        }
    }

    #[test]
    fn smoke_sweep_passes_all_gates() {
        use hwst_harness::NullSink;
        let cfg = ZooConfig::smoke();
        let pool = PoolConfig::parallel(2);
        let (rows, failed) = zoo_row_results(&cfg, Scale::Test, Engine::Fast, &pool, &mut NullSink);
        assert!(failed.is_empty(), "{failed:?}");
        assert_eq!(rows.len(), 4);
        let (coverage, failed) = zoo_coverage_results(&cfg, &pool, &mut NullSink);
        assert!(failed.is_empty(), "{failed:?}");
        let (inject, failed) = zoo_inject_results(&cfg, Scale::Test, &pool, &mut NullSink)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(failed.is_empty(), "{failed:?}");
        let report = ZooReport {
            rows,
            coverage,
            inject,
        };
        // The calibration bands target the full-suite geomean; on the
        // 4-workload smoke subset only the structural gates must hold.
        let bad: Vec<String> = zoo_violations(&report)
            .into_iter()
            .filter(|v| !v.contains("calibration band"))
            .collect();
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn zoo_rows_are_jobs_deterministic() {
        use hwst_harness::NullSink;
        let cfg = ZooConfig {
            workloads: Some(&["math", "treeadd"]),
            ..ZooConfig::smoke()
        };
        let serial = zoo_row_results(
            &cfg,
            Scale::Test,
            Engine::Fast,
            &PoolConfig::serial(),
            &mut NullSink,
        );
        let parallel = zoo_row_results(
            &cfg,
            Scale::Test,
            Engine::Fast,
            &PoolConfig::parallel(4),
            &mut NullSink,
        );
        assert_eq!(serial.0, parallel.0);
        assert!(serial.1.is_empty() && parallel.1.is_empty());
    }
}
