//! End-to-end: IR → instrument → lower → simulate, across all schemes.

use hwst_compiler::{compile, ir::BinOp, ir::Width, ModuleBuilder, Scheme};
use hwst_sim::{Machine, SafetyConfig, Trap};

fn config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None => SafetyConfig::baseline(),
        Scheme::Sbcets => SafetyConfig::baseline(), // all checks in software
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => SafetyConfig::default(),
        Scheme::Shore => SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..SafetyConfig::default()
        },
        Scheme::RvCure => SafetyConfig::hwst128_no_tchk(),
        Scheme::HeapSafe => SafetyConfig::default(),
        Scheme::L4Pointer | Scheme::CryptSan => SafetyConfig::baseline(),
    }
}

fn run_scheme(
    module: &hwst_compiler::ir::Module,
    scheme: Scheme,
) -> Result<hwst_sim::ExitStatus, Trap> {
    let prog = compile(module, scheme).expect("compiles");
    Machine::new(prog, config_for(scheme)).run(50_000_000)
}

/// Sums an array through a heap pointer: a well-behaved program every
/// scheme must agree on.
fn array_sum_module(n: i64) -> hwst_compiler::ir::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let head = f.new_block();
    let body = f.new_block();
    let sum_head = f.new_block();
    let sum_body = f.new_block();
    let done = f.new_block();

    let size = f.konst(n * 8);
    let arr = f.malloc(size);
    let idx_slot = f.stack_alloc(8);
    let sum_slot = f.stack_alloc(8);
    let zero = f.konst(0);
    f.store(zero, idx_slot, 0, Width::U64);
    f.store(zero, sum_slot, 0, Width::U64);
    f.jmp(head);

    // head: while (i != n)
    f.switch_to(head);
    let i = f.load(idx_slot, 0, Width::U64);
    let c = f.bin_imm(BinOp::Sltu, i, n);
    f.br(c, body, sum_head);

    // body: arr[i] = i * 3; i += 1
    f.switch_to(body);
    let i2 = f.load(idx_slot, 0, Width::U64);
    let off = f.bin_imm(BinOp::Sll, i2, 3);
    let slot = f.gep(arr, off);
    let v = f.bin_imm(BinOp::Mul, i2, 3);
    f.store(v, slot, 0, Width::U64);
    let i3 = f.bin_imm(BinOp::Add, i2, 1);
    f.store(i3, idx_slot, 0, Width::U64);
    f.jmp(head);

    // sum_head: reset i, loop again summing
    f.switch_to(sum_head);
    let z = f.konst(0);
    f.store(z, idx_slot, 0, Width::U64);
    f.jmp(sum_body);

    f.switch_to(sum_body);
    let i4 = f.load(idx_slot, 0, Width::U64);
    let c2 = f.bin_imm(BinOp::Sltu, i4, n);
    let cont = f.new_block();
    f.br(c2, cont, done);
    f.switch_to(cont);
    let off2 = f.bin_imm(BinOp::Sll, i4, 3);
    let slot2 = f.gep(arr, off2);
    let v2 = f.load(slot2, 0, Width::U64);
    let s = f.load(sum_slot, 0, Width::U64);
    let s2 = f.bin(BinOp::Add, s, v2);
    f.store(s2, sum_slot, 0, Width::U64);
    let i5 = f.bin_imm(BinOp::Add, i4, 1);
    f.store(i5, idx_slot, 0, Width::U64);
    f.jmp(sum_body);

    // done: free and return sum
    f.switch_to(done);
    f.free(arr);
    let result = f.load(sum_slot, 0, Width::U64);
    f.ret(Some(result));
    f.finish();
    mb.finish()
}

#[test]
fn all_schemes_agree_on_a_correct_program() {
    let m = array_sum_module(20);
    let expected = (0..20).map(|i| i * 3).sum::<u64>();
    for scheme in Scheme::ALL {
        let exit = run_scheme(&m, scheme).unwrap_or_else(|t| panic!("{scheme} trapped: {t}"));
        assert_eq!(exit.code, expected, "{scheme} computed a wrong sum");
    }
}

#[test]
fn cycle_ordering_matches_fig4() {
    let m = array_sum_module(64);
    let mut cycles = std::collections::HashMap::new();
    for scheme in Scheme::ALL {
        let exit = run_scheme(&m, scheme).unwrap();
        cycles.insert(scheme.label(), exit.stats.total_cycles());
    }
    let base = cycles["baseline"];
    let tchk = cycles["HWST128_tchk"];
    let hwst = cycles["HWST128"];
    let sb = cycles["SBCETS"];
    assert!(base < tchk, "tchk must cost something: {base} vs {tchk}");
    assert!(
        tchk < hwst,
        "software key check must cost more: {tchk} vs {hwst}"
    );
    assert!(
        hwst < sb,
        "full software checks must cost the most: {hwst} vs {sb}"
    );
}

/// A heap overflow: every *protecting* scheme must trap, the baseline
/// must not.
fn overflow_module() -> hwst_compiler::ir::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let v = f.konst(0x41);
    f.store(v, p, 64, Width::U64); // one past the end
    f.free(p);
    f.ret(None);
    f.finish();
    mb.finish()
}

#[test]
fn overflow_detected_by_protecting_schemes() {
    let m = overflow_module();
    assert!(run_scheme(&m, Scheme::None).is_ok());
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::SpatialViolation { .. }) => {}
            other => panic!("{scheme}: expected spatial violation, got {other:?}"),
        }
    }
}

/// Use-after-free through a dangling pointer.
fn uaf_module() -> hwst_compiler::ir::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let v = f.konst(7);
    f.store(v, p, 0, Width::U64);
    f.free(p);
    let r = f.load(p, 0, Width::U64); // dangling
    f.ret(Some(r));
    f.finish();
    mb.finish()
}

#[test]
fn use_after_free_detected_by_protecting_schemes() {
    let m = uaf_module();
    assert!(run_scheme(&m, Scheme::None).is_ok());
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::TemporalViolation { .. }) => {}
            other => panic!("{scheme}: expected temporal violation, got {other:?}"),
        }
    }
}

/// Double free: the CETS pre-free check must catch the second free.
#[test]
fn double_free_detected() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(32);
    f.free(p);
    f.free(p);
    f.ret(None);
    f.finish();
    let m = mb.finish();
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::TemporalViolation { .. }) => {}
            other => panic!("{scheme}: expected temporal violation, got {other:?}"),
        }
    }
}

/// Use-after-return: a callee leaks a frame pointer; dereferencing it
/// after return must trap temporally.
#[test]
fn use_after_return_detected() {
    let mut mb = ModuleBuilder::new();
    // leak() stores &local into a global and returns.
    let cell = mb.global("cell", 8);
    let mut f = mb.func("leak");
    let local = f.stack_alloc(16);
    let v = f.konst(9);
    f.store(v, local, 0, Width::U64);
    let g = f.addr_of_global(cell);
    f.store_ptr(local, g, 0);
    f.ret(None);
    f.finish();
    let mut f = mb.func("main");
    f.call_void("leak", &[]);
    let g = f.addr_of_global(cell);
    let dangling = f.load_ptr(g, 0);
    let r = f.load(dangling, 0, Width::U64);
    f.ret(Some(r));
    f.finish();
    let m = mb.finish();
    assert!(run_scheme(&m, Scheme::None).is_ok());
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::TemporalViolation { .. }) => {}
            other => panic!("{scheme}: expected temporal violation, got {other:?}"),
        }
    }
}

/// Pointer args keep their metadata across calls.
#[test]
fn callee_checks_caller_pointer() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("write_at");
    let p = f.param(true);
    let off = f.param(false);
    let slot = f.gep(p, off);
    let v = f.konst(1);
    f.store(v, slot, 0, Width::U64);
    f.ret(None);
    f.finish();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let ok_off = f.konst(56);
    f.call_void("write_at", &[p, ok_off]);
    let bad_off = f.konst(64);
    f.call_void("write_at", &[p, bad_off]);
    f.ret(None);
    f.finish();
    let m = mb.finish();
    assert!(run_scheme(&m, Scheme::None).is_ok());
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::SpatialViolation { .. }) => {}
            other => panic!("{scheme}: expected spatial violation, got {other:?}"),
        }
    }
}

/// Through-memory propagation: metadata survives a pointer's round trip
/// through a global container.
#[test]
fn pointer_round_trip_through_memory_keeps_bounds() {
    let mut mb = ModuleBuilder::new();
    let cell = mb.global("cell", 8);
    let mut f = mb.func("main");
    let p = f.malloc_bytes(32);
    let g = f.addr_of_global(cell);
    f.store_ptr(p, g, 0);
    let q = f.load_ptr(g, 0);
    let v = f.konst(5);
    f.store(v, q, 32, Width::U64); // out of bounds through the reloaded ptr
    f.ret(None);
    f.finish();
    let m = mb.finish();
    for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
        match run_scheme(&m, scheme) {
            Err(Trap::SpatialViolation { .. }) => {}
            other => panic!("{scheme}: expected spatial violation, got {other:?}"),
        }
    }
}

#[test]
fn output_is_identical_across_schemes() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(8);
    let v = f.konst(0x68); // 'h'
    f.store(v, p, 0, Width::U64);
    let r = f.load(p, 0, Width::U64);
    f.putchar(r);
    let n = f.konst(1234);
    f.print_u64(n);
    f.free(p);
    f.ret(None);
    f.finish();
    let m = mb.finish();
    let mut outputs = Vec::new();
    for scheme in Scheme::ALL {
        outputs.push(run_scheme(&m, scheme).unwrap().output_string());
    }
    assert_eq!(outputs[0], "h1234\n");
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn compile_with_sizes_reports_per_function_counts() {
    use hwst_compiler::compile_with_sizes;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("helper");
    let v = f.konst(1);
    f.ret(Some(v));
    f.finish();
    let mut f = mb.func("main");
    let r = f.call("helper", &[]);
    f.ret(Some(r));
    f.finish();
    let m = mb.finish();
    let (prog, sizes) = compile_with_sizes(&m, Scheme::None).unwrap();
    assert_eq!(sizes.len(), 2);
    let by_name: std::collections::HashMap<_, _> = sizes.into_iter().collect();
    assert!(by_name["helper"] > 0 && by_name["main"] > 0);
    // Shim + functions account for the whole program.
    assert!(by_name["helper"] + by_name["main"] < prog.len());
}

#[test]
fn instrumented_code_size_ordering() {
    use hwst_compiler::compile_with_sizes;
    // tchk's single-instruction temporal check must make the complete-
    // protection binary smaller than the software-key-check variant.
    let m = uaf_module();
    let size = |s: Scheme| compile_with_sizes(&m, s).unwrap().0.len();
    assert!(size(Scheme::None) < size(Scheme::Shore));
    assert!(size(Scheme::Shore) < size(Scheme::Hwst128Tchk));
    assert!(size(Scheme::Hwst128Tchk) < size(Scheme::Hwst128));
}
