//! Soundness-by-construction property test for the static bounds-proof
//! pass: on randomly generated well-formed pointer programs, compiling
//! with `bounds` (plus RCE and the witness-checking verifier) must be
//! observationally identical to the checks-forced-on build under every
//! scheme that can carry a skip. The plain build *is* the dynamic
//! re-check: every check the pass deleted still executes there, so a
//! divergence or a trap would expose an unsound witness. The verifier
//! additionally re-validates each witness arithmetically at compile
//! time (`CompileError::InvalidWitness` fails the test through
//! `expect`).

use hwst_compiler::ir::{BinOp, VarId, Width};
use hwst_compiler::{
    bounds, compile_with_options, CompileOptions, FuncBuilder, ModuleBuilder, Scheme,
};
use hwst_sim::{Machine, SafetyConfig};
use proptest::prelude::*;

/// One generated action. Indices are taken modulo live state at build
/// time, so any sequence is well-formed by construction. Compared to
/// the differential generator this one also emits stack allocas,
/// constant-offset accesses (bounds-provable) and counted loops over a
/// whole buffer (provable only with widening + edge refinement).
#[derive(Debug, Clone)]
enum Act {
    /// Allocate a heap buffer of 8..=256 bytes.
    Alloc(u8),
    /// Allocate a stack buffer of 8..=128 bytes.
    Stack(u8),
    /// Store at a constant in-bounds slot of a live buffer.
    Store { buf: u8, frac: u8, val: i8 },
    /// Load a constant in-bounds slot and mix into the accumulator.
    Load { buf: u8, frac: u8 },
    /// Derived pointer: gep by a constant, then store through it.
    GepStore { buf: u8, frac: u8, val: i8 },
    /// `for (i = 0; i < slots; i++) buf[i] = val + i` — the loop shape
    /// the interval widening was built for.
    LoopFill { buf: u8, val: i8 },
    /// Sum every slot of a buffer into the accumulator with a loop.
    LoopSum { buf: u8 },
    /// Round-trip a pointer through memory, then read through it
    /// (unprovable: the reload has heap provenance only at runtime).
    PtrRoundTrip { buf: u8, frac: u8 },
    /// Free the oldest live heap buffer (if more than one remains).
    FreeOldest,
    /// Pure arithmetic on the accumulator.
    Arith { op: u8, imm: i16 },
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        (any::<u8>()).prop_map(Act::Alloc),
        (any::<u8>()).prop_map(Act::Stack),
        (any::<u8>(), any::<u8>(), any::<i8>()).prop_map(|(buf, frac, val)| Act::Store {
            buf,
            frac,
            val
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(buf, frac)| Act::Load { buf, frac }),
        (any::<u8>(), any::<u8>(), any::<i8>()).prop_map(|(buf, frac, val)| Act::GepStore {
            buf,
            frac,
            val
        }),
        (any::<u8>(), any::<i8>()).prop_map(|(buf, val)| Act::LoopFill { buf, val }),
        (any::<u8>()).prop_map(|buf| Act::LoopSum { buf }),
        (any::<u8>(), any::<u8>()).prop_map(|(buf, frac)| Act::PtrRoundTrip { buf, frac }),
        Just(Act::FreeOldest),
        (any::<u8>(), any::<i16>()).prop_map(|(op, imm)| Act::Arith { op, imm }),
    ]
}

/// In-bounds 8-byte-slot offset for a buffer of `size` bytes.
fn slot_offset(size: u64, frac: u8) -> i64 {
    let slots = size / 8;
    ((frac as u64 % slots) * 8) as i64
}

/// `for (i = 0; i < n; i++) body(i)` in header/body/exit shape.
fn count_loop(f: &mut FuncBuilder<'_>, n: i64, body: impl FnOnce(&mut FuncBuilder<'_>, VarId)) {
    let i = f.local();
    let z = f.konst(0);
    f.local_set(i, z);
    let head = f.new_block();
    let body_b = f.new_block();
    let done = f.new_block();
    f.jmp(head);
    f.switch_to(head);
    let iv = f.local_get(i);
    let e = f.konst(n);
    let c = f.bin(BinOp::Slt, iv, e);
    f.br(c, body_b, done);
    f.switch_to(body_b);
    let iv2 = f.local_get(i);
    body(f, iv2);
    let iv3 = f.local_get(i);
    let nx = f.bin_imm(BinOp::Add, iv3, 1);
    f.local_set(i, nx);
    f.jmp(head);
    f.switch_to(done);
}

/// Buffers live in `main`: heap ones can be freed, stack ones cannot.
#[derive(Clone, Copy)]
struct Buf {
    var: VarId,
    size: u64,
    heap: bool,
}

fn build(acts: &[Act]) -> hwst_compiler::ir::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    let cell = f.malloc_bytes(8);
    let first = f.malloc_bytes(64);
    let mut bufs = vec![Buf {
        var: first,
        size: 64,
        heap: true,
    }];

    let mix = |f: &mut FuncBuilder<'_>, acc, v| {
        let a = f.local_get(acc);
        let m = f.bin(BinOp::Add, a, v);
        let m = f.bin_imm(BinOp::And, m, 0xffff);
        f.local_set(acc, m);
    };

    for act in acts {
        match *act {
            Act::Alloc(s) => {
                if bufs.len() < 10 {
                    let size = 8 + (s as u64 % 32) * 8;
                    let b = f.malloc_bytes(size);
                    bufs.push(Buf {
                        var: b,
                        size,
                        heap: true,
                    });
                }
            }
            Act::Stack(s) => {
                if bufs.len() < 10 {
                    let size = 8 + (s as u64 % 16) * 8;
                    let b = f.stack_alloc(size);
                    bufs.push(Buf {
                        var: b,
                        size,
                        heap: false,
                    });
                }
            }
            Act::Store { buf, frac, val } => {
                let b = bufs[buf as usize % bufs.len()];
                let v = f.konst(val as i64);
                f.store(v, b.var, slot_offset(b.size, frac), Width::U64);
            }
            Act::Load { buf, frac } => {
                let b = bufs[buf as usize % bufs.len()];
                let v = f.load(b.var, slot_offset(b.size, frac), Width::U64);
                mix(&mut f, acc, v);
            }
            Act::GepStore { buf, frac, val } => {
                let b = bufs[buf as usize % bufs.len()];
                let o = f.konst(slot_offset(b.size, frac));
                let p = f.gep(b.var, o);
                let v = f.konst(val as i64);
                f.store(v, p, 0, Width::U64);
            }
            Act::LoopFill { buf, val } => {
                let b = bufs[buf as usize % bufs.len()];
                let slots = (b.size / 8) as i64;
                count_loop(&mut f, slots, |f, iv| {
                    let off = f.bin_imm(BinOp::Sll, iv, 3);
                    let slot = f.gep(b.var, off);
                    let v = f.bin_imm(BinOp::Add, iv, val as i64);
                    f.store(v, slot, 0, Width::U64);
                });
            }
            Act::LoopSum { buf } => {
                let b = bufs[buf as usize % bufs.len()];
                let slots = (b.size / 8) as i64;
                count_loop(&mut f, slots, |f, iv| {
                    let off = f.bin_imm(BinOp::Sll, iv, 3);
                    let slot = f.gep(b.var, off);
                    let v = f.load(slot, 0, Width::U64);
                    let a = f.local_get(acc);
                    let s = f.bin(BinOp::Add, a, v);
                    let s = f.bin_imm(BinOp::And, s, 0xffff);
                    f.local_set(acc, s);
                });
            }
            Act::PtrRoundTrip { buf, frac } => {
                let b = bufs[buf as usize % bufs.len()];
                f.store_ptr(b.var, cell, 0);
                let q = f.load_ptr(cell, 0);
                let v = f.load(q, slot_offset(b.size, frac), Width::U64);
                mix(&mut f, acc, v);
            }
            Act::FreeOldest => {
                if let Some(pos) = bufs.iter().position(|b| b.heap) {
                    if bufs.iter().filter(|b| b.heap).count() > 1 {
                        let b = bufs.remove(pos);
                        f.free(b.var);
                    }
                }
            }
            Act::Arith { op, imm } => {
                let a = f.local_get(acc);
                let v = match op % 4 {
                    0 => f.bin_imm(BinOp::Add, a, imm as i64),
                    1 => f.bin_imm(BinOp::Xor, a, imm as i64),
                    2 => f.bin_imm(BinOp::Mul, a, (imm as i64) | 1),
                    _ => f.bin_imm(BinOp::Srl, a, (imm as i64 & 7) + 1),
                };
                let v = f.bin_imm(BinOp::And, v, 0xffff);
                f.local_set(acc, v);
            }
        }
    }
    for b in bufs.iter().filter(|b| b.heap) {
        f.free(b.var);
    }
    f.free(cell);
    let r = f.local_get(acc);
    f.print_u64(r);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

fn config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None | Scheme::Sbcets => SafetyConfig::baseline(),
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => SafetyConfig::default(),
        Scheme::Shore => SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..SafetyConfig::default()
        },
        Scheme::RvCure => SafetyConfig::hwst128_no_tchk(),
        Scheme::HeapSafe => SafetyConfig::default(),
        Scheme::L4Pointer | Scheme::CryptSan => SafetyConfig::baseline(),
    }
}

fn exec(module: &hwst_compiler::ir::Module, opts: CompileOptions, tag: &str) -> (u64, Vec<u8>) {
    let compiled = compile_with_options(module, opts)
        .unwrap_or_else(|e| panic!("{tag} ({}) failed to compile: {e}", opts.scheme));
    let exit = Machine::new(compiled.program, config_for(opts.scheme))
        .run(40_000_000)
        .unwrap_or_else(|t| panic!("{tag} ({}) trapped: {t}", opts.scheme));
    (exit.code, exit.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checks-on, RCE-only and RCE+bounds builds agree on every scheme
    /// that can carry a witness skip. The bounds build runs with the
    /// verifier on, so each witness is also re-validated statically.
    #[test]
    fn bounds_elimination_is_observationally_sound(
        acts in prop::collection::vec(act_strategy(), 1..48)
    ) {
        let module = build(&acts);
        for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
            let plain = exec(&module, CompileOptions::new(scheme), "plain");
            let rce = exec(&module, CompileOptions::new(scheme).with_rce(), "rce");
            let full = exec(
                &module,
                CompileOptions::new(scheme).with_rce().with_bounds().with_verify(),
                "rce+bounds",
            );
            prop_assert_eq!(&plain, &rce, "rce diverged under {}\nacts: {:?}", scheme, acts);
            prop_assert_eq!(&plain, &full, "bounds diverged under {}\nacts: {:?}", scheme, acts);
        }
    }

    /// The four zoo schemes (RV-CURE, L4 Pointer, CryptSan, HeapSafe)
    /// never panic the compiler, verifier or machine on generator
    /// programs, and each preserves the benign observable behaviour.
    /// `exec` panics on any compile error or trap, so the proptest
    /// harness doubles as the no-panic gate.
    #[test]
    fn zoo_schemes_are_panic_free_and_transparent(
        acts in prop::collection::vec(act_strategy(), 1..48)
    ) {
        let module = build(&acts);
        let base = exec(&module, CompileOptions::new(Scheme::None), "baseline");
        for scheme in Scheme::ZOO {
            let plain = exec(&module, CompileOptions::new(scheme), "zoo");
            let verified = exec(
                &module,
                CompileOptions::new(scheme).with_rce().with_verify(),
                "zoo rce+verify",
            );
            prop_assert_eq!(&base, &plain, "{} diverged\nacts: {:?}", scheme, acts);
            prop_assert_eq!(&base, &verified, "{} rce diverged\nacts: {:?}", scheme, acts);
        }
    }

    /// Every witness the analysis emits survives its own arithmetic
    /// re-check: the claimed byte interval must fit the object. This is
    /// the same predicate `verify` and `binval` enforce; here it is
    /// applied to the raw analysis output before any pass consumes it.
    #[test]
    fn every_witness_is_arithmetically_valid(
        acts in prop::collection::vec(act_strategy(), 1..48)
    ) {
        let module = build(&acts);
        let outcome = bounds::analyze(&module);
        for w in &outcome.witnesses {
            prop_assert!(
                w.arithmetic_ok(),
                "witness {} b{}/i{} claims [{}, {}) of a {}-byte object",
                w.func, w.block, w.inst, w.lo, w.hi, w.size
            );
        }
    }
}

/// The generator must actually exercise the pass: on a module made of
/// loop fills and sums the analysis proves sites, and the proofs
/// translate into strictly fewer static checks than RCE alone.
#[test]
fn generator_produces_provable_sites() {
    let acts = vec![
        Act::Stack(12),
        Act::LoopFill { buf: 1, val: 3 },
        Act::LoopSum { buf: 1 },
        Act::Store {
            buf: 0,
            frac: 2,
            val: 9,
        },
        Act::Load { buf: 0, frac: 2 },
    ];
    let module = build(&acts);
    let outcome = bounds::analyze(&module);
    assert!(
        outcome.stats.proven >= 4,
        "expected the loop and constant sites proven, got {:?}",
        outcome.stats
    );
    let rce_only =
        compile_with_options(&module, CompileOptions::new(Scheme::Hwst128Tchk).with_rce())
            .expect("rce build");
    let full = compile_with_options(
        &module,
        CompileOptions::new(Scheme::Hwst128Tchk)
            .with_rce()
            .with_bounds()
            .with_verify(),
    )
    .expect("bounds build");
    assert!(
        full.check_count < rce_only.check_count,
        "bounds must beat RCE alone: {} vs {}",
        full.check_count,
        rce_only.check_count
    );
    assert_eq!(full.skips.len(), outcome.stats.proven);
}
