//! Filetest-style golden tests for the IR passes.
//!
//! Each file under `tests/filetests/` is named `<fixture>.<pass>.golden`
//! and holds the expected listing after running `<pass>` on the named
//! fixture module: a stats header (`;`-prefixed comment lines) followed
//! by every function rendered through
//! [`hwst_compiler::function_with_cfg`], so block-level diffs show
//! predecessor/dominator changes too.
//!
//! Passes: `opt` (the light optimizer, source IR), `rce`
//! (instrument for HWST128_tchk, then redundant-check elimination),
//! `bounds` (the static bounds-proof pass: witness table, skip table
//! and the instrumented-with-skips IR) and `o1` (instrument for
//! HWST128_tchk, then the optimizing back-end: the rendered `-O1`
//! disassembly with each function's frame/ptr-slot/register-assignment
//! header, so spill decisions and metadata-op scheduling are pinned).
//!
//! To regenerate after an intentional output change:
//!
//! ```text
//! BLESS=1 cargo test -p hwst-compiler --test filetest
//! ```

use hwst_compiler::ir::{BinOp, Module, VarId, Width};
use hwst_compiler::{analysis, bounds, function_with_cfg, instrument, opt, rce};
use hwst_compiler::{lower_with_plan_opt, FuncBuilder, ModuleBuilder, OptLevel, Scheme};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------- fixtures

/// Straight-line code: constant math the optimizer folds, a dead
/// binop, and in-bounds stack/heap accesses the bounds pass proves.
fn straightline() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let a = f.stack_alloc(16);
    let x = f.konst(6);
    let y = f.konst(7);
    let prod = f.bin(BinOp::Mul, x, y);
    let _dead = f.bin(BinOp::Add, prod, x);
    f.store(prod, a, 8, Width::U64);
    let p = f.malloc_bytes(32);
    f.store(prod, p, 24, Width::U64);
    let v = f.load(a, 8, Width::U64);
    f.free(p);
    f.ret(Some(v));
    f.finish();
    mb.finish()
}

/// A counted loop writing then summing an 8-element array: the bounds
/// pass needs edge refinement plus widening to prove the body accesses.
fn loop_sum() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let buf = f.stack_alloc(64);
    count_loop(&mut f, 8, |f, iv| {
        let off = f.bin_imm(BinOp::Sll, iv, 3);
        let slot = f.gep(buf, off);
        f.store(iv, slot, 0, Width::U64);
    });
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    count_loop(&mut f, 8, |f, iv| {
        let off = f.bin_imm(BinOp::Sll, iv, 3);
        let slot = f.gep(buf, off);
        let v = f.load(slot, 0, Width::U64);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, v);
        f.local_set(acc, s);
    });
    let r = f.local_get(acc);
    f.ret(Some(r));
    f.finish();
    mb.finish()
}

/// Heap pointers stored and reloaded through memory: repeated derefs of
/// the same pointer for RCE dominance, and a reloaded pointer the
/// bounds pass cannot prove (its only `tchk` must survive).
fn heap_copy() -> Module {
    let mut mb = ModuleBuilder::new();
    let g = mb.global("table", 16);
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let one = f.konst(1);
    f.store(one, p, 0, Width::U64);
    f.store(one, p, 8, Width::U64);
    let cell = f.malloc_bytes(16);
    f.store_ptr(p, cell, 0);
    let q = f.load_ptr(cell, 0);
    let v = f.load(q, 8, Width::U64);
    let t = f.addr_of_global(g);
    f.store(v, t, 0, Width::U64);
    f.free(cell);
    f.free(p);
    f.ret(Some(v));
    f.finish();
    mb.finish()
}

/// Register pressure: fourteen values defined up front and all still
/// live at the final reduction, so the `-O1` linear-scan allocator
/// (twelve pool registers) must spill — the golden pins which home
/// slots win registers and which stay memory-resident.
fn spill() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let buf = f.stack_alloc(128);
    let mut vals = Vec::new();
    for i in 0..14i64 {
        let k = f.konst(i + 1);
        f.store(k, buf, i * 8, Width::U64);
        vals.push(f.load(buf, i * 8, Width::U64));
    }
    // First reduction in definition order, second in reverse: every
    // value's last use sits in the second chain, so all fourteen are
    // simultaneously live where the chains meet.
    let mut fwd = vals[0];
    for &v in &vals[1..] {
        fwd = f.bin(BinOp::Add, fwd, v);
    }
    let mut rev = vals[13];
    for &v in vals[..13].iter().rev() {
        rev = f.bin(BinOp::Add, rev, v);
    }
    let out = f.bin(BinOp::Sub, fwd, rev);
    f.ret(Some(out));
    f.finish();
    mb.finish()
}

/// A copy loop through two heap pointers plus a through-memory pointer
/// store: the `-O1` golden pins the metadata-op schedule — which
/// `lbdls` reloads the emitter's SRF cache elides across the
/// straight-line body, and where the `sbdl`/`sbdu` pair of the
/// `store_ptr` lands relative to the shuttle reload it feeds on.
fn ptrloop() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let src = f.malloc_bytes(64);
    let dst = f.malloc_bytes(64);
    let cell = f.malloc_bytes(16);
    f.store_ptr(src, cell, 0);
    count_loop(&mut f, 8, |f, iv| {
        let off = f.bin_imm(BinOp::Sll, iv, 3);
        let s = f.gep(src, off);
        let v = f.load(s, 0, Width::U64);
        let d = f.gep(dst, off);
        f.store(v, d, 0, Width::U64);
    });
    let back = f.load_ptr(cell, 0);
    let v = f.load(back, 56, Width::U64);
    f.free(cell);
    f.free(dst);
    f.free(src);
    f.ret(Some(v));
    f.finish();
    mb.finish()
}

/// `for (i = 0; i < n; i++) body(i)` in the same shape the workloads
/// use (header / body / exit blocks), so the goldens exercise the CFG
/// annotations on a retreating edge.
fn count_loop(f: &mut FuncBuilder<'_>, n: i64, body: impl FnOnce(&mut FuncBuilder<'_>, VarId)) {
    let i = f.local();
    let z = f.konst(0);
    f.local_set(i, z);
    let head = f.new_block();
    let body_b = f.new_block();
    let done = f.new_block();
    f.jmp(head);
    f.switch_to(head);
    let iv = f.local_get(i);
    let e = f.konst(n);
    let c = f.bin(BinOp::Slt, iv, e);
    f.br(c, body_b, done);
    f.switch_to(body_b);
    let iv2 = f.local_get(i);
    body(f, iv2);
    let iv3 = f.local_get(i);
    let nx = f.bin_imm(BinOp::Add, iv3, 1);
    f.local_set(i, nx);
    f.jmp(head);
    f.switch_to(done);
}

// ------------------------------------------------------------------ passes

fn render_module(m: &Module) -> String {
    let mut s = String::new();
    for g in &m.globals {
        let _ = writeln!(s, "global {} : {} bytes", g.name, g.size);
    }
    for func in &m.funcs {
        s.push_str(&function_with_cfg(func));
    }
    s
}

fn run_pass(pass: &str, module: Module) -> String {
    match pass {
        "opt" => {
            let optimized = opt::optimize(module);
            format!("; pass: opt\n{}", render_module(&optimized))
        }
        "rce" => {
            let info = analysis::analyze(&module).expect("fixture analyzes");
            let mut instrumented = instrument::instrument(&module, &info, Scheme::Hwst128Tchk);
            let stats = rce::eliminate(&mut instrumented);
            format!(
                "; pass: rce (scheme=HWST128_tchk)\n; tchk_removed={} spatial_removed={} \
                 temporal_removed={} patterns_removed={}\n{}",
                stats.tchk_removed,
                stats.spatial_removed,
                stats.temporal_removed,
                stats.patterns_removed,
                render_module(&instrumented)
            )
        }
        "bounds" => {
            let info = analysis::analyze(&module).expect("fixture analyzes");
            let outcome = bounds::analyze(&module);
            let (instrumented, skips) = instrument::instrument_with_bounds(
                &module,
                &info,
                Scheme::Hwst128Tchk,
                Some(&outcome),
            );
            let mut s = format!(
                "; pass: bounds (scheme=HWST128_tchk)\n; derefs={} proven={}\n",
                outcome.stats.derefs, outcome.stats.proven
            );
            for (i, w) in outcome.witnesses.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "; witness[{i}]: {} b{}/i{} {:?} size={} [{}, {})",
                    w.func, w.block, w.inst, w.kind, w.size, w.lo, w.hi
                );
            }
            for sk in &skips {
                let _ = writeln!(
                    s,
                    "; skip: {} b{} deref#{} -> witness[{}]",
                    sk.func, sk.block, sk.deref, sk.witness
                );
            }
            s.push_str(&render_module(&instrumented));
            s
        }
        "o1" => {
            let info = analysis::analyze(&module).expect("fixture analyzes");
            let instrumented = instrument::instrument(&module, &info, Scheme::Hwst128Tchk);
            let (prog, plan) =
                lower_with_plan_opt(&instrumented, Scheme::Hwst128Tchk, OptLevel::O1)
                    .expect("fixture lowers at -O1");
            let mut s = String::from("; pass: o1 (scheme=HWST128_tchk)\n");
            for fp in &plan.funcs {
                let _ = writeln!(
                    s,
                    "; fn {}: frame={} alloca_base={} meta_stores={} checks={}",
                    fp.name,
                    fp.frame_size,
                    fp.alloca_base,
                    fp.meta_stores,
                    fp.checks.len()
                );
                let _ = writeln!(s, ";   ptr_slots: {:?}", fp.ptr_slots);
                if fp.reg_assign.is_empty() {
                    let _ = writeln!(s, ";   reg_assign: (none)");
                } else {
                    let pairs: Vec<String> = fp
                        .reg_assign
                        .iter()
                        .map(|(slot, r)| format!("{r}<-slot{slot}"))
                        .collect();
                    let _ = writeln!(s, ";   reg_assign: {}", pairs.join(" "));
                }
                for (i, ins) in prog.instrs()[fp.start..fp.start + fp.len]
                    .iter()
                    .enumerate()
                {
                    let pc = fp.start_pc + i as u64 * 4;
                    let _ = writeln!(s, "{pc:#07x}  {ins}");
                }
            }
            s
        }
        // Zoo instrumentation goldens: the inline wide-pointer scheme
        // (shadow transfers of all four metadata words + inline
        // spatial/temporal compare-and-branch) and the heap-only tagging
        // scheme (no stack binds, no frame lock, `tchk` checks) — the
        // two zoo designs whose emitted shapes differ most from the
        // published four.
        "l4pointer" => zoo_instrument(Scheme::L4Pointer, module),
        "heapsafe" => zoo_instrument(Scheme::HeapSafe, module),
        other => panic!("unknown pass {other:?} in filetests"),
    }
}

fn zoo_instrument(scheme: Scheme, module: Module) -> String {
    let info = analysis::analyze(&module).expect("fixture analyzes");
    let instrumented = instrument::instrument(&module, &info, scheme);
    format!(
        "; pass: instrument (scheme={})\n{}",
        scheme.label(),
        render_module(&instrumented)
    )
}

// ------------------------------------------------------------------ runner

fn fixture(name: &str) -> Module {
    match name {
        "straightline" => straightline(),
        "loop_sum" => loop_sum(),
        "heap_copy" => heap_copy(),
        "spill" => spill(),
        "ptrloop" => ptrloop(),
        other => panic!("unknown fixture {other:?} in filetests"),
    }
}

const FIXTURES: &[&str] = &["straightline", "loop_sum", "heap_copy", "spill", "ptrloop"];
const PASSES: &[&str] = &["opt", "rce", "bounds", "o1", "l4pointer", "heapsafe"];

fn filetests_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/filetests")
}

fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first diff at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            );
        }
    }
    format!(
        "line counts differ: expected {} lines, got {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn goldens_match() {
    let dir = filetests_dir();
    let bless = std::env::var_os("BLESS").is_some();
    let mut failures = Vec::new();
    for fx in FIXTURES {
        for pass in PASSES {
            let path = dir.join(format!("{fx}.{pass}.golden"));
            let actual = run_pass(pass, fixture(fx));
            if bless {
                std::fs::write(&path, &actual).expect("write golden");
                continue;
            }
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing golden {}: {e} (run with BLESS=1)", path.display())
            });
            if expected != actual {
                failures.push(format!(
                    "{fx}.{pass}: output drifted from golden ({}).\n{}\n\
                     If the change is intentional, regenerate with BLESS=1.",
                    path.display(),
                    first_diff(&expected, &actual)
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn every_golden_names_a_known_fixture_and_pass() {
    // Catches stale goldens left behind by a renamed fixture.
    for entry in std::fs::read_dir(filetests_dir()).expect("filetests dir exists") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let mut parts = name.rsplitn(3, '.');
        let ext = parts.next().unwrap_or("");
        let pass = parts.next().unwrap_or("");
        let fx = parts.next().unwrap_or("");
        assert_eq!(ext, "golden", "unexpected file {name} in filetests/");
        assert!(PASSES.contains(&pass), "{name}: unknown pass {pass:?}");
        assert!(FIXTURES.contains(&fx), "{name}: unknown fixture {fx:?}");
    }
}
