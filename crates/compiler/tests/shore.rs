//! The SHORE scheme (spatial-only predecessor): catches every spatial
//! violation, is blind to temporal ones, and costs less than complete
//! protection.

use hwst_compiler::{compile, ir::Width, ModuleBuilder, Scheme};
use hwst_sim::{Machine, SafetyConfig, Trap};

fn shore_cfg() -> SafetyConfig {
    SafetyConfig {
        temporal: false,
        keybuffer: false,
        ..SafetyConfig::default()
    }
}

fn run_shore(module: &hwst_compiler::ir::Module) -> Result<hwst_sim::ExitStatus, Trap> {
    let prog = compile(module, Scheme::Shore).expect("compiles");
    Machine::new(prog, shore_cfg()).run(50_000_000)
}

#[test]
fn shore_detects_spatial_violations() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let v = f.konst(1);
    f.store(v, p, 64, Width::U64);
    f.ret(None);
    f.finish();
    assert!(matches!(
        run_shore(&mb.finish()),
        Err(Trap::SpatialViolation { .. })
    ));
}

#[test]
fn shore_misses_use_after_free() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    f.free(p);
    let r = f.load(p, 0, Width::U64); // dangling: SHORE cannot see this
    f.ret(Some(r));
    f.finish();
    assert!(run_shore(&mb.finish()).is_ok());
}

#[test]
fn shore_misses_double_free() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(32);
    f.free(p);
    f.free(p);
    f.ret(None);
    f.finish();
    assert!(run_shore(&mb.finish()).is_ok());
}

#[test]
fn shore_costs_less_than_complete_protection() {
    // Build a pointer-heavy loop and compare cycles.
    let build = || {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(256);
        for i in 0..32i64 {
            let v = f.konst(i);
            f.store(v, p, (i % 32) * 8, Width::U64);
            let _ = f.load(p, (i % 32) * 8, Width::U64);
        }
        f.free(p);
        f.ret(None);
        f.finish();
        mb.finish()
    };
    let shore = Machine::new(compile(&build(), Scheme::Shore).unwrap(), shore_cfg())
        .run(1_000_000)
        .unwrap()
        .stats
        .total_cycles();
    let full = Machine::new(
        compile(&build(), Scheme::Hwst128Tchk).unwrap(),
        SafetyConfig::default(),
    )
    .run(1_000_000)
    .unwrap()
    .stats
    .total_cycles();
    let base = Machine::new(
        compile(&build(), Scheme::None).unwrap(),
        SafetyConfig::baseline(),
    )
    .run(1_000_000)
    .unwrap()
    .stats
    .total_cycles();
    assert!(base < shore, "spatial checks are not free");
    assert!(shore < full, "temporal safety costs more than spatial-only");
}

#[test]
fn shore_agrees_with_baseline_on_correct_programs() {
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let p = f.malloc_bytes(64);
    let mut acc = f.konst(0);
    for i in 0..8i64 {
        let v = f.konst(i * 7);
        f.store(v, p, i * 8, Width::U64);
        let r = f.load(p, i * 8, Width::U64);
        acc = f.bin(hwst_compiler::ir::BinOp::Add, acc, r);
    }
    f.free(p);
    f.ret(Some(acc));
    f.finish();
    let m = mb.finish();
    let shore = run_shore(&m).unwrap();
    let base = Machine::new(compile(&m, Scheme::None).unwrap(), SafetyConfig::baseline())
        .run(1_000_000)
        .unwrap();
    assert_eq!(shore.code, base.code);
}
