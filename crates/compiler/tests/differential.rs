//! Differential property test: randomly generated *well-formed* pointer
//! programs must (a) never trap under any scheme — no false positives —
//! and (b) produce identical outputs and exit codes across all four
//! schemes — instrumentation must be semantically transparent.

use hwst_compiler::ir::{BinOp, Width};
use hwst_compiler::{compile, FuncBuilder, ModuleBuilder, Scheme};
use hwst_sim::{Machine, SafetyConfig};
use proptest::prelude::*;

/// One generated program action. All indices are taken modulo the live
/// state at build time, so any sequence is well-formed by construction.
#[derive(Debug, Clone)]
enum Act {
    /// Allocate a buffer of 8..=256 bytes.
    Alloc(u8),
    /// Store `val` at a fraction of a live buffer's size.
    Store { buf: u8, frac: u8, val: i8 },
    /// Load from a fraction of a live buffer and mix into the
    /// accumulator.
    Load { buf: u8, frac: u8 },
    /// Derived pointer: gep into a buffer, then store through it.
    GepStore { buf: u8, frac: u8, val: i8 },
    /// Round-trip a pointer through memory, then use it.
    PtrRoundTrip { buf: u8, frac: u8 },
    /// Pass a pointer to the helper, which writes through it.
    CallPoke { buf: u8, frac: u8 },
    /// Free the oldest live buffer (if more than one remains).
    FreeOldest,
    /// Pure arithmetic on the accumulator.
    Arith { op: u8, imm: i16 },
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        (any::<u8>()).prop_map(Act::Alloc),
        (any::<u8>(), any::<u8>(), any::<i8>()).prop_map(|(buf, frac, val)| Act::Store {
            buf,
            frac,
            val
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(buf, frac)| Act::Load { buf, frac }),
        (any::<u8>(), any::<u8>(), any::<i8>()).prop_map(|(buf, frac, val)| Act::GepStore {
            buf,
            frac,
            val
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(buf, frac)| Act::PtrRoundTrip { buf, frac }),
        (any::<u8>(), any::<u8>()).prop_map(|(buf, frac)| Act::CallPoke { buf, frac }),
        Just(Act::FreeOldest),
        (any::<u8>(), any::<i16>()).prop_map(|(op, imm)| Act::Arith { op, imm }),
    ]
}

/// In-bounds 8-byte-slot offset for a buffer of `size` bytes.
fn slot_offset(size: u64, frac: u8) -> i64 {
    let slots = size / 8;
    ((frac as u64 % slots) * 8) as i64
}

fn build(acts: &[Act]) -> hwst_compiler::ir::Module {
    let mut mb = ModuleBuilder::new();

    // poke(ptr, off): *(ptr+off) ^= 0x5a
    let mut f = mb.func("poke");
    let p = f.param(true);
    let off = f.param(false);
    let slot = f.gep(p, off);
    let v = f.load(slot, 0, Width::U64);
    let x = f.bin_imm(BinOp::Xor, v, 0x5a);
    f.store(x, slot, 0, Width::U64);
    f.ret(None);
    f.finish();

    let mut f = mb.func("main");
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    // The pointer round-trip cell.
    let cell = f.malloc_bytes(8);

    // Live buffers: (VarId, size). Start with one so indices resolve.
    let first = f.malloc_bytes(64);
    let mut bufs: Vec<(hwst_compiler::ir::VarId, u64)> = vec![(first, 64)];

    let mix = |f: &mut FuncBuilder<'_>, acc, v| {
        let a = f.local_get(acc);
        let m = f.bin(BinOp::Add, a, v);
        let m = f.bin_imm(BinOp::And, m, 0xffff);
        f.local_set(acc, m);
    };

    for act in acts {
        match *act {
            Act::Alloc(s) => {
                if bufs.len() < 12 {
                    let size = 8 + (s as u64 % 32) * 8;
                    let b = f.malloc_bytes(size);
                    bufs.push((b, size));
                }
            }
            Act::Store { buf, frac, val } => {
                let (b, size) = bufs[buf as usize % bufs.len()];
                let v = f.konst(val as i64);
                f.store(v, b, slot_offset(size, frac), Width::U64);
            }
            Act::Load { buf, frac } => {
                let (b, size) = bufs[buf as usize % bufs.len()];
                let v = f.load(b, slot_offset(size, frac), Width::U64);
                mix(&mut f, acc, v);
            }
            Act::GepStore { buf, frac, val } => {
                let (b, size) = bufs[buf as usize % bufs.len()];
                let o = f.konst(slot_offset(size, frac));
                let p = f.gep(b, o);
                let v = f.konst(val as i64);
                f.store(v, p, 0, Width::U64);
            }
            Act::PtrRoundTrip { buf, frac } => {
                let (b, size) = bufs[buf as usize % bufs.len()];
                f.store_ptr(b, cell, 0);
                let q = f.load_ptr(cell, 0);
                let v = f.load(q, slot_offset(size, frac), Width::U64);
                mix(&mut f, acc, v);
            }
            Act::CallPoke { buf, frac } => {
                let (b, size) = bufs[buf as usize % bufs.len()];
                let o = f.konst(slot_offset(size, frac));
                f.call_void("poke", &[b, o]);
            }
            Act::FreeOldest => {
                if bufs.len() > 1 {
                    let (b, _) = bufs.remove(0);
                    f.free(b);
                }
            }
            Act::Arith { op, imm } => {
                let a = f.local_get(acc);
                let v = match op % 4 {
                    0 => f.bin_imm(BinOp::Add, a, imm as i64),
                    1 => f.bin_imm(BinOp::Xor, a, imm as i64),
                    2 => f.bin_imm(BinOp::Mul, a, (imm as i64) | 1),
                    _ => f.bin_imm(BinOp::Srl, a, (imm as i64 & 7) + 1),
                };
                let v = f.bin_imm(BinOp::And, v, 0xffff);
                f.local_set(acc, v);
            }
        }
    }
    for (b, _) in bufs {
        f.free(b);
    }
    f.free(cell);
    let r = f.local_get(acc);
    f.print_u64(r);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

fn config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None | Scheme::Sbcets => SafetyConfig::baseline(),
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => SafetyConfig::default(),
        Scheme::Shore => SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..SafetyConfig::default()
        },
        Scheme::RvCure => SafetyConfig::hwst128_no_tchk(),
        Scheme::HeapSafe => SafetyConfig::default(),
        Scheme::L4Pointer | Scheme::CryptSan => SafetyConfig::baseline(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schemes_are_semantically_transparent(
        acts in prop::collection::vec(act_strategy(), 1..60)
    ) {
        let module = build(&acts);
        let mut results = Vec::new();
        for scheme in [
            Scheme::None,
            Scheme::Sbcets,
            Scheme::Hwst128,
            Scheme::Hwst128Tchk,
            Scheme::Shore,
            Scheme::RvCure,
            Scheme::L4Pointer,
            Scheme::CryptSan,
            Scheme::HeapSafe,
        ] {
            let prog = compile(&module, scheme).expect("compiles");
            let exit = Machine::new(prog, config_for(scheme))
                .run(20_000_000)
                .unwrap_or_else(|t| {
                    panic!("false positive under {scheme}: {t}\nacts: {acts:?}")
                });
            results.push((scheme.label(), exit.code, exit.output));
        }
        for w in results.windows(2) {
            prop_assert_eq!(
                (&w[0].1, &w[0].2),
                (&w[1].1, &w[1].2),
                "{} and {} disagree",
                w[0].0,
                w[1].0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer preserves semantics under every scheme.
    #[test]
    fn optimizer_is_semantics_preserving(
        acts in prop::collection::vec(act_strategy(), 1..40)
    ) {
        use hwst_compiler::opt::optimize;
        let module = build(&acts);
        let optimized = optimize(module.clone());
        for scheme in Scheme::ALL {
            let run = |m: &hwst_compiler::ir::Module| {
                let prog = compile(m, scheme).expect("compiles");
                Machine::new(prog, config_for(scheme))
                    .run(20_000_000)
                    .unwrap_or_else(|t| panic!("trap under {scheme}: {t}"))
            };
            let a = run(&module);
            let b = run(&optimized);
            prop_assert_eq!(a.code, b.code, "exit codes differ under {}", scheme);
            prop_assert_eq!(a.output, b.output, "output differs under {}", scheme);
        }
    }
}
