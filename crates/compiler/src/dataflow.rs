//! Control-flow graph utilities and a generic forward dataflow solver.
//!
//! This is the analysis substrate for the static-safety passes: the
//! redundant-check eliminator ([`crate::rce`]), the `hwst-lint`
//! diagnostics pass ([`crate::lint`]) and the metadata-completeness
//! verifier ([`crate::verify`]). It provides:
//!
//! * [`Cfg`] — successor/predecessor maps and a reverse postorder over
//!   the reachable blocks of a [`Function`],
//! * [`Dominators`] — immediate-dominator tree (Cooper–Harvey–Kennedy),
//! * [`solve_forward`] — an iterative forward fixpoint over any
//!   [`ForwardAnalysis`] lattice, with *must* (intersection) semantics
//!   expressed by the analysis itself.
//!
//! Unreachable blocks are deliberately excluded from the RPO and carry
//! no facts: every consumer must treat "no fact" as "don't touch".

use crate::ir::{BinOp, Function, Inst, Terminator, VarId};
use std::collections::HashMap;

/// Successors of a terminator, in evaluation order.
pub fn successors(term: &Terminator) -> Vec<usize> {
    match *term {
        Terminator::Ret { .. } => vec![],
        Terminator::Jmp(t) => vec![t.0 as usize],
        Terminator::Br { then_, else_, .. } => {
            if then_ == else_ {
                vec![then_.0 as usize]
            } else {
                vec![then_.0 as usize, else_.0 as usize]
            }
        }
    }
}

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor block indices, per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices, per block (only reachable edges).
    pub preds: Vec<Vec<usize>>,
    /// Reachable blocks in reverse postorder (entry first).
    pub rpo: Vec<usize>,
    /// `rpo_pos[b]` = position of block `b` in [`Cfg::rpo`], or `None`
    /// if `b` is unreachable from the entry.
    pub rpo_pos: Vec<Option<usize>>,
}

impl Cfg {
    /// Builds the CFG of `f` (block 0 is the entry).
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let succs: Vec<Vec<usize>> = f.blocks.iter().map(|b| successors(&b.term)).collect();

        // Depth-first postorder from the entry; unreachable blocks are
        // left out entirely.
        let mut post = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        if n > 0 {
            // Iterative DFS with an explicit "how many successors tried"
            // counter so deep CFGs cannot overflow the stack.
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            seen[0] = true;
            while let Some(top) = stack.last_mut() {
                let (b, next) = *top;
                if next < succs[b].len() {
                    top.1 += 1;
                    let s = succs[b][next];
                    if !seen[s] {
                        seen[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_pos = vec![None; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = Some(i);
        }

        let mut preds = vec![Vec::new(); n];
        for &b in &rpo {
            for &s in &succs[b] {
                preds[s].push(b);
            }
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.rpo_pos.get(b).copied().flatten().is_some()
    }
}

/// Immediate-dominator tree over the reachable blocks of a [`Cfg`].
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b`; the entry is its
    /// own idom, unreachable blocks have `None`.
    idom: Vec<Option<usize>>,
}

impl Dominators {
    /// Cooper–Harvey–Kennedy iterative dominator computation.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.succs.len();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if cfg.rpo.is_empty() {
            return Dominators { idom };
        }
        let entry = cfg.rpo[0];
        idom[entry] = Some(entry);

        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
            // Walk both fingers up the tree, ordering by RPO position.
            // Both fingers are reachable, already-processed blocks, so
            // the lookups cannot fail; if that invariant were ever
            // broken, degrade to one finger rather than panic.
            while a != b {
                let (Some(pa), Some(pb)) = (cfg.rpo_pos[a], cfg.rpo_pos[b]) else {
                    return a.min(b);
                };
                if pa > pb {
                    let Some(up) = idom[a] else { return b };
                    a = up;
                } else {
                    let Some(up) = idom[b] else { return a };
                    b = up;
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in &cfg.preds[b] {
                    if idom[p].is_none() {
                        continue; // not yet processed this round
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom.get(b).copied().flatten() {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates
    /// itself). Unreachable blocks dominate nothing and are dominated
    /// by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied().flatten().is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// A forward dataflow problem over per-instruction transfer functions.
///
/// The meet operator defines the analysis kind: intersection for *must*
/// problems (available checks), union for *may* problems (freed
/// pointers). Facts attach to block entries; [`solve_forward`] folds
/// [`ForwardAnalysis::transfer`] over each block's instructions to
/// produce block outputs and iterates to a fixpoint in reverse
/// postorder.
pub trait ForwardAnalysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// The fact holding at function entry.
    fn entry_fact(&self) -> Self::Fact;

    /// Meet (join-point combine) of `other` into `into`.
    fn meet(&self, into: &mut Self::Fact, other: &Self::Fact);

    /// Applies one instruction's effect to `fact`.
    fn transfer(&self, inst: &Inst, fact: &mut Self::Fact);

    /// Applies a block terminator's effect to `fact` (after every
    /// instruction of block `block`). The default is a no-op; the
    /// redundant-check eliminator uses this to generate facts for the
    /// HWST128 inline temporal-check pattern, whose "check happened"
    /// point is the pattern header's branch.
    fn transfer_term(&self, block: usize, term: &Terminator, fact: &mut Self::Fact) {
        let _ = (block, term, fact);
    }

    /// Refines the fact flowing along the CFG edge `from → to` (applied
    /// after [`ForwardAnalysis::transfer_term`], to a per-edge copy of
    /// the block output, before the meet at `to`). The default is a
    /// no-op; the value-range analysis ([`crate::bounds`]) uses this to
    /// sharpen intervals from branch conditions (`i < n` on the taken
    /// edge), which is what recovers loop trip counts after widening.
    fn transfer_edge(&self, from: usize, to: usize, term: &Terminator, fact: &mut Self::Fact) {
        let _ = (from, to, term, fact);
    }

    /// Widening: combines the previous block-entry iterate `old` into
    /// the freshly computed `new`. Implementations must guarantee the
    /// result is an upper bound of both arguments and that repeated
    /// application stabilizes (e.g. snap strictly-growing interval
    /// bounds to ±∞); otherwise infinite-height lattices (intervals
    /// over `i64`) would climb forever around loops. The default keeps
    /// `new` unchanged, which is correct for the finite-height fact
    /// lattices the check analyses use.
    fn widen(&self, old: &Self::Fact, new: &mut Self::Fact) {
        let _ = old;
        let _ = new;
    }
}

/// Block-entry facts computed by [`solve_forward`]; `None` means the
/// block is unreachable (no fact — consumers must not act on it).
pub type BlockFacts<F> = Vec<Option<F>>;

/// Runs `analysis` to fixpoint over `f` and returns the fact holding at
/// each block *entry*.
pub fn solve_forward<A: ForwardAnalysis>(
    f: &Function,
    cfg: &Cfg,
    analysis: &A,
) -> BlockFacts<A::Fact> {
    let n = f.blocks.len();
    let mut input: BlockFacts<A::Fact> = vec![None; n];
    let mut output: BlockFacts<A::Fact> = vec![None; n];
    if cfg.rpo.is_empty() {
        return input;
    }
    let entry = cfg.rpo[0];

    // Widening points: loop heads, i.e. targets of a retreating edge
    // in reverse postorder. Widening only there preserves precision on
    // straight-line and branch-join blocks (in particular the interval
    // refinements [`ForwardAnalysis::transfer_edge`] installs on a loop
    // body's entry edge), while still cutting every cycle so the
    // iteration terminates on infinite-height lattices.
    let mut widen_at = vec![false; n];
    for &b in &cfg.rpo {
        for &p in &cfg.preds[b] {
            if cfg.rpo_pos[p] >= cfg.rpo_pos[b] {
                widen_at[b] = true;
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            // in[b] = entry fact (for the entry block) met with the
            // outputs of all predecessors that already have one.
            let mut in_fact = if b == entry {
                Some(analysis.entry_fact())
            } else {
                None
            };
            for &p in &cfg.preds[b] {
                if let Some(out_p) = &output[p] {
                    let mut edge_fact = out_p.clone();
                    analysis.transfer_edge(p, b, &f.blocks[p].term, &mut edge_fact);
                    match &mut in_fact {
                        None => in_fact = Some(edge_fact),
                        Some(acc) => analysis.meet(acc, &edge_fact),
                    }
                }
            }
            let Some(mut in_fact) = in_fact else {
                continue; // no information yet (e.g. loop not entered)
            };
            if widen_at[b] {
                if let Some(old) = &input[b] {
                    analysis.widen(old, &mut in_fact);
                }
            }

            let mut out_fact = in_fact.clone();
            for inst in &f.blocks[b].insts {
                analysis.transfer(inst, &mut out_fact);
            }
            analysis.transfer_term(b, &f.blocks[b].term, &mut out_fact);

            if input[b].as_ref() != Some(&in_fact) {
                input[b] = Some(in_fact);
                changed = true;
            }
            if output[b].as_ref() != Some(&out_fact) {
                output[b] = Some(out_fact);
                changed = true;
            }
        }
    }
    input
}

/// Every variable an instruction writes. [`Inst::def`] reports the
/// primary destination only; `MallocMeta` and `FrameLock` additionally
/// write their key/lock receivers.
pub fn inst_defs(i: &Inst) -> Vec<VarId> {
    match *i {
        Inst::MallocMeta { dst, key, lock, .. } => vec![dst, key, lock],
        Inst::FrameLock { key, lock } => vec![key, lock],
        _ => i.def().into_iter().collect(),
    }
}

/// A single-assignment def map with constant/offset resolution — the
/// value-tracking substrate shared by the check eliminator, the linter
/// and the completeness verifier.
///
/// [`DefMap::build`] returns `None` when any variable is written more
/// than once (hand-built IR may reuse registers); every consumer treats
/// that as "cannot reason about this function" and leaves it alone.
/// Builder- and instrumentation-produced IR always uses fresh variables,
/// so the bail-out never triggers on the compiler's own output.
#[derive(Debug)]
pub struct DefMap {
    def: HashMap<VarId, Inst>,
}

impl DefMap {
    /// Builds the map, or `None` if `f` is not single-assignment.
    pub fn build(f: &Function) -> Option<DefMap> {
        let mut def: HashMap<VarId, Inst> = HashMap::new();
        let mut written: HashMap<VarId, u32> = HashMap::new();
        for &p in &f.params {
            *written.entry(p).or_insert(0) += 1;
        }
        for b in &f.blocks {
            for i in &b.insts {
                for d in inst_defs(i) {
                    *written.entry(d).or_insert(0) += 1;
                    def.insert(d, i.clone());
                }
            }
        }
        if written.values().any(|&c| c > 1) {
            return None;
        }
        Some(DefMap { def })
    }

    /// The defining instruction of `v`, if any (parameters have none).
    pub fn def(&self, v: VarId) -> Option<&Inst> {
        self.def.get(&v)
    }

    /// Follows value-preserving copies (`x = y + 0`).
    pub fn canon(&self, mut v: VarId) -> VarId {
        while let Some(Inst::BinImm {
            op: BinOp::Add,
            lhs,
            imm: 0,
            ..
        }) = self.def.get(&v)
        {
            v = *lhs;
        }
        v
    }

    /// The SRF root of a pointer: strips derived-pointer arithmetic
    /// (`Gep`/`GepImm`) and copies. Derived pointers inherit their
    /// base's metadata verbatim, so a temporal check of the root covers
    /// every pointer with the same root.
    pub fn temporal_root(&self, mut v: VarId) -> VarId {
        loop {
            match self.def.get(&v) {
                Some(Inst::Gep { base, .. }) | Some(Inst::GepImm { base, .. }) => v = *base,
                Some(Inst::BinImm {
                    op: BinOp::Add,
                    lhs,
                    imm: 0,
                    ..
                }) => v = *lhs,
                _ => return v,
            }
        }
    }

    /// Resolves a value to `(root, constant byte delta)` by stripping
    /// constant pointer arithmetic: `GepImm`, constant-operand `Gep`,
    /// and constant `BinImm` adds.
    pub fn spatial_anchor(&self, mut v: VarId) -> (VarId, i64) {
        let mut delta = 0i64;
        loop {
            match self.def.get(&v) {
                Some(Inst::GepImm { base, imm, .. }) => {
                    delta = delta.wrapping_add(*imm);
                    v = *base;
                }
                Some(Inst::BinImm {
                    op: BinOp::Add,
                    lhs,
                    imm,
                    ..
                }) => {
                    delta = delta.wrapping_add(*imm);
                    v = *lhs;
                }
                Some(Inst::Gep { base, offset, .. }) => match self.const_val(*offset) {
                    Some(k) => {
                        delta = delta.wrapping_add(k);
                        v = *base;
                    }
                    None => return (v, delta),
                },
                _ => return (v, delta),
            }
        }
    }

    /// The constant value of `v`, if its (copy-resolved) def is `Const`.
    pub fn const_val(&self, v: VarId) -> Option<i64> {
        match self.def.get(&self.canon(v)) {
            Some(Inst::Const { value, .. }) => Some(*value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Block, BlockId, Width};

    fn func(blocks: Vec<Block>) -> Function {
        Function {
            name: "f".into(),
            params: vec![],
            param_is_ptr: vec![],
            num_vars: 32,
            num_locals: 0,
            blocks,
        }
    }

    fn block(term: Terminator) -> Block {
        Block {
            insts: vec![],
            term,
        }
    }

    fn konst(dst: u32) -> Inst {
        Inst::Const {
            dst: VarId(dst),
            value: 1,
        }
    }

    /// 0 → {1, 2} → 3 (the classic diamond).
    fn diamond() -> Function {
        func(vec![
            Block {
                insts: vec![konst(0)],
                term: Terminator::Br {
                    cond: VarId(0),
                    then_: BlockId(1),
                    else_: BlockId(2),
                },
            },
            block(Terminator::Jmp(BlockId(3))),
            block(Terminator::Jmp(BlockId(3))),
            block(Terminator::Ret { value: None }),
        ])
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(0), None); // entry
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        // The join is dominated by the fork, not by either arm.
        assert_eq!(dom.idom(3), Some(0));
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert!(dom.dominates(3, 3)); // reflexive
    }

    #[test]
    fn loop_dominators_and_preds() {
        // 0 → 1 ⇄ 2, 1 → 3: a natural loop with backedge 2 → 1.
        let f = func(vec![
            Block {
                insts: vec![konst(0)],
                term: Terminator::Jmp(BlockId(1)),
            },
            block(Terminator::Br {
                cond: VarId(0),
                then_: BlockId(2),
                else_: BlockId(3),
            }),
            block(Terminator::Jmp(BlockId(1))),
            block(Terminator::Ret { value: None }),
        ]);
        let cfg = Cfg::new(&f);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert_eq!(dom.idom(3), Some(1));
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(2, 3));
        let mut preds1 = cfg.preds[1].clone();
        preds1.sort_unstable();
        assert_eq!(preds1, vec![0, 2]); // entry edge + backedge
    }

    #[test]
    fn unreachable_blocks_carry_no_facts() {
        // Block 1 is unreachable; block 2 is the real successor.
        let f = func(vec![
            block(Terminator::Jmp(BlockId(2))),
            block(Terminator::Jmp(BlockId(2))),
            block(Terminator::Ret { value: None }),
        ]);
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(1), None);
        assert!(!dom.dominates(0, 1));
        assert!(!dom.dominates(1, 2));
        // Unreachable predecessors must not pollute the join: block 2
        // sees only block 0.
        assert_eq!(cfg.preds[2], vec![0]);

        struct CountInsts;
        impl ForwardAnalysis for CountInsts {
            type Fact = usize;
            fn entry_fact(&self) -> usize {
                0
            }
            fn meet(&self, into: &mut usize, other: &usize) {
                *into = (*into).min(*other);
            }
            fn transfer(&self, _inst: &Inst, fact: &mut usize) {
                *fact += 1;
            }
        }
        let facts = solve_forward(&f, &cfg, &CountInsts);
        assert!(facts[0].is_some());
        assert!(facts[1].is_none(), "unreachable block must have no fact");
        assert!(facts[2].is_some());
    }

    #[test]
    fn solver_meets_at_joins() {
        // Diamond where one arm "kills" (adds 100): must-meet keeps min.
        struct MinPath;
        impl ForwardAnalysis for MinPath {
            type Fact = u64;
            fn entry_fact(&self) -> u64 {
                0
            }
            fn meet(&self, into: &mut u64, other: &u64) {
                *into = (*into).min(*other);
            }
            fn transfer(&self, inst: &Inst, fact: &mut u64) {
                if let Inst::Const { value, .. } = inst {
                    *fact += *value as u64;
                }
            }
        }
        let mut f = diamond();
        f.blocks[1].insts.push(Inst::Const {
            dst: VarId(1),
            value: 100,
        });
        let cfg = Cfg::new(&f);
        let facts = solve_forward(&f, &cfg, &MinPath);
        // Entry contributes 1 on both arms; arm 1 adds 100 — the join
        // must keep the pessimistic (min) value.
        assert_eq!(facts[3], Some(1));
    }

    #[test]
    fn defmap_resolution() {
        let f = func(vec![Block {
            insts: vec![
                Inst::Const {
                    dst: VarId(0),
                    value: 64,
                },
                Inst::Malloc {
                    dst: VarId(1),
                    size: VarId(0),
                },
                Inst::GepImm {
                    dst: VarId(2),
                    base: VarId(1),
                    imm: 8,
                },
                Inst::BinImm {
                    op: BinOp::Add,
                    dst: VarId(3),
                    lhs: VarId(2),
                    imm: 0,
                },
                Inst::Gep {
                    dst: VarId(4),
                    base: VarId(3),
                    offset: VarId(0),
                },
                Inst::Load {
                    dst: VarId(5),
                    addr: VarId(4),
                    offset: 0,
                    width: Width::U64,
                },
            ],
            term: Terminator::Ret { value: None },
        }]);
        let defs = DefMap::build(&f).expect("single assignment");
        assert_eq!(defs.canon(VarId(3)), VarId(2));
        assert_eq!(defs.temporal_root(VarId(4)), VarId(1));
        assert_eq!(defs.spatial_anchor(VarId(4)), (VarId(1), 72));
        assert_eq!(defs.const_val(VarId(0)), Some(64));
        assert_eq!(defs.const_val(VarId(4)), None);

        // A second write to v2 must fail the build.
        let mut g = f;
        g.blocks[0].insts.push(Inst::Const {
            dst: VarId(2),
            value: 9,
        });
        assert!(DefMap::build(&g).is_none());
    }
}
