//! The instrumentation passes: `None`, SBCETS (software), HWST128
//! (hardware metadata, software key check) and HWST128+`tchk`.
//!
//! The pass rewrites each function so that
//!
//! * pointer **creation** sites bind metadata (software companion
//!   variables, hardware `bndrs`/`bndrt`, or both),
//! * pointer **propagation** sites move metadata (software copies and
//!   shadow loads/stores, or hardware `sbd*`/`lbd*`; register-to-register
//!   propagation is free in hardware),
//! * pointer **dereference** sites check metadata (software compare+
//!   branch sequences, or hardware bounded accesses and `tchk`),
//!
//! exactly mirroring which work each scheme of the paper's Fig. 4 does in
//! software versus hardware.

use crate::analysis::PointerInfo;
use crate::ir::{
    BinOp, Block, BlockId, Function, Global, Inst, MetaField, Module, Terminator, VarId, Width,
};
use std::collections::HashMap;

/// The instrumentation scheme (the paper's Fig. 4 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No instrumentation: the uninstrumented baseline.
    None,
    /// SoftBoundCETS: every metadata operation in software, uncompressed
    /// 256-bit metadata in shadow memory.
    Sbcets,
    /// HWST128 without `tchk`: hardware metadata propagation and spatial
    /// checks, software key load + compare for temporal checks.
    Hwst128,
    /// Full HWST128: hardware `tchk` with the keybuffer.
    Hwst128Tchk,
    /// SHORE (DAC 2021), the paper's predecessor: hardware *spatial*
    /// safety only — no temporal metadata, checks or frame locks. Not
    /// part of the paper's Fig. 4 series ([`Scheme::ALL`] stays the
    /// published four); used by the spatial-only ablation.
    Shore,
    /// RV-CURE (arXiv:2308.02945) zoo model: a full-pipeline
    /// capability-tag architecture. Modeled as hardware metadata
    /// propagation with tagged checks (`tchk`) but *without* the
    /// keybuffer — RV-CURE validates capabilities inline rather than
    /// caching lock words. Not in [`Scheme::ALL`]; see DESIGN.md §4l.
    RvCure,
    /// L4 Pointer (arXiv:2302.06819) zoo model: software-only 128-bit
    /// wide pointers. Metadata travels *with* the pointer, so checks
    /// are inline compare+branch sequences (no runtime helper calls)
    /// and propagation is plain word traffic. Not in [`Scheme::ALL`].
    L4Pointer,
    /// CryptSan (arXiv:2202.08669) zoo model: PAC-style pointer
    /// signing. Authentication happens on dereference and catches
    /// temporal reuse (dangling signatures) but direct in-bounds-object
    /// overflows keep a valid signature, so no spatial checks are
    /// emitted. Detection of spatial bugs is probabilistic at the
    /// Juliet layer. Not in [`Scheme::ALL`].
    CryptSan,
    /// HeapSafe (arXiv:2105.08712) zoo model: heap-only reference
    /// tagging. Hardware-assisted binds/checks exist only for `malloc`
    /// results; stack and global pointers are never bound, so those
    /// CWEs are missed by construction. Not in [`Scheme::ALL`].
    HeapSafe,
}

impl Scheme {
    /// All schemes, in Fig. 4 order.
    pub const ALL: [Scheme; 4] = [
        Scheme::None,
        Scheme::Sbcets,
        Scheme::Hwst128,
        Scheme::Hwst128Tchk,
    ];

    /// The four related-work designs modeled by `hwst-zoo` (experiment
    /// Z1/Z2). Deliberately *not* part of [`Scheme::ALL`] so every
    /// Fig. 4/5/6 artifact keeps its published shape.
    pub const ZOO: [Scheme; 4] = [
        Scheme::RvCure,
        Scheme::L4Pointer,
        Scheme::CryptSan,
        Scheme::HeapSafe,
    ];

    /// Display label used by the benchmark harness.
    pub const fn label(self) -> &'static str {
        match self {
            Scheme::None => "baseline",
            Scheme::Sbcets => "SBCETS",
            Scheme::Hwst128 => "HWST128",
            Scheme::Hwst128Tchk => "HWST128_tchk",
            Scheme::Shore => "SHORE",
            Scheme::RvCure => "RV-CURE",
            Scheme::L4Pointer => "L4Pointer",
            Scheme::CryptSan => "CryptSan",
            Scheme::HeapSafe => "HeapSafe",
        }
    }

    /// Whether the scheme uses the HWST128 hardware (SRF & friends).
    pub const fn uses_hardware(self) -> bool {
        matches!(
            self,
            Scheme::Hwst128
                | Scheme::Hwst128Tchk
                | Scheme::Shore
                | Scheme::RvCure
                | Scheme::HeapSafe
        )
    }

    /// Whether the scheme carries temporal (key/lock) metadata at all.
    pub const fn temporal_safety(self) -> bool {
        !matches!(self, Scheme::None | Scheme::Shore)
    }

    /// Whether only heap allocations are bound (HeapSafe's defining
    /// restriction: stack and global pointers carry no metadata, so
    /// stack/global CWEs are unreachable by construction).
    pub const fn heap_only(self) -> bool {
        matches!(self, Scheme::HeapSafe)
    }

    /// Whether software key/lock companion variables are carried.
    const fn sw_temporal(self) -> bool {
        matches!(
            self,
            Scheme::Sbcets | Scheme::Hwst128 | Scheme::L4Pointer | Scheme::CryptSan
        )
    }

    /// Whether software base/bound/key/lock companions are carried at
    /// all (every non-hardware scheme that instruments).
    const fn sw_companions(self) -> bool {
        matches!(self, Scheme::Sbcets | Scheme::L4Pointer | Scheme::CryptSan)
    }

    /// Whether dereference checks are *inline* compare+branch sequences
    /// rather than runtime helper calls (L4 Pointer carries metadata in
    /// the wide pointer itself; CryptSan's PAC authentication is an
    /// inline instruction, not a call).
    const fn inline_sw_checks(self) -> bool {
        matches!(self, Scheme::L4Pointer | Scheme::CryptSan)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shadow offset baked into *software* shadow-address computation (the
/// hardware reads it from the CSR; software SBCETS must embed it).
/// Matches `hwst_mem::MemoryLayout::default().shadow_offset`.
const SHADOW_OFFSET: i64 = 0x1_0000_0000;

/// Name of the metadata argument-transfer area (the software shadow
/// stack for call metadata).
pub const META_ARGS_GLOBAL: &str = "__meta_args";
/// Name of the 8-byte scratch container used by hardware schemes to
/// extract key/lock from the SRF through shadow memory.
pub const SCRATCH_GLOBAL: &str = "__hwst_scratch";
/// SBCETS runtime spatial-check helper (a real function call at `-O0`).
pub const SPATIAL_CHECK_FN: &str = "__sbcets_spatial_check";
/// SBCETS runtime temporal-check helper.
pub const TEMPORAL_CHECK_FN: &str = "__sbcets_temporal_check";
/// SBCETS runtime metadata-load helper (shadow-map lookup: a function
/// call at `-O0`, writing the four fields into `__meta_tmp`).
pub const META_LOAD_FN: &str = "__sbcets_metadata_load";
/// SBCETS runtime metadata-store helper.
pub const META_STORE_FN: &str = "__sbcets_metadata_store";
/// Scratch record the metadata-load helper fills (base/bound/key/lock).
pub const META_TMP_GLOBAL: &str = "__meta_tmp";

/// Software companion metadata variables for one pointer variable.
#[derive(Debug, Clone, Copy)]
struct Companions {
    base: VarId,
    bound: VarId,
    key: VarId,
    lock: VarId,
}

/// One dereference check the instrumenter skipped on the strength of a
/// bounds-proof witness ([`crate::bounds::Witness`]). The site is named
/// by its block in the *instrumented* function plus the dereference's
/// ordinal among that block's dereference instructions — NOT a raw
/// instruction index, because redundant-check elimination later deletes
/// check instructions (shifting indices) but never deletes a
/// dereference, so the ordinal stays valid all the way down to the
/// lowering plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedCheck {
    /// Function name.
    pub func: String,
    /// Block index of the dereference in the instrumented function.
    pub block: usize,
    /// Ordinal of the dereference among the block's `Load` / `Store` /
    /// `LoadPtr` / `StorePtr` instructions (0-based).
    pub deref: usize,
    /// Index into the witness list that justified the skip.
    pub witness: usize,
}

/// Is `inst` one of the four dereference forms a [`SkippedCheck`]
/// ordinal counts over?
pub fn is_deref(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Load { .. } | Inst::Store { .. } | Inst::LoadPtr { .. } | Inst::StorePtr { .. }
    )
}

/// Instruments `module` for `scheme`.
pub fn instrument(module: &Module, info: &PointerInfo, scheme: Scheme) -> Module {
    instrument_with_bounds(module, info, scheme, None).0
}

/// [`instrument`], additionally skipping the per-dereference checks the
/// bounds pass proved unnecessary. Every skip is recorded with the
/// witness index that justified it; callers enabling this MUST forward
/// the skips and witnesses to [`crate::verify::verify_with`] (and, for
/// binary validation, to the `binval` elimination plan) — a skip
/// without a valid witness is a lost detection.
///
/// Per-scheme elimination policy (see DESIGN.md §4h): the hardware
/// schemes keep spatial safety on the bounded machine accesses
/// regardless, so a witness skips only the temporal check (`tchk` /
/// the inline software key compare). Under SBCETS both software checks
/// are skipped, but only for non-heap provenance — a heap pointer may
/// be NULL (failed allocation), and the spatial check is what catches
/// that dereference.
pub fn instrument_with_bounds(
    module: &Module,
    info: &PointerInfo,
    scheme: Scheme,
    bounds: Option<&crate::bounds::BoundsOutcome>,
) -> (Module, Vec<SkippedCheck>) {
    if scheme == Scheme::None {
        return (module.clone(), Vec::new());
    }
    let mut out = Module {
        funcs: Vec::new(),
        globals: module.globals.clone(),
    };
    // Reserve the transfer area and scratch container.
    out.globals.push(Global {
        name: META_ARGS_GLOBAL.into(),
        size: 8 * 40, // 8 slots x (ptr copy + base/bound/key/lock)
        init: vec![],
    });
    out.globals.push(Global {
        name: SCRATCH_GLOBAL.into(),
        size: 8,
        init: vec![],
    });
    out.globals.push(Global {
        name: META_TMP_GLOBAL.into(),
        size: 32,
        init: vec![],
    });
    let meta_args_id = crate::ir::GlobalId((out.globals.len() - 3) as u32);
    let scratch_id = crate::ir::GlobalId((out.globals.len() - 2) as u32);
    let meta_tmp_id = crate::ir::GlobalId((out.globals.len() - 1) as u32);

    let mut skips = Vec::new();
    for f in &module.funcs {
        // Per-scheme witness filter: SBCETS must keep the software
        // spatial check on heap pointers (NULL-malloc detection rides
        // on it); the hardware schemes keep spatial safety in the
        // bounded accesses and can drop the temporal check everywhere
        // a witness proves liveness.
        let proven: std::collections::BTreeMap<(usize, usize), usize> =
            match bounds.and_then(|b| b.proven_for(&f.name).map(|m| (b, m))) {
                Some((b, m)) => m
                    .iter()
                    .filter(|&(_, &wi)| scheme.uses_hardware() || !b.witnesses[wi].heap())
                    .map(|(&site, &wi)| (site, wi))
                    .collect(),
                None => Default::default(),
            };
        let mut rw = Rewriter::new(
            f,
            module,
            info,
            scheme,
            meta_args_id,
            scratch_id,
            meta_tmp_id,
        );
        rw.proven = proven;
        out.funcs.push(rw.run());
        skips.append(&mut rw.skips);
    }
    if scheme == Scheme::Sbcets {
        out.funcs.push(spatial_check_fn());
        out.funcs.push(temporal_check_fn());
        out.funcs.push(meta_load_fn(meta_tmp_id));
        out.funcs.push(meta_store_fn());
    }
    (out, skips)
}

/// `__sbcets_metadata_load(container)` — shadow-map lookup; leaves the
/// four uncompressed fields in `__meta_tmp`.
fn meta_load_fn(tmp: crate::ir::GlobalId) -> Function {
    use crate::ir::{Block, Terminator, Width};
    let container = VarId(0);
    let shifted = VarId(1);
    let offc = VarId(2);
    let saddr = VarId(3);
    let (b, bd, k, l) = (VarId(4), VarId(5), VarId(6), VarId(7));
    let tp = VarId(8);
    let mut insts = vec![
        Inst::BinImm {
            op: BinOp::Sll,
            dst: shifted,
            lhs: container,
            imm: 2,
        },
        Inst::Const {
            dst: offc,
            value: SHADOW_OFFSET,
        },
        Inst::Bin {
            op: BinOp::Add,
            dst: saddr,
            lhs: shifted,
            rhs: offc,
        },
    ];
    for (dst, off) in [(b, 0i64), (bd, 8), (k, 16), (l, 24)] {
        insts.push(Inst::Load {
            dst,
            addr: saddr,
            offset: off,
            width: Width::U64,
        });
    }
    insts.push(Inst::AddrOfGlobal {
        dst: tp,
        global: tmp,
    });
    for (src, off) in [(b, 0i64), (bd, 8), (k, 16), (l, 24)] {
        insts.push(Inst::Store {
            src,
            addr: tp,
            offset: off,
            width: Width::U64,
        });
    }
    Function {
        name: META_LOAD_FN.into(),
        params: vec![container],
        param_is_ptr: vec![false],
        num_vars: 9,
        num_locals: 0,
        blocks: vec![Block {
            insts,
            term: Terminator::Ret { value: None },
        }],
    }
}

/// `__sbcets_metadata_store(container, base, bound, key, lock)`.
fn meta_store_fn() -> Function {
    use crate::ir::{Block, Terminator, Width};
    let container = VarId(0);
    let (b, bd, k, l) = (VarId(1), VarId(2), VarId(3), VarId(4));
    let shifted = VarId(5);
    let offc = VarId(6);
    let saddr = VarId(7);
    let mut insts = vec![
        Inst::BinImm {
            op: BinOp::Sll,
            dst: shifted,
            lhs: container,
            imm: 2,
        },
        Inst::Const {
            dst: offc,
            value: SHADOW_OFFSET,
        },
        Inst::Bin {
            op: BinOp::Add,
            dst: saddr,
            lhs: shifted,
            rhs: offc,
        },
    ];
    for (src, off) in [(b, 0i64), (bd, 8), (k, 16), (l, 24)] {
        insts.push(Inst::Store {
            src,
            addr: saddr,
            offset: off,
            width: Width::U64,
        });
    }
    Function {
        name: META_STORE_FN.into(),
        params: vec![container, b, bd, k, l],
        param_is_ptr: vec![false; 5],
        num_vars: 8,
        num_locals: 0,
        blocks: vec![Block {
            insts,
            term: Terminator::Ret { value: None },
        }],
    }
}

/// `__sbcets_spatial_check(addr, base, bound, size)` — traps on
/// out-of-bounds. Runtime-library code: never itself instrumented.
fn spatial_check_fn() -> Function {
    use crate::ir::{Block, Terminator, Width};
    let (addr, base, bound, size) = (VarId(0), VarId(1), VarId(2), VarId(3));
    let below = VarId(4);
    let end = VarId(5);
    let above = VarId(6);
    let both = VarId(7);
    let unbound = VarId(8);
    let _ = Width::U64;
    Function {
        name: SPATIAL_CHECK_FN.into(),
        params: vec![addr, base, bound, size],
        param_is_ptr: vec![false; 4],
        num_vars: 9,
        num_locals: 0,
        blocks: vec![
            // Zero metadata means "unbound container" (SoftBound's
            // binary-compatibility rule): skip the check entirely.
            Block {
                insts: vec![
                    Inst::Bin {
                        op: BinOp::Or,
                        dst: both,
                        lhs: base,
                        rhs: bound,
                    },
                    Inst::BinImm {
                        op: BinOp::Eq,
                        dst: unbound,
                        lhs: both,
                        imm: 0,
                    },
                ],
                term: Terminator::Br {
                    cond: unbound,
                    then_: BlockId(4),
                    else_: BlockId(5),
                },
            },
            Block {
                insts: vec![Inst::AbortSpatial { addr, base, bound }],
                term: Terminator::Ret { value: None },
            },
            Block {
                insts: vec![
                    Inst::Bin {
                        op: BinOp::Add,
                        dst: end,
                        lhs: addr,
                        rhs: size,
                    },
                    Inst::Bin {
                        op: BinOp::Sltu,
                        dst: above,
                        lhs: bound,
                        rhs: end,
                    },
                ],
                term: Terminator::Br {
                    cond: above,
                    then_: BlockId(3),
                    else_: BlockId(4),
                },
            },
            Block {
                insts: vec![Inst::AbortSpatial { addr, base, bound }],
                term: Terminator::Ret { value: None },
            },
            Block {
                insts: vec![],
                term: Terminator::Ret { value: None },
            },
            Block {
                insts: vec![Inst::Bin {
                    op: BinOp::Sltu,
                    dst: below,
                    lhs: addr,
                    rhs: base,
                }],
                term: Terminator::Br {
                    cond: below,
                    then_: BlockId(1),
                    else_: BlockId(2),
                },
            },
        ],
    }
}

/// `__sbcets_temporal_check(key, lock)` — traps on a stale key; a zero
/// lock means "no temporal identity" and passes.
fn temporal_check_fn() -> Function {
    use crate::ir::{Block, Terminator, Width};
    let (key, lock) = (VarId(0), VarId(1));
    let zero = VarId(2);
    let has = VarId(3);
    let stored = VarId(4);
    let bad = VarId(5);
    Function {
        name: TEMPORAL_CHECK_FN.into(),
        params: vec![key, lock],
        param_is_ptr: vec![false; 2],
        num_vars: 6,
        num_locals: 0,
        blocks: vec![
            Block {
                insts: vec![
                    Inst::Const {
                        dst: zero,
                        value: 0,
                    },
                    Inst::Bin {
                        op: BinOp::Ne,
                        dst: has,
                        lhs: lock,
                        rhs: zero,
                    },
                ],
                term: Terminator::Br {
                    cond: has,
                    then_: BlockId(1),
                    else_: BlockId(3),
                },
            },
            Block {
                insts: vec![
                    Inst::Load {
                        dst: stored,
                        addr: lock,
                        offset: 0,
                        width: Width::U64,
                    },
                    Inst::Bin {
                        op: BinOp::Ne,
                        dst: bad,
                        lhs: stored,
                        rhs: key,
                    },
                ],
                term: Terminator::Br {
                    cond: bad,
                    then_: BlockId(2),
                    else_: BlockId(3),
                },
            },
            Block {
                insts: vec![Inst::AbortTemporal { key, lock, stored }],
                term: Terminator::Ret { value: None },
            },
            Block {
                insts: vec![],
                term: Terminator::Ret { value: None },
            },
        ],
    }
}

/// Per-function rewriter. Original block ids are preserved (indices
/// `0..N`); split-continuation and abort blocks are appended after them.
struct Rewriter<'a> {
    src: &'a Function,
    module: &'a Module,
    info: &'a PointerInfo,
    scheme: Scheme,
    meta_args: crate::ir::GlobalId,
    scratch: crate::ir::GlobalId,
    meta_tmp: crate::ir::GlobalId,
    next_var: u32,
    /// Output blocks; `0..src.blocks.len()` map 1:1 to source blocks.
    blocks: Vec<Option<Block>>,
    cur: usize,
    cur_insts: Vec<Inst>,
    companions: HashMap<VarId, Companions>,
    frame_grant: Option<(VarId, VarId)>,
    /// Source sites `(block, inst)` whose dereference check the bounds
    /// pass proved away (already filtered for this scheme), mapping to
    /// the justifying witness index.
    proven: std::collections::BTreeMap<(usize, usize), usize>,
    /// The source site currently being rewritten.
    cur_site: Option<(usize, usize)>,
    /// Checks actually skipped, in instrumented coordinates.
    skips: Vec<SkippedCheck>,
}

impl<'a> Rewriter<'a> {
    fn new(
        src: &'a Function,
        module: &'a Module,
        info: &'a PointerInfo,
        scheme: Scheme,
        meta_args: crate::ir::GlobalId,
        scratch: crate::ir::GlobalId,
        meta_tmp: crate::ir::GlobalId,
    ) -> Self {
        Rewriter {
            src,
            module,
            info,
            scheme,
            meta_args,
            scratch,
            meta_tmp,
            next_var: src.num_vars,
            blocks: vec![None; src.blocks.len()],
            cur: 0,
            cur_insts: Vec::new(),
            companions: HashMap::new(),
            frame_grant: None,
            proven: Default::default(),
            cur_site: None,
            skips: Vec::new(),
        }
    }

    fn fresh(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    fn emit(&mut self, i: Inst) {
        self.cur_insts.push(i);
    }

    fn konst(&mut self, v: i64) -> VarId {
        let dst = self.fresh();
        self.emit(Inst::Const { dst, value: v });
        dst
    }

    fn copy(&mut self, src: VarId) -> VarId {
        let dst = self.fresh();
        self.emit(Inst::BinImm {
            op: BinOp::Add,
            dst,
            lhs: src,
            imm: 0,
        });
        dst
    }

    /// Finishes the current output block with `term`.
    fn seal(&mut self, term: Terminator) {
        let insts = std::mem::take(&mut self.cur_insts);
        let b = Block { insts, term };
        if self.cur < self.blocks.len() {
            self.blocks[self.cur] = Some(b);
        } else {
            // Continuation/abort blocks were pre-pushed as None.
            self.blocks[self.cur] = Some(b);
        }
    }

    /// Creates a pending block id (filled later or by `seal`).
    fn reserve_block(&mut self) -> usize {
        self.blocks.push(None);
        self.blocks.len() - 1
    }

    /// Emits `violation_cond != 0 → abort`, continuing in a fresh block.
    fn guard(&mut self, violation_cond: VarId, abort: Vec<Inst>) {
        let abort_id = self.reserve_block();
        let cont_id = self.reserve_block();
        self.seal(Terminator::Br {
            cond: violation_cond,
            then_: BlockId(abort_id as u32),
            else_: BlockId(cont_id as u32),
        });
        self.blocks[abort_id] = Some(Block {
            insts: abort,
            // Unreachable: the abort op traps. Keep a trivial terminator.
            term: Terminator::Ret { value: None },
        });
        self.cur = cont_id;
    }

    fn is_ptr(&self, v: VarId) -> bool {
        self.info.is_pointer(&self.src.name, v)
    }

    fn comps(&mut self, p: VarId) -> Companions {
        if let Some(c) = self.companions.get(&p) {
            return *c;
        }
        // Unknown provenance (e.g. pointer never initialised on this
        // path): universal metadata so it never faults — the SBCETS
        // compatibility rule.
        let base = self.konst(0);
        let bound = self.konst(-1); // u64::MAX
        let key = self.konst(0);
        let lock = self.konst(0);
        let c = Companions {
            base,
            bound,
            key,
            lock,
        };
        self.companions.insert(p, c);
        c
    }

    fn set_comps(&mut self, p: VarId, c: Companions) {
        self.companions.insert(p, c);
    }

    /// `container + off` as a plain value.
    fn container_addr(&mut self, container: VarId, off: i64) -> VarId {
        if off != 0 {
            let d = self.fresh();
            self.emit(Inst::BinImm {
                op: BinOp::Add,
                dst: d,
                lhs: container,
                imm: off,
            });
            d
        } else {
            self.copy(container)
        }
    }

    /// Software shadow address of `container + off` — the same Eq. 1
    /// arithmetic [`meta_load_fn`] performs, but emitted *inline* for
    /// the zoo schemes whose metadata moves without a runtime call
    /// (L4 Pointer's wide-pointer words, CryptSan's signature lookup).
    fn inline_shadow_addr(&mut self, container: VarId, off: i64) -> VarId {
        let c = self.container_addr(container, off);
        let shifted = self.fresh();
        self.emit(Inst::BinImm {
            op: BinOp::Sll,
            dst: shifted,
            lhs: c,
            imm: 2,
        });
        let offc = self.konst(SHADOW_OFFSET);
        let saddr = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Add,
            dst: saddr,
            lhs: shifted,
            rhs: offc,
        });
        saddr
    }

    /// SBCETS spatial check: a call to the runtime helper, exactly as the
    /// unmodified SoftBoundCETS pass emits at `-O0` (the checks are
    /// library functions; only optimised builds inline them).
    fn sbcets_spatial_check(&mut self, p: VarId, off: i64, n: u64) {
        let c = self.comps(p);
        let addr = self.container_addr(p, off);
        let size = self.konst(n as i64);
        self.emit(Inst::Call {
            dst: None,
            func: SPATIAL_CHECK_FN.into(),
            args: vec![addr, c.base, c.bound, size],
        });
    }

    /// SBCETS temporal check: runtime helper call.
    fn sbcets_temporal_check(&mut self, p: VarId) {
        let c = self.comps(p);
        self.emit(Inst::Call {
            dst: None,
            func: TEMPORAL_CHECK_FN.into(),
            args: vec![c.key, c.lock],
        });
    }

    /// Software spatial check of an `n`-byte access at `p + off`.
    fn sw_spatial_check(&mut self, p: VarId, off: i64, n: u64) {
        let c = self.comps(p);
        let addr = if off != 0 {
            let d = self.fresh();
            self.emit(Inst::BinImm {
                op: BinOp::Add,
                dst: d,
                lhs: p,
                imm: off,
            });
            d
        } else {
            // Pointers are plain u64 values in check arithmetic.
            self.copy(p)
        };
        // below = addr < base
        let below = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Sltu,
            dst: below,
            lhs: addr,
            rhs: c.base,
        });
        self.guard(
            below,
            vec![Inst::AbortSpatial {
                addr,
                base: c.base,
                bound: c.bound,
            }],
        );
        // above = bound < addr + n
        let end = self.fresh();
        self.emit(Inst::BinImm {
            op: BinOp::Add,
            dst: end,
            lhs: addr,
            imm: n as i64,
        });
        let above = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Sltu,
            dst: above,
            lhs: c.bound,
            rhs: end,
        });
        let c2 = self.comps(p);
        self.guard(
            above,
            vec![Inst::AbortSpatial {
                addr,
                base: c2.base,
                bound: c2.bound,
            }],
        );
    }

    /// Software temporal check of `p` (skipped dynamically when lock==0).
    fn sw_temporal_check(&mut self, p: VarId) {
        let c = self.comps(p);
        // has_lock = lock != 0
        let zero = self.konst(0);
        let has_lock = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Ne,
            dst: has_lock,
            lhs: c.lock,
            rhs: zero,
        });
        // Split: if has_lock, load stored key and compare.
        let check_id = self.reserve_block();
        let cont_id = self.reserve_block();
        self.seal(Terminator::Br {
            cond: has_lock,
            then_: BlockId(check_id as u32),
            else_: BlockId(cont_id as u32),
        });
        self.cur = check_id;
        let stored = self.fresh();
        // The lock is a raw address; software loads through it directly.
        self.emit(Inst::Load {
            dst: stored,
            addr: c.lock,
            offset: 0,
            width: Width::U64,
        });
        let bad = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Ne,
            dst: bad,
            lhs: stored,
            rhs: c.key,
        });
        let abort_id = self.reserve_block();
        self.seal(Terminator::Br {
            cond: bad,
            then_: BlockId(abort_id as u32),
            else_: BlockId(cont_id as u32),
        });
        self.blocks[abort_id] = Some(Block {
            insts: vec![Inst::AbortTemporal {
                key: c.key,
                lock: c.lock,
                stored,
            }],
            term: Terminator::Ret { value: None },
        });
        self.cur = cont_id;
    }

    /// Hardware temporal check: `tchk` (Hwst128Tchk) or software key
    /// compare (Hwst128).
    fn temporal_check(&mut self, p: VarId) {
        match self.scheme {
            Scheme::Hwst128Tchk | Scheme::RvCure | Scheme::HeapSafe => {
                self.emit(Inst::Tchk { ptr: p });
            }
            Scheme::Hwst128 | Scheme::L4Pointer | Scheme::CryptSan => self.sw_temporal_check(p),
            Scheme::Sbcets => self.sbcets_temporal_check(p),
            Scheme::None | Scheme::Shore => {}
        }
    }

    /// The metadata transfer slot address for argument `i`.
    fn arg_slot(&mut self, i: usize) -> VarId {
        let g = self.fresh();
        self.emit(Inst::AddrOfGlobal {
            dst: g,
            global: self.meta_args,
        });
        if i == 0 {
            g
        } else {
            let d = self.fresh();
            self.emit(Inst::GepImm {
                dst: d,
                base: g,
                imm: (i * 40) as i64,
            });
            d
        }
    }

    fn run(&mut self) -> Function {
        let needs_frame_lock = self
            .info
            .func(&self.src.name)
            .is_some_and(|fi| fi.has_stack_alloc)
            && self.scheme.temporal_safety()
            && !self.scheme.heap_only();

        // ---- entry prologue (block 0) ----
        self.cur = 0;
        if needs_frame_lock {
            let key = self.fresh();
            let lock = self.fresh();
            self.emit(Inst::FrameLock { key, lock });
            self.frame_grant = Some((key, lock));
        }
        // Receive pointer-parameter metadata from the transfer area.
        let params: Vec<(usize, VarId)> = self
            .src
            .params
            .iter()
            .enumerate()
            .filter(|(i, _)| self.src.param_is_ptr[*i])
            .map(|(i, &v)| (i, v))
            .collect();
        for (i, p) in params {
            self.receive_meta(i, p);
        }

        // ---- rewrite every source block ----
        for bi in 0..self.src.blocks.len() {
            if bi != 0 {
                self.cur = bi;
                debug_assert!(self.cur_insts.is_empty());
            }
            let block = &self.src.blocks[bi];
            for (ii, inst) in block.insts.clone().into_iter().enumerate() {
                self.cur_site = Some((bi, ii));
                self.rewrite(inst);
            }
            self.cur_site = None;
            let term = block.term.clone();
            // Epilogue work before returns.
            if let Terminator::Ret { value } = &term {
                if let Some(v) = value {
                    if self.is_ptr(*v) {
                        self.send_meta(0, *v);
                    }
                }
                if let Some((_, lock)) = self.frame_grant {
                    self.emit(Inst::FrameUnlock { lock });
                }
            }
            self.seal(term);
        }

        Function {
            name: self.src.name.clone(),
            params: self.src.params.clone(),
            param_is_ptr: self.src.param_is_ptr.clone(),
            num_vars: self.next_var,
            num_locals: self.src.num_locals,
            blocks: self
                .blocks
                .drain(..)
                .enumerate()
                .map(|(i, b)| {
                    let Some(b) = b else {
                        panic!("block b{i} not sealed");
                    };
                    b
                })
                .collect(),
        }
    }

    /// Sends metadata of pointer `p` through transfer slot `i`
    /// (caller side / returning a pointer).
    fn send_meta(&mut self, i: usize, p: VarId) {
        let slot = self.arg_slot(i);
        if self.scheme.uses_hardware() {
            // Hardware: one shadow store pair keyed on the slot container.
            self.emit(Inst::MetaStore {
                ptr: p,
                container: slot,
                offset: 0,
            });
            if self.scheme.sw_temporal() {
                let c = self.comps(p);
                self.emit(Inst::Store {
                    src: c.key,
                    addr: slot,
                    offset: 8,
                    width: Width::U64,
                });
                self.emit(Inst::Store {
                    src: c.lock,
                    addr: slot,
                    offset: 16,
                    width: Width::U64,
                });
            }
        } else {
            // Software: four uncompressed stores into the slot itself.
            let c = self.comps(p);
            self.emit(Inst::Store {
                src: c.base,
                addr: slot,
                offset: 0,
                width: Width::U64,
            });
            self.emit(Inst::Store {
                src: c.bound,
                addr: slot,
                offset: 8,
                width: Width::U64,
            });
            self.emit(Inst::Store {
                src: c.key,
                addr: slot,
                offset: 16,
                width: Width::U64,
            });
            self.emit(Inst::Store {
                src: c.lock,
                addr: slot,
                offset: 24,
                width: Width::U64,
            });
        }
    }

    /// Receives metadata for pointer `p` from transfer slot `i`
    /// (callee prologue / call-result reload).
    fn receive_meta(&mut self, i: usize, p: VarId) {
        let slot = self.arg_slot(i);
        if self.scheme.uses_hardware() {
            self.emit(Inst::MetaLoad {
                ptr: p,
                container: slot,
                offset: 0,
            });
            if self.scheme.sw_temporal() {
                let key = self.fresh();
                let lock = self.fresh();
                self.emit(Inst::Load {
                    dst: key,
                    addr: slot,
                    offset: 8,
                    width: Width::U64,
                });
                self.emit(Inst::Load {
                    dst: lock,
                    addr: slot,
                    offset: 16,
                    width: Width::U64,
                });
                let base = self.konst(0);
                let bound = self.konst(-1);
                self.set_comps(
                    p,
                    Companions {
                        base,
                        bound,
                        key,
                        lock,
                    },
                );
            }
        } else {
            let base = self.fresh();
            let bound = self.fresh();
            let key = self.fresh();
            let lock = self.fresh();
            self.emit(Inst::Load {
                dst: base,
                addr: slot,
                offset: 0,
                width: Width::U64,
            });
            self.emit(Inst::Load {
                dst: bound,
                addr: slot,
                offset: 8,
                width: Width::U64,
            });
            self.emit(Inst::Load {
                dst: key,
                addr: slot,
                offset: 16,
                width: Width::U64,
            });
            self.emit(Inst::Load {
                dst: lock,
                addr: slot,
                offset: 24,
                width: Width::U64,
            });
            self.set_comps(
                p,
                Companions {
                    base,
                    bound,
                    key,
                    lock,
                },
            );
        }
    }

    fn rewrite(&mut self, inst: Inst) {
        let hw = self.scheme.uses_hardware();
        match inst {
            // ---- pointer creation ----
            Inst::Malloc { dst, size } => {
                let (key, lock) = if self.scheme.temporal_safety() {
                    let key = self.fresh();
                    let lock = self.fresh();
                    self.emit(Inst::MallocMeta {
                        dst,
                        size,
                        key,
                        lock,
                    });
                    (key, lock)
                } else {
                    // SHORE: the plain allocation, no temporal grant used.
                    self.emit(Inst::Malloc { dst, size });
                    let zero = self.konst(0);
                    (zero, zero)
                };
                // A failed malloc returns NULL; the wrapper binds the
                // empty region [8, 8) — distinguishable from the all-zero
                // "unbound" encoding — so any dereference of the null
                // pointer traps spatially (CWE476/CWE690 detection path).
                let zero = self.konst(0);
                let is_null = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Eq,
                    dst: is_null,
                    lhs: dst,
                    rhs: zero,
                });
                let nonnull = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Ne,
                    dst: nonnull,
                    lhs: dst,
                    rhs: zero,
                });
                let null_base = self.fresh();
                self.emit(Inst::BinImm {
                    op: BinOp::Sll,
                    dst: null_base,
                    lhs: is_null,
                    imm: 3,
                });
                let base = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Add,
                    dst: base,
                    lhs: dst,
                    rhs: null_base,
                });
                let eff = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Mul,
                    dst: eff,
                    lhs: size,
                    rhs: nonnull,
                });
                let bound = self.fresh();
                self.emit(Inst::Bin {
                    op: BinOp::Add,
                    dst: bound,
                    lhs: base,
                    rhs: eff,
                });
                if hw {
                    self.emit(Inst::BindSpatial {
                        ptr: dst,
                        base,
                        bound,
                    });
                    if self.scheme.temporal_safety() {
                        self.emit(Inst::BindTemporal {
                            ptr: dst,
                            key,
                            lock,
                        });
                    }
                }
                if self.scheme.sw_temporal() || self.scheme == Scheme::Sbcets {
                    self.set_comps(
                        dst,
                        Companions {
                            base,
                            bound,
                            key,
                            lock,
                        },
                    );
                }
            }
            Inst::StackAlloc { dst, size } => {
                self.emit(Inst::StackAlloc { dst, size });
                let bound = self.fresh();
                self.emit(Inst::BinImm {
                    op: BinOp::Add,
                    dst: bound,
                    lhs: dst,
                    imm: size as i64,
                });
                let (key, lock) = match self.frame_grant {
                    Some(g) => g,
                    None => {
                        // SHORE carries no temporal metadata; HeapSafe
                        // deliberately leaves stack pointers unbound.
                        debug_assert!(!self.scheme.temporal_safety() || self.scheme.heap_only());
                        let z = self.konst(0);
                        (z, z)
                    }
                };
                if hw && !self.scheme.heap_only() {
                    let b = self.copy(dst);
                    self.emit(Inst::BindSpatial {
                        ptr: dst,
                        base: b,
                        bound,
                    });
                    if self.scheme.temporal_safety() {
                        self.emit(Inst::BindTemporal {
                            ptr: dst,
                            key,
                            lock,
                        });
                    }
                }
                if self.scheme.sw_temporal() || self.scheme == Scheme::Sbcets {
                    let base = self.copy(dst);
                    self.set_comps(
                        dst,
                        Companions {
                            base,
                            bound,
                            key,
                            lock,
                        },
                    );
                }
            }
            Inst::AddrOfGlobal { dst, global } => {
                // Hardware schemes bind global bounds during lowering
                // (the bounds are static); only the software companions
                // are materialised here.
                self.emit(Inst::AddrOfGlobal { dst, global });
                if self.scheme.sw_companions() || self.scheme == Scheme::Hwst128 {
                    let size = self.module.globals[global.0 as usize].size.div_ceil(8) * 8;
                    let bound = self.fresh();
                    self.emit(Inst::BinImm {
                        op: BinOp::Add,
                        dst: bound,
                        lhs: dst,
                        imm: size as i64,
                    });
                    let base = self.copy(dst);
                    let key = self.konst(0);
                    let lock = self.konst(0);
                    self.set_comps(
                        dst,
                        Companions {
                            base,
                            bound,
                            key,
                            lock,
                        },
                    );
                }
            }

            // ---- pointer propagation ----
            Inst::Gep { dst, base, offset } => {
                self.emit(Inst::Gep { dst, base, offset });
                // Hardware: SRF propagates through the ALU bypass for free.
                if self.scheme.sw_temporal() || self.scheme == Scheme::Sbcets {
                    let c = self.comps(base);
                    self.set_comps(dst, c);
                }
            }
            Inst::GepImm { dst, base, imm } => {
                self.emit(Inst::GepImm { dst, base, imm });
                if self.scheme.sw_temporal() || self.scheme == Scheme::Sbcets {
                    let c = self.comps(base);
                    self.set_comps(dst, c);
                }
            }
            Inst::LoadPtr { dst, addr, offset } => {
                // Spatial+temporal check of the *container* access first.
                self.check_deref(addr, offset, 8);
                self.emit(Inst::LoadPtr { dst, addr, offset });
                if hw {
                    self.emit(Inst::MetaLoad {
                        ptr: dst,
                        container: addr,
                        offset,
                    });
                    if self.scheme.sw_temporal() {
                        let key = self.fresh();
                        self.emit(Inst::MetaLoadField {
                            dst: key,
                            container: addr,
                            offset,
                            field: MetaField::Key,
                        });
                        let lock = self.fresh();
                        self.emit(Inst::MetaLoadField {
                            dst: lock,
                            container: addr,
                            offset,
                            field: MetaField::Lock,
                        });
                        let base = self.konst(0);
                        let bound = self.konst(-1);
                        self.set_comps(
                            dst,
                            Companions {
                                base,
                                bound,
                                key,
                                lock,
                            },
                        );
                    }
                } else if self.scheme.inline_sw_checks() {
                    // Zoo software schemes: the metadata words reload
                    // inline (no helper call). L4 Pointer carries all
                    // four words in the wide pointer; CryptSan only
                    // recovers key/lock (the signature's liveness
                    // witness) — its pointers carry no bounds.
                    let saddr = self.inline_shadow_addr(addr, offset);
                    let (base, bound) = if self.scheme == Scheme::L4Pointer {
                        let base = self.fresh();
                        let bound = self.fresh();
                        for (dstv, off) in [(base, 0i64), (bound, 8)] {
                            self.emit(Inst::Load {
                                dst: dstv,
                                addr: saddr,
                                offset: off,
                                width: Width::U64,
                            });
                        }
                        (base, bound)
                    } else {
                        (self.konst(0), self.konst(-1))
                    };
                    let key = self.fresh();
                    let lock = self.fresh();
                    for (dstv, off) in [(key, 16i64), (lock, 24)] {
                        self.emit(Inst::Load {
                            dst: dstv,
                            addr: saddr,
                            offset: off,
                            width: Width::U64,
                        });
                    }
                    self.set_comps(
                        dst,
                        Companions {
                            base,
                            bound,
                            key,
                            lock,
                        },
                    );
                } else {
                    // Runtime shadow-map lookup (a function call at -O0),
                    // then reload the fields from the scratch record.
                    let container = self.container_addr(addr, offset);
                    self.emit(Inst::Call {
                        dst: None,
                        func: META_LOAD_FN.into(),
                        args: vec![container],
                    });
                    let tp = self.fresh();
                    self.emit(Inst::AddrOfGlobal {
                        dst: tp,
                        global: self.meta_tmp,
                    });
                    let base = self.fresh();
                    let bound = self.fresh();
                    let key = self.fresh();
                    let lock = self.fresh();
                    for (dstv, off) in [(base, 0), (bound, 8), (key, 16), (lock, 24)] {
                        self.emit(Inst::Load {
                            dst: dstv,
                            addr: tp,
                            offset: off,
                            width: Width::U64,
                        });
                    }
                    self.set_comps(
                        dst,
                        Companions {
                            base,
                            bound,
                            key,
                            lock,
                        },
                    );
                }
            }
            Inst::StorePtr { src, addr, offset } => {
                self.check_deref(addr, offset, 8);
                self.emit(Inst::StorePtr { src, addr, offset });
                if hw {
                    self.emit(Inst::MetaStore {
                        ptr: src,
                        container: addr,
                        offset,
                    });
                } else if self.scheme.inline_sw_checks() {
                    // Inline shadow-word spill, mirroring the LoadPtr
                    // reload path: L4 Pointer writes all four words,
                    // CryptSan only the key/lock pair.
                    let c = self.comps(src);
                    let saddr = self.inline_shadow_addr(addr, offset);
                    let words: &[(VarId, i64)] = if self.scheme == Scheme::L4Pointer {
                        &[(c.base, 0), (c.bound, 8), (c.key, 16), (c.lock, 24)]
                    } else {
                        &[(c.key, 16), (c.lock, 24)]
                    };
                    for &(srcv, off) in words {
                        self.emit(Inst::Store {
                            src: srcv,
                            addr: saddr,
                            offset: off,
                            width: Width::U64,
                        });
                    }
                } else {
                    let c = self.comps(src);
                    let container = self.container_addr(addr, offset);
                    self.emit(Inst::Call {
                        dst: None,
                        func: META_STORE_FN.into(),
                        args: vec![container, c.base, c.bound, c.key, c.lock],
                    });
                }
            }

            // ---- dereference checks ----
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                self.check_deref(addr, offset, width.bytes());
                self.emit(Inst::Load {
                    dst,
                    addr,
                    offset,
                    width,
                });
            }
            Inst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                self.check_deref(addr, offset, width.bytes());
                self.emit(Inst::Store {
                    src,
                    addr,
                    offset,
                    width,
                });
            }

            // ---- deallocation ----
            Inst::Free { ptr } => {
                // CETS free wrapper: (1) the pointer must be the start of
                // the allocation (catches CWE761 free-not-at-start),
                // (2) its key must still be live (catches CWE415 double
                // free), then the key is erased.
                if self.scheme.temporal_safety() {
                    self.free_base_check(ptr);
                }
                self.temporal_check(ptr);
                let lock = match self.scheme {
                    Scheme::Shore => self.konst(0),
                    Scheme::Sbcets | Scheme::Hwst128 | Scheme::L4Pointer | Scheme::CryptSan => {
                        self.comps(ptr).lock
                    }
                    Scheme::Hwst128Tchk | Scheme::RvCure | Scheme::HeapSafe => {
                        // Extract the lock from the SRF through the
                        // scratch shadow container (the wrapper path).
                        let g = self.fresh();
                        self.emit(Inst::AddrOfGlobal {
                            dst: g,
                            global: self.scratch,
                        });
                        self.emit(Inst::MetaStore {
                            ptr,
                            container: g,
                            offset: 0,
                        });
                        let lock = self.fresh();
                        self.emit(Inst::MetaLoadField {
                            dst: lock,
                            container: g,
                            offset: 0,
                            field: MetaField::Lock,
                        });
                        lock
                    }
                    Scheme::None => unreachable!("scheme None is not rewritten"),
                };
                self.emit(Inst::FreeMeta { ptr, lock });
            }

            // ---- calls: transfer pointer-argument metadata ----
            Inst::Call { dst, func, args } => {
                let Some(callee) = self.module.func(&func) else {
                    // Unknown callee: the analysis pass validates every
                    // call target, so this cannot happen on accepted
                    // modules — pass the call through without metadata
                    // transfer rather than panic.
                    self.emit(Inst::Call { dst, func, args });
                    return;
                };
                let callee_ret_ptr = self.info.func(&func).is_some_and(|fi| fi.returns_ptr);
                for (i, &a) in args.iter().enumerate() {
                    if *callee.param_is_ptr.get(i).unwrap_or(&false) && self.is_ptr(a) {
                        self.send_meta(i, a);
                    }
                }
                self.emit(Inst::Call { dst, func, args });
                if let (Some(d), true) = (dst, callee_ret_ptr) {
                    self.receive_meta(0, d);
                }
            }

            // Everything else passes through untouched.
            other => self.emit(other),
        }
    }

    /// CETS free-wrapper base check: `ptr` must equal its metadata base,
    /// otherwise the free is of an interior pointer (CWE761).
    fn free_base_check(&mut self, ptr: VarId) {
        let base = match self.scheme {
            Scheme::Sbcets | Scheme::Hwst128 | Scheme::L4Pointer | Scheme::CryptSan => {
                // In hardware mode the base companion is not tracked for
                // reloaded pointers; fetch it from the scratch shadow.
                if self.scheme == Scheme::Hwst128 {
                    let g = self.fresh();
                    self.emit(Inst::AddrOfGlobal {
                        dst: g,
                        global: self.scratch,
                    });
                    self.emit(Inst::MetaStore {
                        ptr,
                        container: g,
                        offset: 0,
                    });
                    let base = self.fresh();
                    self.emit(Inst::MetaLoadField {
                        dst: base,
                        container: g,
                        offset: 0,
                        field: MetaField::Base,
                    });
                    base
                } else {
                    self.comps(ptr).base
                }
            }
            Scheme::Hwst128Tchk | Scheme::RvCure | Scheme::HeapSafe => {
                let g = self.fresh();
                self.emit(Inst::AddrOfGlobal {
                    dst: g,
                    global: self.scratch,
                });
                self.emit(Inst::MetaStore {
                    ptr,
                    container: g,
                    offset: 0,
                });
                let base = self.fresh();
                self.emit(Inst::MetaLoadField {
                    dst: base,
                    container: g,
                    offset: 0,
                    field: MetaField::Base,
                });
                base
            }
            Scheme::None | Scheme::Shore => return,
        };
        // A zero base means "no metadata" (e.g. a pointer that was never
        // bound): skip the check rather than false-positive.
        let addr = self.copy(ptr);
        let mismatch = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Ne,
            dst: mismatch,
            lhs: addr,
            rhs: base,
        });
        let zero = self.konst(0);
        let has_base = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::Ne,
            dst: has_base,
            lhs: base,
            rhs: zero,
        });
        let bad = self.fresh();
        self.emit(Inst::Bin {
            op: BinOp::And,
            dst: bad,
            lhs: mismatch,
            rhs: has_base,
        });
        let bound = self.copy(base);
        self.guard(bad, vec![Inst::AbortSpatial { addr, base, bound }]);
    }

    /// Emits the per-scheme spatial + temporal checks for an `n`-byte
    /// access at `p + off` and marks the following access as
    /// hardware-checked where applicable.
    fn check_deref(&mut self, p: VarId, off: i64, n: u64) {
        // A bounds-proof witness for this source site removes the whole
        // check. Every rewrite arm that calls `check_deref` emits the
        // dereference itself as its very next instruction, so the
        // skipped check's dereference becomes the (current block,
        // next-deref-ordinal) instruction of the instrumented function.
        if let Some(site) = self.cur_site {
            if let Some(&witness) = self.proven.get(&site) {
                let ordinal = self.cur_insts.iter().filter(|i| is_deref(i)).count();
                self.skips.push(SkippedCheck {
                    func: self.src.name.clone(),
                    block: self.cur,
                    deref: ordinal,
                    witness,
                });
                return;
            }
        }
        match self.scheme {
            Scheme::Sbcets => {
                self.sbcets_spatial_check(p, off, n);
                self.sbcets_temporal_check(p);
            }
            Scheme::Hwst128 => {
                // Spatial is free (bounded access); temporal in software.
                self.sw_temporal_check(p);
            }
            // RV-CURE validates its capability inline (no keybuffer —
            // the config pays the lock-word latency per check) and
            // HeapSafe tag-checks every access; both reuse `tchk`,
            // which passes vacuously on unbound (stack/global under
            // HeapSafe) pointers.
            Scheme::Hwst128Tchk | Scheme::RvCure | Scheme::HeapSafe => {
                self.emit(Inst::Tchk { ptr: p });
            }
            // L4 Pointer: both halves inline — the wide pointer already
            // holds bounds and tag, so checks are compare+branch with
            // no call overhead.
            Scheme::L4Pointer => {
                self.sw_spatial_check(p, off, n);
                self.sw_temporal_check(p);
            }
            // CryptSan: PAC authentication on dereference — a temporal
            // liveness check only. In-bounds-object overflows keep a
            // valid signature, so no spatial sequence exists to emit.
            Scheme::CryptSan => self.sw_temporal_check(p),
            // SHORE: spatial checks ride the bounded accesses; nothing
            // temporal exists to check.
            Scheme::None | Scheme::Shore => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::ModuleBuilder;

    fn malloc_deref_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let r = f.load(p, 0, Width::U64);
        f.free(p);
        f.ret(Some(r));
        f.finish();
        mb.finish()
    }

    fn count_insts(m: &Module, pred: impl Fn(&Inst) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn none_scheme_is_identity() {
        let m = malloc_deref_module();
        let info = analyze(&m).unwrap();
        let out = instrument(&m, &info, Scheme::None);
        assert_eq!(out, m);
    }

    #[test]
    fn hwst_tchk_uses_hardware_ops() {
        let m = malloc_deref_module();
        let info = analyze(&m).unwrap();
        let out = instrument(&m, &info, Scheme::Hwst128Tchk);
        assert!(count_insts(&out, |i| matches!(i, Inst::BindSpatial { .. })) >= 1);
        assert!(count_insts(&out, |i| matches!(i, Inst::BindTemporal { .. })) >= 1);
        assert!(
            count_insts(&out, |i| matches!(i, Inst::Tchk { .. })) >= 3,
            "store, load and free each need a temporal check"
        );
        assert_eq!(
            count_insts(&out, |i| matches!(i, Inst::AbortSpatial { .. })),
            1,
            "the only software abort path is the free-wrapper base check"
        );
    }

    #[test]
    fn sbcets_emits_software_checks_only() {
        let m = malloc_deref_module();
        let info = analyze(&m).unwrap();
        let out = instrument(&m, &info, Scheme::Sbcets);
        assert_eq!(count_insts(&out, |i| matches!(i, Inst::Tchk { .. })), 0);
        assert_eq!(
            count_insts(&out, |i| matches!(i, Inst::BindSpatial { .. })),
            0
        );
        assert!(count_insts(&out, |i| matches!(i, Inst::AbortSpatial { .. })) >= 2);
        assert!(count_insts(&out, |i| matches!(i, Inst::AbortTemporal { .. })) >= 1);
    }

    #[test]
    fn instrumented_code_is_larger_in_the_expected_order() {
        let m = malloc_deref_module();
        let info = analyze(&m).unwrap();
        let base = instrument(&m, &info, Scheme::None).inst_count();
        let tchk = instrument(&m, &info, Scheme::Hwst128Tchk).inst_count();
        let hwst = instrument(&m, &info, Scheme::Hwst128).inst_count();
        let sb = instrument(&m, &info, Scheme::Sbcets).inst_count();
        assert!(base < tchk, "tchk adds code");
        assert!(tchk < hwst, "software key check adds more");
        assert!(hwst < sb, "full software checks add the most");
    }

    #[test]
    fn stack_alloc_gets_frame_lock() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.stack_alloc(32);
        let v = f.konst(1);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let out = instrument(&m, &info, Scheme::Hwst128Tchk);
        assert_eq!(
            count_insts(&out, |i| matches!(i, Inst::FrameLock { .. })),
            1
        );
        assert_eq!(
            count_insts(&out, |i| matches!(i, Inst::FrameUnlock { .. })),
            1
        );
    }

    #[test]
    fn pointer_args_transfer_metadata() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("use_ptr");
        let p = f.param(true);
        let r = f.load(p, 0, Width::U64);
        f.ret(Some(r));
        f.finish();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        let r = f.call("use_ptr", &[p]);
        f.ret(Some(r));
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let out = instrument(&m, &info, Scheme::Hwst128Tchk);
        // The caller must send (MetaStore into the transfer slot) and the
        // callee must receive (MetaLoad).
        assert!(count_insts(&out, |i| matches!(i, Inst::MetaStore { .. })) >= 1);
        assert!(count_insts(&out, |i| matches!(i, Inst::MetaLoad { .. })) >= 1);
    }
}
