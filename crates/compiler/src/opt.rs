//! A light optimizer (extension experiment).
//!
//! The paper compiles everything **without** optimization (§4); this
//! module exists to quantify what that choice means. Three classic
//! passes run to fixpoint over the (single-assignment-by-construction)
//! IR *before* instrumentation, modelling source-level optimization:
//!
//! 1. **constant folding/propagation** — `Bin`/`BinImm` over known
//!    constants collapse to `Const`, and constant branch conditions fold
//!    the branch,
//! 2. **copy propagation** — `x = y + 0` aliases `x` to `y`,
//! 3. **dead-code elimination** — unused pure definitions disappear
//!    (memory reads are conservatively kept: under instrumentation they
//!    carry check semantics).
//!
//! A fourth, bounds-assisted pass runs once after the fixpoint: loads
//! from provably-dead allocas (never written through, never escaping)
//! whose result is unused *and* whose access the value-range analysis
//! ([`crate::bounds`]) proved in-bounds and live are deleted outright —
//! such a load can neither produce an observable value nor trap under
//! any instrumented build, so removing it is behavior-preserving even
//! with checks forced on. The basic `eliminate_dead` used by
//! [`crate::rce`]'s sweep deliberately does **not** do this: RCE's skip
//! coordinates are deref ordinals, which must stay stable across the
//! sweep.
//!
//! The `ablation_optimizer` binary compares Fig.-4-style overheads with
//! and without the passes; see EXPERIMENTS.md.

use crate::ir::{BinOp, Function, Inst, Module, Terminator, VarId};
use std::collections::{HashMap, HashSet};

/// Optimizes every function of a module (the module is consumed and
/// returned to encourage pipeline-style use).
///
/// Only variables with exactly one definition are propagated, so the
/// passes are safe for hand-built IR too.
pub fn optimize(mut module: Module) -> Module {
    for f in &mut module.funcs {
        loop {
            let changed = fold_constants(f) | propagate_copies(f);
            let changed = changed | eliminate_dead(f);
            if !changed {
                break;
            }
        }
    }
    // Bounds-assisted DCE over the whole module, then one more sweep
    // per function: deleting a load can strand its address computation
    // (geps, and — uniquely here, where the object is proven dead — the
    // alloca itself).
    let dead = crate::bounds::dead_alloca_loads(&module);
    if !dead.is_empty() {
        for &(fi, bi, ii) in dead.iter().rev() {
            module.funcs[fi].blocks[bi].insts.remove(ii);
        }
        for f in &mut module.funcs {
            while eliminate_dead(f) | eliminate_unused_allocas(f) {}
        }
    }
    module
}

/// Removes `StackAlloc`s whose result is entirely unused. Only the
/// bounds-assisted phase calls this: before instrumentation an unused
/// alloca's sole effect is frame size, but the basic [`eliminate_dead`]
/// also runs inside [`crate::rce`]'s post-instrumentation sweep, where
/// allocas feed metadata bindings and must be left alone.
fn eliminate_unused_allocas(f: &mut Function) -> bool {
    let mut used: HashSet<VarId> = HashSet::new();
    for b in &f.blocks {
        for i in &b.insts {
            used.extend(i.uses());
        }
        match &b.term {
            Terminator::Ret { value: Some(v) } => {
                used.insert(*v);
            }
            Terminator::Br { cond, .. } => {
                used.insert(*cond);
            }
            _ => {}
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts
            .retain(|i| !matches!(i, Inst::StackAlloc { dst, .. } if !used.contains(dst)));
        changed |= b.insts.len() != before;
    }
    changed
}

/// Variables defined exactly once.
fn single_defs(f: &Function) -> HashSet<VarId> {
    let mut counts: HashMap<VarId, u32> = HashMap::new();
    for p in &f.params {
        *counts.entry(*p).or_insert(0) += 1;
    }
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                *counts.entry(d).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .filter(|&(_, c)| c == 1)
        .map(|(v, _)| v)
        .collect()
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None; // keep RISC-V div-by-zero semantics at runtime
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Sll => ((a as u64) << (b as u64 & 0x3f)) as i64,
        BinOp::Srl => ((a as u64) >> (b as u64 & 0x3f)) as i64,
        BinOp::Sra => a >> (b as u64 & 0x3f),
        BinOp::Slt => (a < b) as i64,
        BinOp::Sltu => ((a as u64) < (b as u64)) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
    })
}

fn fold_constants(f: &mut Function) -> bool {
    let single = single_defs(f);
    // Collect known constants (single-def Const instructions).
    let mut consts: HashMap<VarId, i64> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Inst::Const { dst, value } = i {
                if single.contains(dst) {
                    consts.insert(*dst, *value);
                }
            }
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        for i in &mut b.insts {
            let folded = match i {
                Inst::Bin { op, dst, lhs, rhs } => {
                    match (consts.get(lhs), consts.get(rhs)) {
                        (Some(&a), Some(&bv)) => eval_bin(*op, a, bv).map(|v| (*dst, v)),
                        (None, Some(&bv)) => {
                            // Strength-reduce to the immediate form when
                            // the immediate fits.
                            if (-2048..=2047).contains(&bv) {
                                *i = Inst::BinImm {
                                    op: *op,
                                    dst: *dst,
                                    lhs: *lhs,
                                    imm: bv,
                                };
                                changed = true;
                            }
                            None
                        }
                        _ => None,
                    }
                }
                Inst::BinImm { op, dst, lhs, imm } => consts
                    .get(lhs)
                    .and_then(|&a| eval_bin(*op, a, *imm))
                    .map(|v| (*dst, v)),
                _ => None,
            };
            if let Some((dst, v)) = folded {
                *i = Inst::Const { dst, value: v };
                if single.contains(&dst) {
                    consts.insert(dst, v);
                }
                changed = true;
            }
        }
        // Constant branch conditions fold to jumps.
        if let Terminator::Br { cond, then_, else_ } = b.term.clone() {
            if let Some(&c) = consts.get(&cond) {
                b.term = Terminator::Jmp(if c != 0 { then_ } else { else_ });
                changed = true;
            }
        }
    }
    changed
}

fn propagate_copies(f: &mut Function) -> bool {
    let single = single_defs(f);
    // x = y + 0  (both single-def) aliases x -> y.
    let mut alias: HashMap<VarId, VarId> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Inst::BinImm {
                op: BinOp::Add,
                dst,
                lhs,
                imm: 0,
            } = i
            {
                if single.contains(dst) && single.contains(lhs) {
                    alias.insert(*dst, *lhs);
                }
            }
        }
    }
    if alias.is_empty() {
        return false;
    }
    // Resolve alias chains.
    let resolve = |mut v: VarId| {
        let mut hops = 0;
        while let Some(&n) = alias.get(&v) {
            v = n;
            hops += 1;
            if hops > 64 {
                break; // defensive: cyclic hand-built IR
            }
        }
        v
    };
    let mut changed = false;
    for b in &mut f.blocks {
        for i in &mut b.insts {
            changed |= rewrite_uses(i, &resolve);
        }
        match &mut b.term {
            Terminator::Ret { value: Some(v) } => {
                let r = resolve(*v);
                if r != *v {
                    *v = r;
                    changed = true;
                }
            }
            Terminator::Br { cond, .. } => {
                let r = resolve(*cond);
                if r != *cond {
                    *cond = r;
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

/// Rewrites every variable *use* in `i` through `resolve`; returns
/// whether anything changed. Definitions are left alone.
fn rewrite_uses(i: &mut Inst, resolve: &impl Fn(VarId) -> VarId) -> bool {
    macro_rules! rw {
        ($($v:expr),*) => {{
            let mut any = false;
            $(
                let r = resolve(*$v);
                if r != *$v { *$v = r; any = true; }
            )*
            any
        }};
    }
    match i {
        Inst::Bin { lhs, rhs, .. } => rw!(lhs, rhs),
        Inst::BinImm { lhs, .. } => rw!(lhs),
        Inst::Load { addr, .. } => rw!(addr),
        Inst::Store { src, addr, .. } => rw!(src, addr),
        Inst::LoadPtr { addr, .. } => rw!(addr),
        Inst::StorePtr { src, addr, .. } => rw!(src, addr),
        Inst::Malloc { size, .. } => rw!(size),
        Inst::Free { ptr } => rw!(ptr),
        Inst::Gep { base, offset, .. } => rw!(base, offset),
        Inst::GepImm { base, .. } => rw!(base),
        Inst::Call { args, .. } => {
            let mut any = false;
            for a in args {
                let r = resolve(*a);
                if r != *a {
                    *a = r;
                    any = true;
                }
            }
            any
        }
        Inst::PutChar { src } | Inst::PrintU64 { src } => rw!(src),
        Inst::LocalSet { src, .. } => rw!(src),
        _ => false,
    }
}

pub(crate) fn eliminate_dead(f: &mut Function) -> bool {
    // Uses across the whole function (incl. terminators).
    let mut used: HashSet<VarId> = HashSet::new();
    for b in &f.blocks {
        for i in &b.insts {
            used.extend(i.uses());
        }
        match &b.term {
            Terminator::Ret { value: Some(v) } => {
                used.insert(*v);
            }
            Terminator::Br { cond, .. } => {
                used.insert(*cond);
            }
            _ => {}
        }
    }
    let removable = |i: &Inst| -> bool {
        match i {
            Inst::Const { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::AddrOfGlobal { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::GepImm { dst, .. }
            | Inst::LocalGet { dst, .. } => !used.contains(dst),
            _ => false,
        }
    };
    let mut changed = false;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| !removable(i));
        changed |= b.insts.len() != before;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Width;
    use crate::ModuleBuilder;

    fn count(m: &Module, pred: impl Fn(&Inst) -> bool) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| pred(i))
            .count()
    }

    #[test]
    fn folds_constant_arithmetic() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.konst(40);
        let b = f.konst(2);
        let c = f.bin(BinOp::Add, a, b);
        let d = f.bin_imm(BinOp::Mul, c, 10);
        f.ret(Some(d));
        f.finish();
        let m = optimize(mb.finish());
        // All arithmetic folded; only the final Const feeding ret remains.
        assert_eq!(
            count(&m, |i| matches!(i, Inst::Bin { .. } | Inst::BinImm { .. })),
            0
        );
        let last = m.funcs[0].blocks[0].insts.last().unwrap();
        assert!(matches!(last, Inst::Const { value: 420, .. }));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.konst(7);
        let z = f.konst(0);
        let d = f.bin(BinOp::Div, a, z);
        f.ret(Some(d));
        f.finish();
        let m = optimize(mb.finish());
        assert_eq!(
            count(&m, |i| matches!(i, Inst::Bin { op: BinOp::Div, .. })),
            1,
            "div-by-zero must stay a runtime operation"
        );
    }

    #[test]
    fn folds_constant_branches() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let t = f.new_block();
        let e = f.new_block();
        let one = f.konst(1);
        f.br(one, t, e);
        f.switch_to(t);
        let a = f.konst(10);
        f.ret(Some(a));
        f.switch_to(e);
        let b = f.konst(20);
        f.ret(Some(b));
        f.finish();
        let m = optimize(mb.finish());
        assert!(matches!(m.funcs[0].blocks[0].term, Terminator::Jmp(b) if b.0 == 1));
    }

    #[test]
    fn removes_dead_pure_code_but_keeps_memory_ops() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        let _dead = f.bin_imm(BinOp::Add, p, 1); // unused arithmetic
        let _unused_load = f.load(p, 0, Width::U64); // kept: object is written
        let v = f.konst(3);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = optimize(mb.finish());
        assert_eq!(count(&m, |i| matches!(i, Inst::BinImm { .. })), 0);
        assert_eq!(count(&m, |i| matches!(i, Inst::Load { .. })), 1);
        assert_eq!(count(&m, |i| matches!(i, Inst::Store { .. })), 1);
    }

    #[test]
    fn drops_loads_from_provably_dead_allocas() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        // Never written, never escaping: the unused in-bounds load — and
        // with it the whole alloca — disappears.
        let a = f.stack_alloc(16);
        let _unused = f.load(a, 8, Width::U64);
        // An identical load whose object is written must stay.
        let b = f.stack_alloc(16);
        let v = f.konst(3);
        f.store(v, b, 0, Width::U64);
        let _also_unused = f.load(b, 8, Width::U64);
        f.ret(None);
        f.finish();
        let m = optimize(mb.finish());
        assert_eq!(count(&m, |i| matches!(i, Inst::Load { .. })), 1);
        assert_eq!(count(&m, |i| matches!(i, Inst::StackAlloc { .. })), 1);
        assert_eq!(count(&m, |i| matches!(i, Inst::Store { .. })), 1);
    }

    #[test]
    fn out_of_bounds_dead_loads_are_kept_for_their_trap() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.stack_alloc(16);
        let _oob = f.load(a, 16, Width::U64); // one past the end: must trap
        f.ret(None);
        f.finish();
        let m = optimize(mb.finish());
        assert_eq!(count(&m, |i| matches!(i, Inst::Load { .. })), 1);
    }

    #[test]
    fn optimized_programs_behave_identically() {
        use crate::{compile, Scheme};
        use hwst_sim::{Machine, SafetyConfig};
        // A small program mixing memory, arithmetic and control flow.
        let build = || {
            let mut mb = ModuleBuilder::new();
            let mut f = mb.func("main");
            let p = f.malloc_bytes(64);
            let mut acc = f.konst(0);
            for i in 0..8i64 {
                let v = f.konst(i * 3);
                f.store(v, p, i * 8, Width::U64);
                let r = f.load(p, i * 8, Width::U64);
                acc = f.bin(BinOp::Add, acc, r);
            }
            f.free(p);
            f.ret(Some(acc));
            f.finish();
            mb.finish()
        };
        for scheme in [Scheme::None, Scheme::Hwst128Tchk] {
            let cfg = if scheme == Scheme::None {
                SafetyConfig::baseline()
            } else {
                SafetyConfig::default()
            };
            let plain = Machine::new(compile(&build(), scheme).unwrap(), cfg)
                .run(1_000_000)
                .unwrap();
            let opt = Machine::new(compile(&optimize(build()), scheme).unwrap(), cfg)
                .run(1_000_000)
                .unwrap();
            assert_eq!(plain.code, opt.code);
            assert!(
                opt.stats.total_cycles() <= plain.stats.total_cycles(),
                "optimization must not slow the program down"
            );
        }
    }
}
