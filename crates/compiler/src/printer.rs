//! Human-readable IR listing (`Display` for [`Module`]).
//!
//! The format is intentionally close to LLVM's textual IR so
//! instrumentation diffs read naturally:
//!
//! ```text
//! fn main() {
//! b0:
//!   v0 = const 64
//!   v1 = malloc v0
//!   v2 = const 90
//!   store.u8 v2, [v1+0]
//!   tchk v1
//!   ret v1
//! }
//! ```

use crate::ir::{Block, Function, Inst, MetaField, Module, Terminator, Width};
use std::fmt;

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.globals {
            writeln!(f, "global {} : {} bytes", g.name, g.size)?;
        }
        if !self.globals.is_empty() {
            writeln!(f)?;
        }
        for (i, func) in self.funcs.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, (p, is_ptr)) in self.params.iter().zip(&self.param_is_ptr).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}{}", if *is_ptr { ": ptr" } else { "" })?;
        }
        writeln!(f, ") {{")?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "b{i}:")?;
            write!(f, "{b}")?;
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.insts {
            writeln!(f, "  {i}")?;
        }
        writeln!(f, "  {}", self.term)
    }
}

/// Renders one function with CFG annotations: each block header carries
/// its predecessors and immediate dominator as a trailing comment, and
/// unreachable blocks are marked. Debugging aid for the dataflow-based
/// passes ([`crate::dataflow`], [`crate::rce`], [`crate::verify`]).
pub fn function_with_cfg(func: &Function) -> String {
    use crate::dataflow::{Cfg, Dominators};
    use std::fmt::Write as _;

    let cfg = Cfg::new(func);
    let dom = Dominators::compute(&cfg);
    let mut s = String::new();
    let _ = write!(s, "fn {}(", func.name);
    for (i, (p, is_ptr)) in func.params.iter().zip(&func.param_is_ptr).enumerate() {
        if i > 0 {
            let _ = write!(s, ", ");
        }
        let _ = write!(s, "{p}{}", if *is_ptr { ": ptr" } else { "" });
    }
    let _ = writeln!(s, ") {{");
    for (i, b) in func.blocks.iter().enumerate() {
        if !cfg.is_reachable(i) {
            let _ = writeln!(s, "b{i}: ; unreachable");
        } else {
            let preds = cfg.preds[i]
                .iter()
                .map(|p| format!("b{p}"))
                .collect::<Vec<_>>()
                .join(" ");
            let idom = match dom.idom(i) {
                Some(d) => format!(" idom=b{d}"),
                None => String::new(),
            };
            let _ = writeln!(s, "b{i}: ; preds=[{preds}]{idom}");
        }
        let _ = write!(s, "{b}");
    }
    let _ = writeln!(s, "}}");
    s
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::U8 => "u8",
        Width::U16 => "u16",
        Width::U32 => "u32",
        Width::U64 => "u64",
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Ret { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Ret { value: None } => write!(f, "ret"),
            Terminator::Br { cond, then_, else_ } => {
                write!(f, "br {cond}, {then_}, {else_}")
            }
            Terminator::Jmp(t) => write!(f, "jmp {t}"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Inst::Bin { op, dst, lhs, rhs } => {
                write!(f, "{dst} = {op:?}({lhs}, {rhs})")
            }
            Inst::BinImm { op, dst, lhs, imm } => {
                write!(f, "{dst} = {op:?}({lhs}, #{imm})")
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => write!(
                f,
                "{dst} = load.{} [{addr}{offset:+}]",
                width_suffix(*width)
            ),
            Inst::Store {
                src,
                addr,
                offset,
                width,
            } => write!(
                f,
                "store.{} {src}, [{addr}{offset:+}]",
                width_suffix(*width)
            ),
            Inst::LoadPtr { dst, addr, offset } => {
                write!(f, "{dst} = loadptr [{addr}{offset:+}]")
            }
            Inst::StorePtr { src, addr, offset } => {
                write!(f, "storeptr {src}, [{addr}{offset:+}]")
            }
            Inst::AddrOfGlobal { dst, global } => {
                write!(f, "{dst} = &global{}", global.0)
            }
            Inst::StackAlloc { dst, size } => {
                write!(f, "{dst} = alloca {size}")
            }
            Inst::Malloc { dst, size } => write!(f, "{dst} = malloc {size}"),
            Inst::MallocMeta {
                dst,
                size,
                key,
                lock,
            } => {
                write!(f, "{dst}, {key}, {lock} = malloc.meta {size}")
            }
            Inst::Free { ptr } => write!(f, "free {ptr}"),
            Inst::FreeMeta { ptr, lock } => write!(f, "free.meta {ptr}, {lock}"),
            Inst::Gep { dst, base, offset } => {
                write!(f, "{dst} = gep {base}, {offset}")
            }
            Inst::GepImm { dst, base, imm } => {
                write!(f, "{dst} = gep {base}, #{imm}")
            }
            Inst::Call { dst, func, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = ")?;
                }
                write!(f, "call {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::PutChar { src } => write!(f, "putchar {src}"),
            Inst::PrintU64 { src } => write!(f, "print {src}"),
            Inst::LocalGet { dst, index } => {
                write!(f, "{dst} = local[{}]", index.0)
            }
            Inst::LocalSet { src, index } => {
                write!(f, "local[{}] = {src}", index.0)
            }
            Inst::BindSpatial { ptr, base, bound } => {
                write!(f, "bind.spatial {ptr}, [{base}, {bound})")
            }
            Inst::BindTemporal { ptr, key, lock } => {
                write!(f, "bind.temporal {ptr}, key={key}, lock={lock}")
            }
            Inst::MetaStore {
                ptr,
                container,
                offset,
            } => {
                write!(f, "meta.store {ptr} -> shadow[{container}{offset:+}]")
            }
            Inst::MetaLoad {
                ptr,
                container,
                offset,
            } => {
                write!(f, "meta.load {ptr} <- shadow[{container}{offset:+}]")
            }
            Inst::MetaLoadField {
                dst,
                container,
                offset,
                field,
            } => {
                let name = match field {
                    MetaField::Base => "base",
                    MetaField::Bound => "bound",
                    MetaField::Key => "key",
                    MetaField::Lock => "lock",
                };
                write!(f, "{dst} = meta.{name} shadow[{container}{offset:+}]")
            }
            Inst::Tchk { ptr } => write!(f, "tchk {ptr}"),
            Inst::AbortSpatial { addr, base, bound } => {
                write!(f, "abort.spatial {addr} ![{base}, {bound})")
            }
            Inst::AbortTemporal { key, lock, stored } => {
                write!(f, "abort.temporal key={key}, lock={lock}, stored={stored}")
            }
            Inst::FrameLock { key, lock } => {
                write!(f, "{key}, {lock} = frame.lock")
            }
            Inst::FrameUnlock { lock } => write!(f, "frame.unlock {lock}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::instrument::{instrument, Scheme};
    use crate::ModuleBuilder;

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 32);
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let t = f.addr_of_global(g);
        let v = f.load(t, 0, Width::U64);
        f.store(v, p, 8, Width::U64);
        f.store_ptr(p, t, 0);
        f.free(p);
        f.ret(Some(v));
        f.finish();
        mb.finish()
    }

    #[test]
    fn listing_contains_every_construct() {
        let s = sample().to_string();
        assert!(s.contains("global table : 32 bytes"), "{s}");
        assert!(s.contains("fn main()"));
        assert!(s.contains("= malloc"));
        assert!(s.contains("load.u64"));
        assert!(s.contains("storeptr"));
        assert!(s.contains("free v"));
        assert!(s.contains("ret v"));
    }

    #[test]
    fn instrumented_listing_shows_metadata_ops() {
        let m = sample();
        let info = analyze(&m).unwrap();
        let s = instrument(&m, &info, Scheme::Hwst128Tchk).to_string();
        assert!(s.contains("malloc.meta"), "{s}");
        assert!(s.contains("bind.spatial"));
        assert!(s.contains("bind.temporal"));
        assert!(s.contains("meta.store"));
        assert!(s.contains("tchk"));
        assert!(s.contains("free.meta"));
    }

    #[test]
    fn listing_is_deterministic() {
        assert_eq!(sample().to_string(), sample().to_string());
    }
}
